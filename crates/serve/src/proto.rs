//! The JSONL wire protocol.
//!
//! One request per line, one response per line, both JSON — trivially
//! scriptable (`nc`, a few lines of Python) and structurally diffable in
//! deterministic-replay tests. Requests are externally tagged enums:
//!
//! ```text
//! {"Hello":{}}                              → {"Hello":{"proto":1,...}}
//! {"CreateDomain":{"spec":{...}}}           → {"Created":{"domain":0}}
//! {"Ingest":{"domain":0,"jobs":[...]}}      → {"Ingested":{"domain":0,"accepted":3}}
//! {"Advance":{"domain":0,"steps":1}}        → {"Advanced":{"domain":0,"decisions":[...]}}
//! ```
//!
//! Unit-variant requests (`Metrics`, `Snapshot`, ...) may be sent as the
//! bare string form the serde encoding produces: `"Metrics"`.

use crate::domain::{DecisionRecord, DomainSpec};
use crate::runtime::{DecisionTrace, RuntimeMetrics, RuntimeSnapshot};
use serde::{Deserialize, Serialize};
use tempo_sim::RmConfig;
use tempo_workload::JobSpec;

/// Wire protocol revision; bumped on breaking message changes.
pub const PROTO_VERSION: u64 = 1;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake/health probe.
    Hello,
    /// Host a new domain.
    CreateDomain { spec: DomainSpec },
    /// Feed job submissions into a domain's workload window.
    Ingest { domain: u64, jobs: Vec<JobSpec> },
    /// Run `steps` control-loop iterations on one domain.
    Advance { domain: u64, steps: u64 },
    /// Batched ingest-then-advance: folds the common
    /// ingest → advance → read-decisions round into one frame. Equivalent
    /// to `Ingest` followed by `Advance` on the same domain; if the ingest
    /// is rejected by a `Delay` budget the advance still runs (the window
    /// simply lacks the rejected burst).
    IngestAdvance { domain: u64, jobs: Vec<JobSpec>, steps: u64 },
    /// Advance every hosted domain once.
    AdvanceAll,
    /// The configuration a domain's cluster should currently run.
    Config { domain: u64 },
    /// Occupancy/throughput counters for every domain.
    Metrics,
    /// Capture every domain's resumable state.
    Snapshot,
    /// Re-install domains from a snapshot (warm restart).
    Restore { snapshot: RuntimeSnapshot },
    /// Advance the server's simulated clock by `micros`. Errors under a
    /// wall clock. Also runs one fleet maintenance sweep (watermark +
    /// idle-tick hibernation).
    Tick { micros: u64 },
    /// Serialize a domain out of memory now; it rehydrates transparently
    /// on its next operation.
    Hibernate { domain: u64 },
    /// Move a domain to another shard (hibernate/rehydrate under the hood;
    /// per-domain FIFO and bit-identical state preserved).
    Migrate { domain: u64, shard: u64 },
    /// Migrate hot domains until no shard carries more than the configured
    /// factor of the mean advance load.
    Rebalance,
    /// Prometheus-style text exposition of every process metric — the same
    /// payload `--metrics-port` serves over HTTP, reachable without a second
    /// port for `nc`-grade tooling.
    Telemetry,
    /// The recent control-loop decision trail, newest last. `limit` caps the
    /// returned entries (default: everything retained); `domain` filters to
    /// one domain's decisions.
    TraceQuery { limit: Option<u64>, domain: Option<u64> },
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Hello {
        proto: u64,
        shards: u64,
        domains: u64,
        clock: String,
    },
    Created {
        domain: u64,
    },
    Ingested {
        domain: u64,
        accepted: u64,
    },
    /// The domain's ingest budget rejected the burst whole
    /// ([`crate::BackpressurePolicy::Delay`]); resend it after roughly
    /// `retry_after_micros` of server-clock time.
    Busy {
        domain: u64,
        retry_after_micros: u64,
    },
    Advanced {
        domain: u64,
        decisions: Vec<DecisionRecord>,
    },
    /// `IngestAdvance` outcome. `accepted`/`retry_after_micros` mirror the
    /// `Ingested`/`Busy` split; `decisions` mirrors `Advanced`.
    IngestAdvanced {
        domain: u64,
        accepted: u64,
        /// `Some` iff the ingest half was rejected by a `Delay` budget.
        retry_after_micros: Option<u64>,
        decisions: Vec<DecisionRecord>,
    },
    /// `AdvanceAll` outcome: per-domain records, id-sorted.
    AdvancedAll {
        decisions: Vec<(u64, DecisionRecord)>,
    },
    Config {
        domain: u64,
        config: RmConfig,
    },
    Metrics {
        metrics: RuntimeMetrics,
    },
    Snapshot {
        snapshot: RuntimeSnapshot,
    },
    Restored {
        domains: Vec<u64>,
    },
    Ticked {
        now: u64,
    },
    /// `Hibernate` outcome; `was_resident` is false when the domain was
    /// already cold. Sent only after the snapshot bytes are stored, so the
    /// memory really was released.
    Hibernated {
        domain: u64,
        was_resident: bool,
    },
    /// `Migrate` outcome; `moved` is false when the domain already lived
    /// on the target shard.
    Migrated {
        domain: u64,
        shard: u64,
        moved: bool,
    },
    /// `Rebalance` outcome: executed moves as `(domain, from, to)`.
    Rebalanced {
        moves: Vec<(u64, u64, u64)>,
    },
    /// `Telemetry` outcome: the Prometheus text exposition, verbatim.
    Telemetry {
        text: String,
    },
    /// `TraceQuery` outcome: retained decision traces, oldest first.
    Traces {
        traces: Vec<DecisionTrace>,
    },
    ShuttingDown,
    Error {
        message: String,
    },
}

/// Encodes a message as one JSONL line (no trailing newline).
pub fn encode<T: Serialize>(msg: &T) -> String {
    serde_json::to_string(msg).expect("wire message serializes")
}

/// Appends a message plus trailing newline to a reusable line buffer —
/// the zero-fresh-allocation encode path connection loops use.
pub fn encode_line<T: Serialize>(msg: &T, out: &mut String) {
    serde_json::append_to_string(msg, out);
    out.push('\n');
}

/// Decodes one JSONL line.
pub fn decode<T: serde::Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::SEC;
    use tempo_workload::trace::TaskSpec;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Hello,
            Request::Ingest {
                domain: 3,
                jobs: vec![JobSpec::new(0, 1, 5 * SEC, vec![TaskSpec::map(SEC)])],
            },
            Request::Advance { domain: 3, steps: 2 },
            Request::IngestAdvance {
                domain: 3,
                jobs: vec![JobSpec::new(1, 0, 2 * SEC, vec![TaskSpec::reduce(SEC)])],
                steps: 1,
            },
            Request::AdvanceAll,
            Request::Config { domain: 0 },
            Request::Metrics,
            Request::Snapshot,
            Request::Tick { micros: 1_000_000 },
            Request::Hibernate { domain: 3 },
            Request::Migrate { domain: 3, shard: 1 },
            Request::Rebalance,
            Request::Telemetry,
            Request::TraceQuery { limit: Some(16), domain: None },
            Request::TraceQuery { limit: None, domain: Some(3) },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode(&req);
            assert!(!line.contains('\n'), "one line per message");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn unit_variants_accept_bare_string_form() {
        let m: Request = decode("\"Metrics\"").unwrap();
        assert_eq!(m, Request::Metrics);
        let s: Request = decode("  \"Shutdown\" ").unwrap();
        assert_eq!(s, Request::Shutdown);
    }

    #[test]
    fn malformed_lines_error_without_panicking() {
        assert!(decode::<Request>("{\"Nope\":{}}").is_err());
        assert!(decode::<Request>("not json").is_err());
        assert!(decode::<Request>("").is_err());
    }
}
