//! Fleet management: cold-domain hibernation, per-domain cost accounting,
//! and load-aware shard placement.
//!
//! The sharded runtime keeps every domain fully materialized and pinned to
//! `id % shards` up through PR 6 — fine for hundreds of domains, fatal for
//! the paper's "millions of users" premise under a skewed fleet: memory
//! grows without bound and one hot shard carries most of the advance work.
//! This module is the bookkeeping layer that fixes both:
//!
//! * **Placement table** — every domain has a [`FleetEntry`] recording the
//!   shard it currently lives on. Creation places onto the least-populated
//!   shard; [`crate::ControllerRuntime::migrate`] moves a domain between
//!   shards using hibernate/rehydrate as the safe move primitive, and
//!   [`crate::ControllerRuntime::rebalance`] does so greedily for the
//!   hottest domains until no shard carries more than
//!   [`FleetConfig::rebalance_factor`] × the mean advance load.
//! * **Hibernation** — a domain can leave memory entirely: its
//!   [`crate::DomainSnapshot`] is encoded through the binary wire codec
//!   ([`crate::codec::encode_snapshot`]) into a compact byte buffer held
//!   here, and the next operation targeting the domain transparently
//!   rehydrates it (bit-identical resumption — the PR 6 snapshot/restore
//!   guarantee). Under an operator-set
//!   [`FleetConfig::resident_bytes_watermark`] the least-recently-touched
//!   domains are evicted eagerly at dispatch time, so estimated resident
//!   bytes stay bounded by the watermark plus the domain being touched.
//! * **Cost accounting** — estimated resident bytes (a deterministic
//!   count-based model, [`crate::Domain::estimated_bytes`]), an EWMA of
//!   advance CPU micros, and touch recency per domain, rolled up into
//!   [`crate::RuntimeMetrics`].
//!
//! ## Locking and ordering
//!
//! All placement state lives behind one mutex ([`FleetState::inner`]), and
//! the runtime holds that lock across *both* a placement transition and the
//! enqueue of its shard job. That gives every transition a total order
//! consistent with each shard's FIFO, which is what makes transparent
//! rehydration race-free: a rehydrate job enqueued after a same-shard
//! hibernate necessarily runs after it (FIFO), and a cross-shard rehydrate
//! (migration) spin-waits for the source shard's hibernate job to publish
//! the snapshot bytes — a wait that always terminates, because the enqueue
//! total order is acyclic (see the proof sketch in `ControllerRuntime`'s
//! migration docs).

use crate::runtime::{DomainId, DomainMetrics};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

/// Operator-facing fleet knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target ceiling on the fleet's *estimated* resident bytes. When a
    /// dispatch would keep the total above the watermark, least-recently-
    /// touched domains are hibernated until it fits (the domain being
    /// touched is never evicted, so the bound is watermark + one domain).
    /// `None` (the default) never hibernates for memory.
    pub resident_bytes_watermark: Option<u64>,
    /// Hibernate domains untouched for this many dispatch ticks on the next
    /// [`crate::ControllerRuntime::maintain`] sweep (the server runs one per
    /// `Tick`). `None` disables idle hibernation.
    pub idle_ticks: Option<u64>,
    /// Rebalance target: migrate hot domains until no shard's advance load
    /// exceeds this multiple of the mean. 2.0 by default.
    pub rebalance_factor: f64,
    /// Weight of the newest observation in the per-domain advance-cost
    /// EWMA (`ewma = w·new + (1-w)·old`).
    pub cost_ewma_weight: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            resident_bytes_watermark: None,
            idle_ticks: None,
            rebalance_factor: 2.0,
            cost_ewma_weight: 0.2,
        }
    }
}

impl FleetConfig {
    pub fn with_watermark(mut self, bytes: u64) -> Self {
        self.resident_bytes_watermark = Some(bytes);
        self
    }

    pub fn with_idle_ticks(mut self, ticks: u64) -> Self {
        self.idle_ticks = Some(ticks);
        self
    }

    pub fn with_rebalance_factor(mut self, factor: f64) -> Self {
        self.rebalance_factor = factor;
        self
    }
}

/// Where a domain's state currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DomainState {
    /// Materialized in its shard's domain map.
    Resident,
    /// Serialized to snapshot bytes in the fleet store (or in flight to it —
    /// the hibernate job publishing the bytes may still be queued).
    Hibernated,
    /// Lost to a shard-worker panic: not in any shard's domain map and not
    /// in the store. Operations are refused until the repair path rebuilds
    /// the domain from the journal and reinstalls it.
    Degraded,
}

/// Per-domain placement and accounting record.
pub(crate) struct FleetEntry {
    pub shard: usize,
    pub state: DomainState,
    /// Count-based resident-size estimate, refreshed after every operation.
    pub est_bytes: u64,
    /// Size of the last hibernated snapshot encoding (0 until first
    /// hibernation).
    pub snapshot_bytes: u64,
    /// Dispatch sequence number of the last operation targeting this domain.
    pub last_touch: u64,
    /// EWMA of CPU micros per advance step.
    pub advance_ewma_micros: f64,
    /// Advance steps since the last rebalance (the shard-load measure).
    pub work_advances: u64,
    pub hibernations: u64,
    pub rehydrations: u64,
    pub migrations: u64,
    /// Counters captured the last time the domain left memory (and at
    /// creation), so `metrics()` never has to rehydrate a cold domain.
    pub cached: DomainMetrics,
}

/// Everything behind the fleet mutex.
pub(crate) struct FleetInner {
    pub entries: BTreeMap<DomainId, FleetEntry>,
    /// Resident domains ordered by `(last_touch, id)` — the LRU index.
    lru: BTreeSet<(u64, DomainId)>,
    /// Hibernated snapshot bytes (binary codec).
    pub(crate) store: HashMap<DomainId, Vec<u8>>,
    /// Domains (resident or hibernated) assigned to each shard.
    pub shard_counts: Vec<u64>,
    pub resident_bytes: u64,
    pub peak_resident_bytes: u64,
    /// Dispatch sequence: one tick per domain-targeted operation.
    pub touch_seq: u64,
    pub hibernations: u64,
    pub rehydrations: u64,
    pub migrations: u64,
}

/// Shared fleet state: one per runtime, an `Arc` of which also lives in
/// every shard worker (jobs publish snapshot bytes and cost samples
/// through it).
pub struct FleetState {
    pub(crate) config: FleetConfig,
    pub(crate) inner: Mutex<FleetInner>,
}

impl FleetState {
    pub(crate) fn new(config: FleetConfig, shards: usize) -> Self {
        Self {
            config,
            inner: Mutex::new(FleetInner {
                entries: BTreeMap::new(),
                lru: BTreeSet::new(),
                store: HashMap::new(),
                shard_counts: vec![0; shards],
                resident_bytes: 0,
                peak_resident_bytes: 0,
                touch_seq: 0,
                hibernations: 0,
                rehydrations: 0,
                migrations: 0,
            }),
        }
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, FleetInner> {
        self.inner.lock().expect("fleet lock")
    }

    /// Publishes a hibernated domain's snapshot bytes (called by the owning
    /// shard's hibernate job, after the domain left its map).
    pub(crate) fn store_bytes(&self, id: DomainId, bytes: Vec<u8>, cached: DomainMetrics) {
        let mut inner = self.lock();
        if let Some(e) = inner.entries.get_mut(&id) {
            e.snapshot_bytes = bytes.len() as u64;
            e.cached = cached;
        }
        inner.store.insert(id, bytes);
    }

    /// Claims a hibernated domain's bytes for rehydration. `None` while the
    /// publishing hibernate job is still queued on another shard.
    pub(crate) fn take_bytes(&self, id: DomainId) -> Option<Vec<u8>> {
        self.lock().store.remove(&id)
    }

    /// Marks `id` degraded after a shard-worker panic (see
    /// [`FleetInner::mark_degraded`]). Called from the panicking worker's
    /// supervisor, so it must not itself panic on missing ids.
    pub(crate) fn mark_degraded(&self, id: DomainId) {
        self.lock().mark_degraded(id);
    }

    /// Cost/size sample after one shard job: `steps` advance steps ran in
    /// `micros`, and the domain's size estimate is now `est_bytes`.
    pub(crate) fn note_op(&self, id: DomainId, micros: f64, steps: u64, est_bytes: u64) {
        let w = self.config.cost_ewma_weight;
        let mut guard = self.lock();
        let inner = &mut *guard;
        let Some(e) = inner.entries.get_mut(&id) else { return };
        if steps > 0 {
            let per_step = micros / steps as f64;
            e.advance_ewma_micros = if e.advance_ewma_micros == 0.0 {
                per_step
            } else {
                w * per_step + (1.0 - w) * e.advance_ewma_micros
            };
            e.work_advances += steps;
        }
        let old = e.est_bytes;
        e.est_bytes = est_bytes;
        if e.state == DomainState::Resident {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(old) + est_bytes;
            inner.peak_resident_bytes = inner.peak_resident_bytes.max(inner.resident_bytes);
        }
    }
}

/// How a dispatch should reach a domain.
#[derive(Debug)]
pub(crate) enum Routing {
    /// No placement entry: deliver to a fallback shard so the job observes
    /// `UnknownDomain` through the normal callback path.
    Unplaced,
    /// Deliver to `shard`; when `rehydrate`, enqueue a rehydrate job first
    /// (the domain was hibernated and has just been marked resident).
    To { shard: usize, rehydrate: bool },
    /// The domain was lost to a shard panic and awaits journal repair.
    Degraded,
}

impl FleetInner {
    /// Least-populated shard (ties break to the lowest index — round-robin
    /// for sequential creates).
    pub(crate) fn place(&self) -> usize {
        self.shard_counts
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (**c, *i))
            .map(|(i, _)| i)
            .expect("at least one shard")
    }

    /// Registers a new domain on `shard` as resident.
    pub(crate) fn register(
        &mut self,
        id: DomainId,
        shard: usize,
        est_bytes: u64,
        cached: DomainMetrics,
    ) {
        self.touch_seq += 1;
        let touch = self.touch_seq;
        self.shard_counts[shard] += 1;
        self.lru.insert((touch, id));
        self.resident_bytes += est_bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.entries.insert(
            id,
            FleetEntry {
                shard,
                state: DomainState::Resident,
                est_bytes,
                snapshot_bytes: 0,
                last_touch: touch,
                advance_ewma_micros: 0.0,
                work_advances: 0,
                hibernations: 0,
                rehydrations: 0,
                migrations: 0,
                cached,
            },
        );
    }

    /// Re-registers an existing id with fresh domain state (a runtime
    /// restore over a live fleet): keeps placement, swaps the accounting to
    /// the incoming footprint, flips hibernated entries resident, and drops
    /// any stored snapshot bytes — the incoming state supersedes them. (A
    /// hibernate job still in flight may repopulate the store with stale
    /// bytes; they are never read while the entry is resident and the next
    /// hibernation overwrites them.) Returns the shard, or `None` when the
    /// id is unknown.
    pub(crate) fn reinstall(
        &mut self,
        id: DomainId,
        est_bytes: u64,
        cached: DomainMetrics,
    ) -> Option<usize> {
        self.touch_seq += 1;
        let touch = self.touch_seq;
        let (shard, old_est, old_touch, was_resident) = {
            let e = self.entries.get_mut(&id)?;
            let prior = (e.shard, e.est_bytes, e.last_touch, e.state == DomainState::Resident);
            e.state = DomainState::Resident;
            e.est_bytes = est_bytes;
            e.last_touch = touch;
            e.snapshot_bytes = 0;
            e.cached = cached;
            prior
        };
        if was_resident {
            self.lru.remove(&(old_touch, id));
            self.resident_bytes = self.resident_bytes.saturating_sub(old_est);
        }
        self.lru.insert((touch, id));
        self.store.remove(&id);
        self.resident_bytes += est_bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        Some(shard)
    }

    /// Routes one operation: bumps touch recency and, when the domain is
    /// hibernated, flips it resident (the caller enqueues the rehydrate job
    /// under the same lock hold).
    pub(crate) fn route(&mut self, id: DomainId) -> Routing {
        self.touch_seq += 1;
        let touch = self.touch_seq;
        let Some(e) = self.entries.get_mut(&id) else { return Routing::Unplaced };
        if e.state == DomainState::Degraded {
            return Routing::Degraded;
        }
        if e.state == DomainState::Resident {
            self.lru.remove(&(e.last_touch, id));
        }
        e.last_touch = touch;
        self.lru.insert((touch, id));
        let shard = e.shard;
        let rehydrate = e.state == DomainState::Hibernated;
        if rehydrate {
            e.state = DomainState::Resident;
            e.rehydrations += 1;
            let est = e.est_bytes;
            self.rehydrations += 1;
            self.resident_bytes += est;
            self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        }
        Routing::To { shard, rehydrate }
    }

    /// Marks `id` hibernated (accounting only — the caller enqueues the
    /// hibernate job under the same lock hold). Returns its shard, or `None`
    /// if it was not resident.
    pub(crate) fn mark_hibernated(&mut self, id: DomainId) -> Option<usize> {
        let e = self.entries.get_mut(&id)?;
        if e.state != DomainState::Resident {
            return None;
        }
        e.state = DomainState::Hibernated;
        e.hibernations += 1;
        let (touch, est, shard) = (e.last_touch, e.est_bytes, e.shard);
        self.lru.remove(&(touch, id));
        self.resident_bytes = self.resident_bytes.saturating_sub(est);
        self.hibernations += 1;
        Some(shard)
    }

    /// Marks `id` degraded after a shard-worker panic lost its in-memory
    /// state: out of the LRU and resident accounting (the memory is gone
    /// with the panicked job), and out of the store — any hibernated bytes
    /// predate the ops the journal will replay. `reinstall` clears the mark.
    pub(crate) fn mark_degraded(&mut self, id: DomainId) {
        let Some(e) = self.entries.get_mut(&id) else { return };
        let prior = e.state;
        e.state = DomainState::Degraded;
        let (touch, est) = (e.last_touch, e.est_bytes);
        match prior {
            DomainState::Resident => {
                self.lru.remove(&(touch, id));
                self.resident_bytes = self.resident_bytes.saturating_sub(est);
            }
            DomainState::Hibernated => {
                self.store.remove(&id);
            }
            DomainState::Degraded => {}
        }
    }

    /// LRU eviction plan: marks least-recently-touched resident domains
    /// hibernated until estimated resident bytes fit under `watermark`,
    /// never evicting `protect`. Returns `(id, shard)` pairs whose hibernate
    /// jobs the caller must enqueue before releasing the lock.
    pub(crate) fn plan_evictions(
        &mut self,
        protect: Option<DomainId>,
        watermark: Option<u64>,
    ) -> Vec<(DomainId, usize)> {
        let Some(watermark) = watermark else { return Vec::new() };
        let mut victims = Vec::new();
        while self.resident_bytes > watermark {
            let Some(&(_, id)) = self.lru.iter().find(|(_, id)| Some(*id) != protect) else {
                break;
            };
            let shard = self.mark_hibernated(id).expect("lru entries are resident");
            victims.push((id, shard));
        }
        victims
    }

    /// Idle plan: marks resident domains untouched for more than
    /// `idle_ticks` dispatch ticks hibernated. Same enqueue contract as
    /// [`FleetInner::plan_evictions`].
    pub(crate) fn plan_idle(&mut self, idle_ticks: u64) -> Vec<(DomainId, usize)> {
        let cutoff = self.touch_seq.saturating_sub(idle_ticks);
        let idle: Vec<DomainId> = self.lru.range(..(cutoff, 0)).map(|&(_, id)| id).collect();
        idle.into_iter()
            .filter_map(|id| self.mark_hibernated(id).map(|shard| (id, shard)))
            .collect()
    }

    /// Advance-steps-since-last-rebalance load carried by each shard.
    pub(crate) fn shard_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.shard_counts.len()];
        for e in self.entries.values() {
            loads[e.shard] += e.work_advances;
        }
        loads
    }

    /// Greedy rebalance plan: repeatedly move the heaviest movable domain
    /// off the hottest shard onto the coolest one until no shard exceeds
    /// `factor` × the mean load. Pure planning — placements are not touched;
    /// the caller executes the returned `(id, from, to)` moves via
    /// `migrate` (which re-checks each one under the lock).
    pub(crate) fn plan_rebalance(&self, factor: f64) -> Vec<(DomainId, usize, usize)> {
        let shards = self.shard_counts.len();
        if shards < 2 {
            return Vec::new();
        }
        let mut loads: Vec<f64> = self.shard_loads().iter().map(|&l| l as f64).collect();
        // Simulated placement overrides, so multi-move plans stay coherent.
        let mut placed: HashMap<DomainId, usize> = HashMap::new();
        let mut moves = Vec::new();
        let total: f64 = loads.iter().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mean = total / shards as f64;
        for _ in 0..shards * 8 {
            let (hot, &hot_load) = loads
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .expect("at least one shard");
            if hot_load <= factor * mean {
                break;
            }
            let (cool, _) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .expect("at least one shard");
            // Best candidate: the largest domain whose move does not push
            // the hot shard below the mean (avoids ping-ponging); fall back
            // to the smallest loaded domain when every domain is huge.
            let excess = hot_load - mean;
            let mut best_fit: Option<(u64, DomainId)> = None;
            let mut smallest: Option<(u64, DomainId)> = None;
            for (&id, e) in &self.entries {
                let shard = placed.get(&id).copied().unwrap_or(e.shard);
                if shard != hot || e.work_advances == 0 {
                    continue;
                }
                let w = e.work_advances;
                if w as f64 <= excess && best_fit.is_none_or(|(bw, _)| w > bw) {
                    best_fit = Some((w, id));
                }
                if smallest.is_none_or(|(sw, _)| w < sw) {
                    smallest = Some((w, id));
                }
            }
            let Some((w, id)) = best_fit.or(smallest) else { break };
            // Only move if it strictly lowers the maximum: once the
            // coolest shard would end up at least as hot as the source,
            // the spread is domain-granularity-limited and further moves
            // just ping-pong the same domain.
            if loads[cool] + w as f64 >= hot_load {
                break;
            }
            loads[hot] -= w as f64;
            loads[cool] += w as f64;
            placed.insert(id, cool);
            moves.push((id, hot, cool));
        }
        moves
    }

    /// Resets the per-rebalance load window.
    pub(crate) fn reset_work(&mut self) {
        for e in self.entries.values_mut() {
            e.work_advances = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(id: DomainId) -> DomainMetrics {
        DomainMetrics {
            id,
            name: format!("d{id}"),
            steps: 0,
            decisions: 0,
            skipped: 0,
            ingested: 0,
            cache_entries: 0,
            sims: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            shed_count: 0,
            delayed_count: 0,
            ingest_budget_occupancy: 0.0,
            resident: true,
            shard: 0,
            last_touch_tick: 0,
            estimated_bytes: 0,
            advance_ewma_micros: 0.0,
            hibernations: 0,
            rehydrations: 0,
            degraded: false,
        }
    }

    fn fleet(watermark: Option<u64>, shards: usize) -> FleetState {
        let config = FleetConfig { resident_bytes_watermark: watermark, ..FleetConfig::default() };
        FleetState::new(config, shards)
    }

    #[test]
    fn placement_fills_least_populated_shard_first() {
        let f = fleet(None, 3);
        let mut inner = f.lock();
        for id in 0..7u64 {
            let s = inner.place();
            inner.register(id, s, 100, metrics(id));
        }
        assert_eq!(inner.shard_counts, vec![3, 2, 2]);
        let shards: Vec<usize> = inner.entries.values().map(|e| e.shard).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2, 0], "sequential creates round-robin");
    }

    #[test]
    fn watermark_evicts_lru_but_never_the_touched_domain() {
        let f = fleet(Some(250), 1);
        let mut inner = f.lock();
        for id in 0..3u64 {
            inner.register(id, 0, 100, metrics(id));
        }
        assert_eq!(inner.resident_bytes, 300);
        // Touch domain 0 so domain 1 becomes the LRU victim.
        assert!(matches!(inner.route(0), Routing::To { rehydrate: false, .. }));
        let victims = inner.plan_evictions(Some(0), Some(250));
        assert_eq!(victims, vec![(1, 0)]);
        assert_eq!(inner.resident_bytes, 200);
        assert_eq!(inner.entries[&1].state, DomainState::Hibernated);
        // Even a watermark of zero spares the protected domain.
        let victims = inner.plan_evictions(Some(0), Some(0));
        assert_eq!(victims, vec![(2, 0)]);
        assert!(inner.plan_evictions(Some(0), Some(0)).is_empty(), "only domain 0 left");
        assert_eq!(inner.entries[&0].state, DomainState::Resident);
    }

    #[test]
    fn routing_a_hibernated_domain_flips_it_resident() {
        let f = fleet(None, 2);
        let mut inner = f.lock();
        inner.register(9, 1, 64, metrics(9));
        assert_eq!(inner.mark_hibernated(9), Some(1));
        assert_eq!(inner.mark_hibernated(9), None, "already hibernated");
        assert_eq!(inner.resident_bytes, 0);
        match inner.route(9) {
            Routing::To { shard, rehydrate } => {
                assert_eq!(shard, 1);
                assert!(rehydrate);
            }
            other => panic!("expected placement, got {other:?}"),
        }
        assert_eq!(inner.resident_bytes, 64);
        assert_eq!(inner.entries[&9].rehydrations, 1);
        assert!(matches!(inner.route(99), Routing::Unplaced));
    }

    #[test]
    fn idle_plan_hibernate_only_stale_domains() {
        let f = fleet(None, 1);
        let mut inner = f.lock();
        inner.register(0, 0, 10, metrics(0));
        inner.register(1, 0, 10, metrics(1));
        // Burn ticks touching domain 1 only.
        for _ in 0..10 {
            inner.route(1);
        }
        let idle = inner.plan_idle(5);
        assert_eq!(idle, vec![(0, 0)]);
        assert!(inner.plan_idle(5).is_empty(), "already hibernated");
    }

    #[test]
    fn rebalance_plan_moves_hot_domains_off_the_hot_shard() {
        let f = fleet(None, 2);
        let mut inner = f.lock();
        // Four domains on shard 0 carrying all the load, shard 1 idle.
        for id in 0..4u64 {
            inner.register(id, 0, 10, metrics(id));
            inner.entries.get_mut(&id).unwrap().work_advances = 100;
        }
        inner.shard_counts = vec![4, 0];
        assert_eq!(inner.shard_loads(), vec![400, 0]);
        let moves = inner.plan_rebalance(1.5);
        assert!(!moves.is_empty());
        // Simulate the plan: final max load must be within factor × mean.
        let mut loads = [400i64, 0i64];
        for &(_, from, to) in &moves {
            loads[from] -= 100;
            loads[to] += 100;
        }
        let mean = 200.0;
        assert!(loads.iter().all(|&l| (l as f64) <= 1.5 * mean), "{loads:?}");
        // Balanced fleets plan nothing.
        inner.reset_work();
        assert!(inner.plan_rebalance(1.5).is_empty());
    }

    #[test]
    fn cost_samples_update_ewma_and_size_accounting() {
        let f = fleet(None, 1);
        {
            let mut inner = f.lock();
            inner.register(3, 0, 100, metrics(3));
        }
        f.note_op(3, 50.0, 1, 150);
        f.note_op(3, 90.0, 2, 120);
        let inner = f.lock();
        let e = &inner.entries[&3];
        assert_eq!(e.work_advances, 3);
        // 0.2 · 45 + 0.8 · 50 = 49.
        assert!((e.advance_ewma_micros - 49.0).abs() < 1e-9, "{}", e.advance_ewma_micros);
        assert_eq!(e.est_bytes, 120);
        assert_eq!(inner.resident_bytes, 120);
        assert_eq!(inner.peak_resident_bytes, 150);
    }
}
