//! `tempo-serve` — the Tempo controller daemon.
//!
//! ```text
//! tempo-serve [--addr 127.0.0.1:7077] [--shards N] [--sim-clock]
//!             [--snapshot FILE] [--port-file FILE]
//!             [--resident-bytes N] [--idle-ticks N]
//!             [--journal DIR] [--journal-checkpoint N] [--fault-plan SPEC]
//!             [--metrics-port PORT] [--metrics-port-file FILE]
//! ```
//!
//! Hosts a sharded [`tempo_serve::ControllerRuntime`] behind the JSONL/TCP
//! protocol. `--snapshot FILE` makes restarts warm: the file is restored at
//! boot (when present) and rewritten on graceful shutdown, so tuned
//! configurations, optimizer state, and What-if memo caches survive.
//! `--port-file` writes the bound port (useful with `--addr host:0`).
//! `--resident-bytes N` sets the fleet watermark: estimated resident bytes
//! stay under N by hibernating least-recently-touched domains to compact
//! binary snapshots (they rehydrate transparently on their next request).
//! `--idle-ticks N` additionally hibernates domains untouched for N
//! dispatch ticks on each `Tick` maintenance sweep.
//!
//! `--journal DIR` makes the daemon crash-only: every state-mutating
//! request is appended to a checksummed operations journal in DIR, a
//! checkpoint is cut every `--journal-checkpoint` ops (default 1024), and a
//! restart replays checkpoint + journal suffix to the exact pre-crash state
//! — `kill -9` is the supported shutdown path. `--fault-plan SPEC`
//! (`seed=7,shard=0.001,journal=0.01,conn=0.05,stall=0.1,stall-ms=25`)
//! arms the deterministic fault injector for chaos testing.
//!
//! `--metrics-port PORT` serves the Prometheus text exposition at
//! `http://127.0.0.1:PORT/metrics` (port 0 picks an ephemeral port;
//! `--metrics-port-file` writes the bound port back). The same payload is
//! reachable in-band via the `Telemetry` wire request. Telemetry collection
//! is always on in the daemon.

use std::sync::Arc;
use tempo_serve::proto;
use tempo_serve::{ClockMode, FaultPlan, RuntimeSnapshot, Server, ServerConfig};

fn main() {
    // The daemon always collects telemetry; embedded/library users opt in.
    tempo_obs::set_enabled(true);
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: tempo-serve [--addr HOST:PORT] [--shards N] [--sim-clock] \
             [--snapshot FILE] [--port-file FILE] [--resident-bytes N] [--idle-ticks N] \
             [--journal DIR] [--journal-checkpoint N] [--fault-plan SPEC] \
             [--metrics-port PORT] [--metrics-port-file FILE]"
        );
        return;
    }
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value("--addr") {
        config.addr = addr;
    }
    if let Some(shards) = flag_value("--shards") {
        config.shards = shards.parse().expect("--shards takes a positive integer");
    }
    if args.iter().any(|a| a == "--sim-clock") {
        config.clock = ClockMode::Sim;
    }
    if let Some(bytes) = flag_value("--resident-bytes") {
        config.fleet.resident_bytes_watermark =
            Some(bytes.parse().expect("--resident-bytes takes a byte count"));
    }
    if let Some(ticks) = flag_value("--idle-ticks") {
        config.fleet.idle_ticks = Some(ticks.parse().expect("--idle-ticks takes a tick count"));
    }
    if let Some(dir) = flag_value("--journal") {
        config.journal_dir = Some(dir.into());
    }
    if let Some(every) = flag_value("--journal-checkpoint") {
        config.checkpoint_every =
            every.parse().expect("--journal-checkpoint takes a positive op count");
    }
    if let Some(spec) = flag_value("--fault-plan") {
        let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("--fault-plan: {e}"));
        eprintln!("tempo-serve: fault plan armed: {plan:?}");
        config.faults = Arc::new(plan);
    }
    if let Some(port) = flag_value("--metrics-port") {
        let port: u16 = port.parse().expect("--metrics-port takes a port number");
        config.metrics_addr = Some(format!("127.0.0.1:{port}"));
    }
    let snapshot_path = flag_value("--snapshot");
    let port_file = flag_value("--port-file");
    let metrics_port_file = flag_value("--metrics-port-file");

    let server = Server::start(config).expect("bind tempo-serve listener");
    let addr = server.local_addr();
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", addr.port())).expect("write port file");
    }
    if let Some(metrics_addr) = server.metrics_addr() {
        eprintln!("tempo-serve: metrics exposition on http://{metrics_addr}/metrics");
        if let Some(path) = &metrics_port_file {
            std::fs::write(path, format!("{}\n", metrics_addr.port()))
                .expect("write metrics port file");
        }
    }

    if let Some(path) = &snapshot_path {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let snapshot: RuntimeSnapshot =
                    proto::decode(&text).unwrap_or_else(|e| panic!("parse snapshot {path}: {e}"));
                if let Some(sim) = server.sim_clock() {
                    sim.set(snapshot.clock_now);
                }
                let ids = server.runtime().restore(snapshot).expect("restore snapshot");
                eprintln!("tempo-serve: restored {} domain(s) from {path}", ids.len());
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("read snapshot {path}: {e}"),
        }
    }

    println!("tempo-serve listening on {addr}");
    let journal = server.journal().cloned();
    let runtime = server.join();

    // Graceful exit cuts a final checkpoint so the next boot replays
    // nothing. (A crash skips this — that's what the journal is for.)
    // Quiesced like every checkpoint: shard queues may still be draining
    // dispatched work, so the capture and the journal cut must share one
    // quiescent window.
    if let Some(journal) = &journal {
        let (snapshot, result) = runtime.quiesced_snapshot(|snapshot| {
            journal.write_checkpoint_with(snapshot, || runtime.clock().now())
        });
        match result {
            Ok(()) => eprintln!(
                "tempo-serve: final checkpoint ({} domain(s)) in {}",
                snapshot.domains.len(),
                journal.dir().display()
            ),
            Err(e) => eprintln!("tempo-serve: final checkpoint failed: {e}"),
        }
    }

    if let Some(path) = &snapshot_path {
        let snapshot = runtime.snapshot();
        let json = proto::encode(&snapshot);
        std::fs::write(path, json + "\n").expect("write snapshot");
        eprintln!("tempo-serve: wrote {} domain(s) to {path}", snapshot.domains.len());
    }
    let metrics = runtime.metrics();
    eprintln!(
        "tempo-serve: drained cleanly ({} domains, {} decisions, {} jobs ingested)",
        metrics.domains, metrics.total_decisions, metrics.total_ingested
    );
}
