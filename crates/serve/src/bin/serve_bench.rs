//! `serve_bench` — load generator for the serving runtime.
//!
//! ```text
//! serve_bench [--domains N] [--secs S] [--clients C] [--shards N]
//!             [--proto jsonl|binary] [--pipeline N] [--batch]
//!             [--connect HOST:PORT] [--shutdown] [--out FILE]
//!             [--min-decisions K] [--zipf S] [--resident-bytes N]
//!             [--retry N] [--metrics-summary]
//! ```
//!
//! Default mode spawns an in-process `tempo-serve` server (sim clock, real
//! TCP loopback sockets) and hammers it; `--connect` points the same load
//! at an externally started daemon instead (the CI smoke test does both
//! halves: `tempo-serve` in the background, `serve_bench --connect` against
//! it). Each client thread owns a slice of the domains and loops
//! ingest-burst → advance until the deadline; the process exits non-zero
//! unless every domain made at least `--min-decisions` decisions and the
//! server drained cleanly.
//!
//! `--proto binary` negotiates the framed binary codec, `--pipeline N`
//! keeps N requests in flight per connection (out-of-order completion over
//! binary, write-ahead over JSONL), and `--batch` folds each ingest+advance
//! round into a single `IngestAdvance` frame.
//!
//! `--zipf S` switches to fleet mode: clients draw target domains from a
//! Zipf(S) distribution over the whole fleet instead of sweeping an owned
//! slice, a `Rebalance` is issued at the halfway mark, and the report adds
//! peak estimated resident bytes plus the per-shard advance-load spread.
//! Combine with `--domains 100000 --resident-bytes N` to exercise
//! cold-domain hibernation at fleet scale: when the in-process server is
//! used, domains are created through the embedded runtime handle (no wire
//! round-trip per create) so hundred-thousand-domain fleets stay feasible.
//! The per-domain decision floor is skipped in zipf mode — a cold Zipf
//! tail is the whole point.
//!
//! `--metrics-summary` prints a one-screen end-of-run digest (request
//! p50/p95/p99 per codec+op, what-if cache hit rate, WAL append p99,
//! ingest shed/delay counts) sourced from the server's `Telemetry`
//! exposition — the numbers a human checks first, pre-extracted.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempo_serve::demo::{contention_burst, contention_spec, DEMO_WINDOW};
use tempo_serve::proto::{Request, Response};
use tempo_serve::{
    Client, ClientStats, ClockMode, FleetConfig, Proto, RetryPolicy, Server, ServerConfig,
};

fn connect(addr: &str, proto: Proto, retry: Option<RetryPolicy>) -> Client {
    match retry {
        Some(policy) => Client::connect_retry(addr, proto, policy),
        None => Client::connect(addr, proto),
    }
    .expect("connect to tempo-serve")
}

/// Zipf(s) sampler over ranks `0..n`: rank `i` is drawn with probability
/// proportional to `1/(i+1)^s`. Built once and shared read-only by every
/// client thread; sampling is a binary search over the cumulative table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Cheap deterministic per-thread unit-interval stream (LCG, high 53 bits).
fn next_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

/// One-screen digest of the server's Prometheus exposition: the handful of
/// numbers a human checks after a load run, pre-extracted.
fn print_metrics_summary(text: &str) {
    let exp = match tempo_obs::Exposition::parse(text) {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("serve_bench: telemetry parse failed: {e}");
            return;
        }
    };
    let quantile = |name: &str, subset: &[(&str, &str)], q: f64| {
        exp.histogram_quantile(name, subset, q).map_or_else(|| "-".into(), |v| format!("{v:.0}us"))
    };
    println!("serve_bench: telemetry digest —");
    let mut keys: Vec<(String, String)> = exp
        .samples
        .iter()
        .filter(|s| s.name == "tempo_request_duration_micros_count")
        .filter_map(|s| Some((s.label("codec")?.to_string(), s.label("op")?.to_string())))
        .collect();
    keys.sort();
    keys.dedup();
    for (codec, op) in &keys {
        let subset = [("codec", codec.as_str()), ("op", op.as_str())];
        let count = exp.sum("tempo_request_duration_micros_count", &subset);
        println!(
            "  {codec}/{op}: {count:.0} requests, p50 {} / p95 {} / p99 {}",
            quantile("tempo_request_duration_micros", &subset, 0.50),
            quantile("tempo_request_duration_micros", &subset, 0.95),
            quantile("tempo_request_duration_micros", &subset, 0.99),
        );
    }
    let hits = exp.sum("tempo_whatif_cache_hits_total", &[]);
    let lookups = hits + exp.sum("tempo_whatif_cache_misses_total", &[]);
    if lookups > 0.0 {
        println!(
            "  what-if cache: {:.1}% hit rate ({hits:.0} of {lookups:.0} lookups), {:.0} sims",
            100.0 * hits / lookups,
            exp.sum("tempo_whatif_sims_total", &[]),
        );
    }
    let wal_appends = exp.sum("tempo_wal_appends_total", &[]);
    if wal_appends > 0.0 {
        println!(
            "  wal: {wal_appends:.0} appends (p99 {}), {:.0} checkpoints",
            quantile("tempo_wal_append_duration_micros", &[], 0.99),
            exp.sum("tempo_wal_checkpoints_total", &[]),
        );
    }
    println!(
        "  ingest backpressure: {:.0} shed, {:.0} delayed",
        exp.sum("tempo_ingest_shed_total", &[]),
        exp.sum("tempo_ingest_delayed_total", &[]),
    );
}

fn main() {
    // The bench always collects telemetry: the in-process server shares this
    // process, and the digest below reads it back out of the exposition.
    tempo_obs::set_enabled(true);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let parse = |name: &str, default: u64| {
        flag_value(name).map_or(default, |v| v.parse().unwrap_or_else(|_| panic!("bad {name}")))
    };
    let domains = parse("--domains", 64).max(1);
    let secs = flag_value("--secs").map_or(2.0, |v| v.parse::<f64>().expect("bad --secs"));
    let clients = parse("--clients", domains.min(8)).max(1) as usize;
    let shards = parse("--shards", tempo_serve::server::default_shards() as u64) as usize;
    let min_decisions = parse("--min-decisions", 1);
    let proto = flag_value("--proto")
        .map_or(Proto::Jsonl, |v| Proto::parse(&v).unwrap_or_else(|e| panic!("{e}")));
    let pipeline = parse("--pipeline", 1).max(1) as usize;
    let batch = args.iter().any(|a| a == "--batch");
    let zipf_s = flag_value("--zipf").map(|v| v.parse::<f64>().expect("bad --zipf"));
    let resident_bytes =
        flag_value("--resident-bytes").map(|v| v.parse::<u64>().expect("bad --resident-bytes"));
    let external = flag_value("--connect");
    let shutdown_external = args.iter().any(|a| a == "--shutdown");
    let metrics_summary = args.iter().any(|a| a == "--metrics-summary");
    let out = flag_value("--out");
    // `--retry N` arms the client retry policy (N attempts per call,
    // exponential backoff, transparent reconnect) — the knob the chaos
    // smoke uses to ride out injected connection drops and stalls.
    let retry = flag_value("--retry").map(|v| RetryPolicy {
        max_attempts: v.parse().expect("bad --retry"),
        ..RetryPolicy::default()
    });

    // Spawn an in-process server unless pointed at an external one.
    let spawned = if external.is_none() {
        Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                shards,
                clock: ClockMode::Sim,
                fleet: FleetConfig {
                    resident_bytes_watermark: resident_bytes,
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            })
            .expect("start in-process tempo-serve"),
        )
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| spawned.as_ref().unwrap().local_addr().to_string());

    let mut control = connect(&addr, proto, retry);
    let sim_clock = match control.call(&Request::Hello).expect("handshake") {
        Response::Hello { clock, .. } => clock == "sim",
        other => panic!("handshake failed: {other:?}"),
    };
    // Ingest accounting below is a delta, and the clock reading seeds the
    // burst time axis: an external daemon may already carry traffic and an
    // advanced sim clock from earlier runs (CI drives one daemon twice).
    let (initial_ingested, initial_clock) =
        match control.call(&Request::Metrics).expect("initial metrics") {
            Response::Metrics { metrics } => (metrics.total_ingested, metrics.clock_now),
            other => panic!("initial metrics failed: {other:?}"),
        };

    // Create the fleet. Against the in-process server the embedded runtime
    // handle skips the per-create wire round-trip — the difference between
    // seconds and minutes at `--domains 100000`.
    let create_started = Instant::now();
    let ids: Vec<u64> = if let Some(server) = &spawned {
        let runtime = server.runtime();
        (0..domains)
            .map(|i| {
                runtime
                    .create_domain(contention_spec(&format!("domain-{i}"), i))
                    .unwrap_or_else(|e| panic!("create domain {i} failed: {e}"))
            })
            .collect()
    } else {
        (0..domains)
            .map(|i| {
                match control
                    .call(&Request::CreateDomain {
                        spec: contention_spec(&format!("domain-{i}"), i),
                    })
                    .expect("create domain")
                {
                    Response::Created { domain } => domain,
                    other => panic!("create domain {i} failed: {other:?}"),
                }
            })
            .collect()
    };
    if domains >= 10_000 {
        println!(
            "serve_bench: created {domains} domains in {:.1}s",
            create_started.elapsed().as_secs_f64()
        );
    }

    // Clients hammer the fleet until the deadline: a round-robin sweep of
    // an owned slice by default, Zipf-sampled draws over every domain in
    // zipf mode.
    let zipf = zipf_s.map(|s| Arc::new(Zipf::new(domains, s)));
    let shared_ids = Arc::new(ids);
    let stop = Arc::new(AtomicBool::new(false));
    // The server's sim-clock reading, refreshed by the ticker thread. Under
    // a sim clock, bursts time themselves off this instead of the
    // per-client round counter: a round-based time axis races ahead of the
    // server clock (fast rounds) or lags hopelessly behind it (an
    // already-ticked daemon), and either way every advance window comes up
    // empty.
    let sim_now = Arc::new(AtomicU64::new(initial_clock));
    let decisions = Arc::new(AtomicU64::new(0));
    let skipped = Arc::new(AtomicU64::new(0));
    let events = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let ids = Arc::clone(&shared_ids);
            let my_ids: Vec<u64> = ids.iter().copied().skip(c).step_by(clients).collect();
            let zipf = zipf.clone();
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let sim_now = Arc::clone(&sim_now);
            let decisions = Arc::clone(&decisions);
            let skipped = Arc::clone(&skipped);
            let events = Arc::clone(&events);
            let busy = Arc::clone(&busy);
            std::thread::spawn(move || {
                // Per-thread jitter seeds keep retrying clients from
                // thundering back in lockstep after a shared stall.
                let retry = retry.map(|p| RetryPolicy { jitter_seed: c as u64 + 1, ..p });
                let mut client = connect(&addr, proto, retry);
                let mut rng = 0x9E3779B97F4A7C15u64 ^ (c as u64).wrapping_mul(0xD1B54A32D192ED03);
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Keep the burst base one full window behind the sim
                    // clock: a burst spans ~110s forward from `base`, so
                    // basing it at `now` would land it in the *next* window.
                    // Without a sim clock (wall-clock daemon) fall back to
                    // the round counter as the time axis.
                    let base = if sim_clock {
                        sim_now.load(Ordering::Relaxed).saturating_sub(DEMO_WINDOW)
                    } else {
                        round * (DEMO_WINDOW / 4)
                    };
                    // One round = one pipelined window of either fused
                    // `IngestAdvance` frames or ingest/advance pairs. The
                    // targets are the owned slice (sweep mode) or a fresh
                    // Zipf draw (fleet mode).
                    let targets: Vec<u64> = match &zipf {
                        Some(z) => (0..64.min(my_ids.len()))
                            .map(|_| ids[z.sample(next_unit(&mut rng))])
                            .collect(),
                        None => my_ids.clone(),
                    };
                    let requests: Vec<Request> = targets
                        .iter()
                        .flat_map(|&id| {
                            let jobs = contention_burst(base, 6, id ^ round);
                            if batch {
                                vec![Request::IngestAdvance { domain: id, jobs, steps: 1 }]
                            } else {
                                vec![
                                    Request::Ingest { domain: id, jobs },
                                    Request::Advance { domain: id, steps: 1 },
                                ]
                            }
                        })
                        .collect();
                    let responses = match client.call_pipelined(&requests, pipeline) {
                        Ok(r) => r,
                        // With retry armed the server may genuinely be gone
                        // (chaos kill): exit the loop with the stats we have
                        // instead of panicking the whole bench.
                        Err(e) if retry.is_some() => {
                            eprintln!("serve_bench: client {c} giving up: {e}");
                            break;
                        }
                        Err(e) => panic!("pipelined round: {e}"),
                    };
                    for response in responses {
                        match response {
                            Response::Ingested { accepted, .. } => {
                                events.fetch_add(accepted, Ordering::Relaxed);
                            }
                            Response::Busy { .. } => {
                                busy.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Advanced { decisions: recs, .. } => {
                                for rec in recs {
                                    if rec.skipped {
                                        skipped.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Response::IngestAdvanced {
                                accepted,
                                retry_after_micros,
                                decisions: recs,
                                ..
                            } => {
                                events.fetch_add(accepted, Ordering::Relaxed);
                                if retry_after_micros.is_some() {
                                    busy.fetch_add(1, Ordering::Relaxed);
                                }
                                for rec in recs {
                                    if rec.skipped {
                                        skipped.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            other => panic!("request failed: {other:?}"),
                        }
                    }
                    round += 1;
                }
                client.stats()
            })
        })
        .collect();

    // Main thread paces the deadline and, under a sim clock, rolls time
    // forward so windows keep moving. In zipf mode a single `Rebalance` is
    // issued at the halfway mark; the advance-load counters reset there, so
    // the final per-shard spread reflects the rebalanced placement.
    let mut rebalance_moves: Option<u64> = None;
    while started.elapsed().as_secs_f64() < secs {
        std::thread::sleep(Duration::from_millis(25));
        if sim_clock {
            match control.call(&Request::Tick { micros: DEMO_WINDOW / 8 }).expect("tick") {
                Response::Ticked { now } => sim_now.store(now, Ordering::Relaxed),
                other => panic!("tick failed: {other:?}"),
            }
        }
        if zipf.is_some()
            && rebalance_moves.is_none()
            && started.elapsed().as_secs_f64() >= secs / 2.0
        {
            rebalance_moves = match control.call(&Request::Rebalance).expect("rebalance") {
                Response::Rebalanced { moves } => Some(moves.len() as u64),
                other => panic!("rebalance failed: {other:?}"),
            };
        }
    }
    stop.store(true, Ordering::SeqCst);
    let mut retry_stats = ClientStats::default();
    for h in handles {
        let s = h.join().expect("client thread");
        retry_stats.attempts += s.attempts;
        retry_stats.retries += s.retries;
        retry_stats.reconnects += s.reconnects;
        retry_stats.busy_retries += s.busy_retries;
        retry_stats.exhausted += s.exhausted;
    }
    let elapsed = started.elapsed().as_secs_f64();
    if retry.is_some() {
        let c = control.stats();
        println!(
            "serve_bench: retry — {} attempts, {} retries, {} reconnects, \
             {} busy retries, {} exhausted",
            retry_stats.attempts + c.attempts,
            retry_stats.retries + c.retries,
            retry_stats.reconnects + c.reconnects,
            retry_stats.busy_retries + c.busy_retries,
            retry_stats.exhausted + c.exhausted
        );
    }

    // Deterministic floor catch-up: on a loaded single-core box a client
    // thread can be starved out of its entire timed budget, which says
    // nothing about the fleet. Before judging the per-domain decision
    // floor, give every under-floor domain direct synchronous rounds with
    // jobs placed squarely in the live window — a genuinely wedged shard
    // fails these too, which is the failure class the floor exists to
    // catch.
    if zipf.is_none() && min_decisions > 0 {
        for _ in 0..3 * min_decisions {
            let m = if let Some(server) = &spawned {
                server.runtime().metrics()
            } else {
                match control.call(&Request::Metrics).expect("catch-up metrics") {
                    Response::Metrics { metrics } => metrics,
                    other => panic!("catch-up metrics failed: {other:?}"),
                }
            };
            let under: Vec<u64> = m
                .per_domain
                .iter()
                .filter(|d| shared_ids.contains(&d.id) && d.decisions < min_decisions)
                .map(|d| d.id)
                .collect();
            if under.is_empty() {
                break;
            }
            for id in under {
                let jobs = contention_burst(m.clock_now.saturating_sub(DEMO_WINDOW), 6, id);
                match control.call(&Request::Ingest { domain: id, jobs }).expect("catch-up ingest")
                {
                    Response::Ingested { accepted, .. } => {
                        events.fetch_add(accepted, Ordering::Relaxed);
                    }
                    Response::Busy { .. } => {
                        busy.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("catch-up ingest failed: {other:?}"),
                }
                match control
                    .call(&Request::Advance { domain: id, steps: 1 })
                    .expect("catch-up advance")
                {
                    Response::Advanced { decisions: recs, .. } => {
                        for rec in recs {
                            if rec.skipped {
                                skipped.fetch_add(1, Ordering::Relaxed);
                            } else {
                                decisions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    other => panic!("catch-up advance failed: {other:?}"),
                }
            }
        }
    }

    // Final metrics: read through the embedded handle when we own the
    // server (a 100k-domain fleet serializes to tens of MB of JSONL — no
    // reason to push that through the socket), over the wire otherwise.
    let metrics = if let Some(server) = &spawned {
        server.runtime().metrics()
    } else {
        match control.call(&Request::Metrics).expect("metrics") {
            Response::Metrics { metrics } => metrics,
            other => panic!("metrics failed: {other:?}"),
        }
    };
    let total_decisions = decisions.load(Ordering::SeqCst);
    let total_events = events.load(Ordering::SeqCst);
    let dps = total_decisions as f64 / elapsed;
    let eps = total_events as f64 / elapsed;
    let proto_name = match proto {
        Proto::Jsonl => "jsonl",
        Proto::Binary => "binary",
    };
    println!(
        "serve_bench: {domains} domains / {clients} clients / {:.1}s \
         [{proto_name}, pipeline {pipeline}{}] — \
         {total_decisions} decisions ({dps:.1}/s), {total_events} ingest events ({eps:.1}/s), \
         {} skipped, {} busy, {} cache entries, {} sims",
        elapsed,
        if batch { ", batched" } else { "" },
        skipped.load(Ordering::SeqCst),
        busy.load(Ordering::SeqCst),
        metrics.total_cache_entries,
        metrics.total_sims
    );

    // Fleet accounting: per-shard advance-load spread (post-rebalance in
    // zipf mode) and the resident-bytes ceiling.
    let shard_total: u64 = metrics.shard_loads.iter().sum();
    let shard_max = metrics.shard_loads.iter().copied().max().unwrap_or(0);
    let shard_mean = shard_total as f64 / metrics.shard_loads.len().max(1) as f64;
    let load_ratio = if shard_total > 0 { shard_max as f64 / shard_mean } else { 1.0 };
    println!(
        "serve_bench: fleet — {} of {} domains resident, {} resident bytes \
         (peak {}), {} hibernations / {} rehydrations / {} migrations, \
         shard loads {:?} (max/mean {:.2}{})",
        metrics.resident_domains,
        metrics.domains,
        metrics.resident_bytes,
        metrics.peak_resident_bytes,
        metrics.total_hibernations,
        metrics.total_rehydrations,
        metrics.total_migrations,
        metrics.shard_loads,
        load_ratio,
        match rebalance_moves {
            Some(n) => format!(", {n} rebalance moves"),
            None => String::new(),
        }
    );
    if let Some(watermark) = resident_bytes {
        // The eviction plan runs inside the dispatch critical section, so
        // the peak can overshoot the watermark by at most the domain being
        // touched, plus in-flight growth noted for ops already dispatched
        // on other shards — "watermark plus one domain", with a little
        // cross-shard slack.
        let max_domain = metrics.per_domain.iter().map(|m| m.estimated_bytes).max().unwrap_or(0);
        let bound = watermark + max_domain + 64 * 1024;
        assert!(
            metrics.peak_resident_bytes <= bound,
            "peak resident bytes {} exceeded watermark {} + one domain ({} + slack = {})",
            metrics.peak_resident_bytes,
            watermark,
            max_domain,
            bound
        );
    }
    if zipf.is_some() && metrics.shard_loads.len() >= 2 && shard_total >= 50 * shards as u64 {
        assert!(
            load_ratio <= 2.0 + 1e-9,
            "shard advance load {shard_max} is more than 2x the mean {shard_mean:.1} \
             after rebalancing: {:?}",
            metrics.shard_loads
        );
    }

    if let Some(path) = out {
        let zipf_field = zipf_s.map_or("null".to_string(), |s| format!("{s}"));
        let json = format!(
            "{{\n  \"domains\": {domains},\n  \"clients\": {clients},\n  \"secs\": {elapsed},\n  \
             \"proto\": \"{proto_name}\",\n  \"pipeline\": {pipeline},\n  \
             \"batch\": {batch},\n  \"zipf\": {zipf_field},\n  \
             \"decisions\": {total_decisions},\n  \"ingest_events\": {total_events},\n  \
             \"decisions_per_sec\": {dps},\n  \"ingest_events_per_sec\": {eps},\n  \
             \"resident_domains\": {},\n  \"peak_resident_bytes\": {},\n  \
             \"hibernations\": {},\n  \"shard_load_ratio\": {load_ratio}\n}}\n",
            metrics.resident_domains, metrics.peak_resident_bytes, metrics.total_hibernations
        );
        std::fs::write(&path, json).expect("write --out report");
        println!("wrote {path}");
    }

    // The digest reads the server's exposition over the wire, so it must
    // run while the control connection is still up.
    if metrics_summary {
        match control.call(&Request::Telemetry).expect("telemetry") {
            Response::Telemetry { text } => print_metrics_summary(&text),
            other => panic!("telemetry failed: {other:?}"),
        }
    }

    // Shut the spawned server down and verify the drain; `--shutdown` asks
    // the same of an external daemon (CI smoke stops the background
    // `tempo-serve` this way).
    if let Some(server) = spawned {
        assert!(matches!(
            control.call(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        ));
        let runtime = server.join();
        let final_metrics = runtime.metrics();
        assert_eq!(final_metrics.domains, domains, "all domains survived to shutdown");
        println!("serve_bench: server drained cleanly");
    } else if shutdown_external {
        assert!(matches!(
            control.call(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        ));
        println!("serve_bench: asked external server to shut down");
    }

    // The floor is per-domain: one healthy domain must not mask a wedged
    // fleet (exactly the sharding failure class this smoke exists to
    // catch). Skipped in zipf mode — a cold, rarely drawn tail is expected
    // there, not a wedged shard.
    if zipf.is_none() {
        let starved: Vec<String> = metrics
            .per_domain
            .iter()
            .filter(|m| shared_ids.contains(&m.id) && m.decisions < min_decisions)
            .map(|m| format!("{} ({}/{})", m.name, m.decisions, min_decisions))
            .collect();
        if !starved.is_empty() {
            eprintln!(
                "serve_bench: FAILED — {} of {domains} domains under the \
                 {min_decisions}-decision floor: {}",
                starved.len(),
                starved.join(", ")
            );
            std::process::exit(1);
        }
    }
    if retry_stats.retries == 0 && control.stats().retries == 0 {
        assert_eq!(
            metrics.total_ingested - initial_ingested,
            total_events,
            "server-side ingest accounting matches the client side"
        );
    } else {
        // Retry is at-least-once: a resend after a torn connection may have
        // re-executed an ingest the client never saw acknowledged, so the
        // server can only have counted at least what the clients did.
        assert!(
            metrics.total_ingested - initial_ingested >= total_events,
            "server-side ingest accounting fell below the client side under retry"
        );
    }
}
