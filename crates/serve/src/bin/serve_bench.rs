//! `serve_bench` — load generator for the serving runtime.
//!
//! ```text
//! serve_bench [--domains N] [--secs S] [--clients C] [--shards N]
//!             [--proto jsonl|binary] [--pipeline N] [--batch]
//!             [--connect HOST:PORT] [--shutdown] [--out FILE]
//!             [--min-decisions K]
//! ```
//!
//! Default mode spawns an in-process `tempo-serve` server (sim clock, real
//! TCP loopback sockets) and hammers it; `--connect` points the same load
//! at an externally started daemon instead (the CI smoke test does both
//! halves: `tempo-serve` in the background, `serve_bench --connect` against
//! it). Each client thread owns a slice of the domains and loops
//! ingest-burst → advance until the deadline; the process exits non-zero
//! unless every domain made at least `--min-decisions` decisions and the
//! server drained cleanly.
//!
//! `--proto binary` negotiates the framed binary codec, `--pipeline N`
//! keeps N requests in flight per connection (out-of-order completion over
//! binary, write-ahead over JSONL), and `--batch` folds each ingest+advance
//! round into a single `IngestAdvance` frame.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempo_serve::demo::{contention_burst, contention_spec, DEMO_WINDOW};
use tempo_serve::proto::{Request, Response};
use tempo_serve::{Client, ClockMode, Proto, Server, ServerConfig};

fn connect(addr: &str, proto: Proto) -> Client {
    Client::connect(addr, proto).expect("connect to tempo-serve")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let parse = |name: &str, default: u64| {
        flag_value(name).map_or(default, |v| v.parse().unwrap_or_else(|_| panic!("bad {name}")))
    };
    let domains = parse("--domains", 64).max(1);
    let secs = flag_value("--secs").map_or(2.0, |v| v.parse::<f64>().expect("bad --secs"));
    let clients = parse("--clients", domains.min(8)).max(1) as usize;
    let shards = parse("--shards", tempo_serve::server::default_shards() as u64) as usize;
    let min_decisions = parse("--min-decisions", 1);
    let proto = flag_value("--proto")
        .map_or(Proto::Jsonl, |v| Proto::parse(&v).unwrap_or_else(|e| panic!("{e}")));
    let pipeline = parse("--pipeline", 1).max(1) as usize;
    let batch = args.iter().any(|a| a == "--batch");
    let external = flag_value("--connect");
    let shutdown_external = args.iter().any(|a| a == "--shutdown");
    let out = flag_value("--out");

    // Spawn an in-process server unless pointed at an external one.
    let spawned = if external.is_none() {
        Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                shards,
                clock: ClockMode::Sim,
            })
            .expect("start in-process tempo-serve"),
        )
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| spawned.as_ref().unwrap().local_addr().to_string());

    let mut control = connect(&addr, proto);
    let sim_clock = match control.call(&Request::Hello).expect("handshake") {
        Response::Hello { clock, .. } => clock == "sim",
        other => panic!("handshake failed: {other:?}"),
    };
    // Ingest accounting below is a delta: an external daemon may already
    // carry traffic from earlier runs (CI drives one daemon twice).
    let initial_ingested = match control.call(&Request::Metrics).expect("initial metrics") {
        Response::Metrics { metrics } => metrics.total_ingested,
        other => panic!("initial metrics failed: {other:?}"),
    };

    // Create the fleet.
    let ids: Vec<u64> = (0..domains)
        .map(|i| {
            match control
                .call(&Request::CreateDomain { spec: contention_spec(&format!("domain-{i}"), i) })
                .expect("create domain")
            {
                Response::Created { domain } => domain,
                other => panic!("create domain {i} failed: {other:?}"),
            }
        })
        .collect();

    // Clients hammer their slice until the deadline.
    let stop = Arc::new(AtomicBool::new(false));
    let decisions = Arc::new(AtomicU64::new(0));
    let skipped = Arc::new(AtomicU64::new(0));
    let events = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let my_ids: Vec<u64> = ids.iter().copied().skip(c).step_by(clients).collect();
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let decisions = Arc::clone(&decisions);
            let skipped = Arc::clone(&skipped);
            let events = Arc::clone(&events);
            let busy = Arc::clone(&busy);
            std::thread::spawn(move || {
                let mut client = connect(&addr, proto);
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let base = round * (DEMO_WINDOW / 4);
                    // One round = every owned domain gets a burst and an
                    // advance, issued as a pipelined window of either
                    // fused `IngestAdvance` frames or ingest/advance pairs.
                    let requests: Vec<Request> = my_ids
                        .iter()
                        .flat_map(|&id| {
                            let jobs = contention_burst(base, 6, id ^ round);
                            if batch {
                                vec![Request::IngestAdvance { domain: id, jobs, steps: 1 }]
                            } else {
                                vec![
                                    Request::Ingest { domain: id, jobs },
                                    Request::Advance { domain: id, steps: 1 },
                                ]
                            }
                        })
                        .collect();
                    let responses =
                        client.call_pipelined(&requests, pipeline).expect("pipelined round");
                    for response in responses {
                        match response {
                            Response::Ingested { accepted, .. } => {
                                events.fetch_add(accepted, Ordering::Relaxed);
                            }
                            Response::Busy { .. } => {
                                busy.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Advanced { decisions: recs, .. } => {
                                for rec in recs {
                                    if rec.skipped {
                                        skipped.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Response::IngestAdvanced {
                                accepted,
                                retry_after_micros,
                                decisions: recs,
                                ..
                            } => {
                                events.fetch_add(accepted, Ordering::Relaxed);
                                if retry_after_micros.is_some() {
                                    busy.fetch_add(1, Ordering::Relaxed);
                                }
                                for rec in recs {
                                    if rec.skipped {
                                        skipped.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        decisions.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            other => panic!("request failed: {other:?}"),
                        }
                    }
                    round += 1;
                }
            })
        })
        .collect();

    // Main thread paces the deadline and, under a sim clock, rolls time
    // forward so windows keep moving.
    while started.elapsed().as_secs_f64() < secs {
        std::thread::sleep(Duration::from_millis(25));
        if sim_clock {
            control.call(&Request::Tick { micros: DEMO_WINDOW / 8 }).expect("tick");
        }
    }
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();

    let metrics = match control.call(&Request::Metrics).expect("metrics") {
        Response::Metrics { metrics } => metrics,
        other => panic!("metrics failed: {other:?}"),
    };
    let total_decisions = decisions.load(Ordering::SeqCst);
    let total_events = events.load(Ordering::SeqCst);
    let dps = total_decisions as f64 / elapsed;
    let eps = total_events as f64 / elapsed;
    let proto_name = match proto {
        Proto::Jsonl => "jsonl",
        Proto::Binary => "binary",
    };
    println!(
        "serve_bench: {domains} domains / {clients} clients / {:.1}s \
         [{proto_name}, pipeline {pipeline}{}] — \
         {total_decisions} decisions ({dps:.1}/s), {total_events} ingest events ({eps:.1}/s), \
         {} skipped, {} busy, {} cache entries, {} sims",
        elapsed,
        if batch { ", batched" } else { "" },
        skipped.load(Ordering::SeqCst),
        busy.load(Ordering::SeqCst),
        metrics.total_cache_entries,
        metrics.total_sims
    );
    if let Some(path) = out {
        let json = format!(
            "{{\n  \"domains\": {domains},\n  \"clients\": {clients},\n  \"secs\": {elapsed},\n  \
             \"proto\": \"{proto_name}\",\n  \"pipeline\": {pipeline},\n  \
             \"batch\": {batch},\n  \
             \"decisions\": {total_decisions},\n  \"ingest_events\": {total_events},\n  \
             \"decisions_per_sec\": {dps},\n  \"ingest_events_per_sec\": {eps}\n}}\n"
        );
        std::fs::write(&path, json).expect("write --out report");
        println!("wrote {path}");
    }

    // Shut the spawned server down and verify the drain; `--shutdown` asks
    // the same of an external daemon (CI smoke stops the background
    // `tempo-serve` this way).
    if let Some(server) = spawned {
        assert!(matches!(
            control.call(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        ));
        let runtime = server.join();
        let final_metrics = runtime.metrics();
        assert_eq!(final_metrics.domains, domains, "all domains survived to shutdown");
        println!("serve_bench: server drained cleanly");
    } else if shutdown_external {
        assert!(matches!(
            control.call(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        ));
        println!("serve_bench: asked external server to shut down");
    }

    // The floor is per-domain: one healthy domain must not mask a wedged
    // fleet (exactly the sharding failure class this smoke exists to catch).
    let starved: Vec<String> = metrics
        .per_domain
        .iter()
        .filter(|m| ids.contains(&m.id) && m.decisions < min_decisions)
        .map(|m| format!("{} ({}/{})", m.name, m.decisions, min_decisions))
        .collect();
    if !starved.is_empty() {
        eprintln!(
            "serve_bench: FAILED — {} of {domains} domains under the {min_decisions}-decision \
             floor: {}",
            starved.len(),
            starved.join(", ")
        );
        std::process::exit(1);
    }
    assert_eq!(
        metrics.total_ingested - initial_ingested,
        total_events,
        "server-side ingest accounting matches the client side"
    );
}
