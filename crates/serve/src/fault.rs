//! Deterministic fault injection for the serving layer.
//!
//! Crash-only software is only testable if the crashes are reproducible:
//! [`FaultPlan`] turns a single seed into a deterministic schedule of shard
//! worker panics, journal write I/O errors, and connection drops/stalls.
//! Every injection point in the runtime and server consults a
//! [`FaultInjector`] — a plain trait with no-op defaults, so production code
//! carries no `#[cfg(test)]` forks and the zero-fault path costs a virtual
//! call per operation, not a branch per feature flag.
//!
//! The schedule is a pure function of `(seed, fault kind, event index)`:
//! two plans built from the same seed agree on every decision, which is what
//! lets the chaos tests assert "same seed ⇒ same failure schedule" and lets
//! a failing CI run be replayed locally from its logged seed.

use std::sync::Arc;
use std::time::Duration;

/// Injection points the serving stack consults. All methods default to
/// "no fault", so `impl FaultInjector for MyProbe {}` with one override is a
/// valid targeted injector (the supervision tests do exactly that).
pub trait FaultInjector: Send + Sync {
    /// Should the `index`-th instrumented operation on `shard` panic the
    /// worker mid-job? (The supervisor catches it and degrades the active
    /// domain.)
    fn shard_panic(&self, shard: usize, index: u64) -> bool {
        let _ = (shard, index);
        false
    }

    /// Should the `index`-th journal append fail with an I/O error? (The
    /// server logs and keeps serving; the un-journaled op may be lost on
    /// crash.)
    fn journal_write_fails(&self, index: u64) -> bool {
        let _ = index;
        false
    }

    /// Should the `index`-th accepted connection be dropped before the
    /// protocol handshake? (Clients see EOF and must reconnect.)
    fn drop_connection(&self, index: u64) -> bool {
        let _ = index;
        false
    }

    /// Artificial delay before servicing the `index`-th accepted
    /// connection, if any.
    fn stall_connection(&self, index: u64) -> Option<Duration> {
        let _ = index;
        None
    }
}

/// The production injector: never faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// A no-fault injector handle (the default for servers and runtimes).
pub fn no_faults() -> Arc<dyn FaultInjector> {
    Arc::new(NoFaults)
}

/// Fault kinds a [`FaultPlan`] schedules; each hashes its events through a
/// distinct stream so the rates are independent.
const KIND_SHARD: u64 = 0x5348_4152;
const KIND_JOURNAL: u64 = 0x4A4F_5552;
const KIND_CONN: u64 = 0x434F_4E4E;
const KIND_STALL: u64 = 0x5354_414C;

/// A seed-driven, rate-parameterized fault schedule.
///
/// Rates are probabilities in `[0, 1]` applied per event (per instrumented
/// shard op, per journal append, per accepted connection). A rate of 0
/// disables that fault kind entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Probability an instrumented shard op panics its worker.
    pub shard_panic_rate: f64,
    /// Probability a journal append fails with an injected I/O error.
    pub journal_error_rate: f64,
    /// Probability an accepted connection is dropped pre-handshake.
    pub conn_drop_rate: f64,
    /// Probability an accepted connection is stalled before service.
    pub conn_stall_rate: f64,
    /// How long a stalled connection waits.
    pub stall: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            shard_panic_rate: 0.0,
            journal_error_rate: 0.0,
            conn_drop_rate: 0.0,
            conn_stall_rate: 0.0,
            stall: Duration::from_millis(10),
        }
    }
}

/// SplitMix64 — the finalizer is a bijection on u64 with good avalanche,
/// which is all a schedule hash needs. (Also the client's retry-jitter
/// source: deterministic per seed, no RNG dependency.)
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    pub fn with_shard_panics(mut self, rate: f64) -> Self {
        self.shard_panic_rate = rate;
        self
    }

    pub fn with_journal_errors(mut self, rate: f64) -> Self {
        self.journal_error_rate = rate;
        self
    }

    pub fn with_conn_drops(mut self, rate: f64) -> Self {
        self.conn_drop_rate = rate;
        self
    }

    pub fn with_conn_stalls(mut self, rate: f64, stall: Duration) -> Self {
        self.conn_stall_rate = rate;
        self.stall = stall;
        self
    }

    /// Parses the CLI syntax used by `--fault-plan`:
    /// `seed=7,shard=0.001,journal=0.01,conn=0.05,stall=0.1,stall-ms=25`.
    /// Keys are optional and order-free; unknown keys are an error.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry '{part}' is not key=value"))?;
            let bad = |e: std::num::ParseFloatError| format!("fault-plan {key}: {e}");
            match key.trim() {
                "seed" => {
                    plan.seed =
                        value.trim().parse().map_err(|e| format!("fault-plan seed: {e}"))?;
                }
                "shard" => plan.shard_panic_rate = value.trim().parse().map_err(bad)?,
                "journal" => plan.journal_error_rate = value.trim().parse().map_err(bad)?,
                "conn" => plan.conn_drop_rate = value.trim().parse().map_err(bad)?,
                "stall" => plan.conn_stall_rate = value.trim().parse().map_err(bad)?,
                "stall-ms" => {
                    let ms: u64 =
                        value.trim().parse().map_err(|e| format!("fault-plan stall-ms: {e}"))?;
                    plan.stall = Duration::from_millis(ms);
                }
                other => return Err(format!("fault-plan key '{other}' is not recognized")),
            }
        }
        for (name, rate) in [
            ("shard", plan.shard_panic_rate),
            ("journal", plan.journal_error_rate),
            ("conn", plan.conn_drop_rate),
            ("stall", plan.conn_stall_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault-plan {name} rate {rate} outside [0, 1]"));
            }
        }
        Ok(plan)
    }

    /// Whether the `index`-th event of `kind` fires at `rate`: a uniform
    /// draw in `[0, 1)` derived purely from `(seed, kind, index)`.
    fn fires(&self, kind: u64, index: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let h =
            splitmix64(self.seed ^ kind.wrapping_mul(0xA24B_AED4_963E_E407) ^ splitmix64(index));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }
}

impl FaultInjector for FaultPlan {
    fn shard_panic(&self, shard: usize, index: u64) -> bool {
        self.fires(KIND_SHARD.wrapping_add(shard as u64), index, self.shard_panic_rate)
    }

    fn journal_write_fails(&self, index: u64) -> bool {
        self.fires(KIND_JOURNAL, index, self.journal_error_rate)
    }

    fn drop_connection(&self, index: u64) -> bool {
        self.fires(KIND_CONN, index, self.conn_drop_rate)
    }

    fn stall_connection(&self, index: u64) -> Option<Duration> {
        self.fires(KIND_STALL, index, self.conn_stall_rate).then_some(self.stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(plan: &FaultPlan, events: u64) -> Vec<(u64, bool, bool, bool, bool)> {
        (0..events)
            .map(|i| {
                (
                    i,
                    plan.shard_panic(1, i),
                    plan.journal_write_fails(i),
                    plan.drop_connection(i),
                    plan.stall_connection(i).is_some(),
                )
            })
            .collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42)
            .with_shard_panics(0.05)
            .with_journal_errors(0.1)
            .with_conn_drops(0.2)
            .with_conn_stalls(0.2, Duration::from_millis(5));
        let b = a;
        assert_eq!(schedule(&a, 512), schedule(&b, 512));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with_conn_drops(0.5);
        let b = FaultPlan::new(2).with_conn_drops(0.5);
        assert_ne!(schedule(&a, 512), schedule(&b, 512), "distinct seeds share a schedule");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(7).with_journal_errors(0.25);
        let fired = (0..10_000).filter(|&i| plan.journal_write_fails(i)).count();
        assert!((2000..3000).contains(&fired), "25% rate fired {fired}/10000 times");
        // Independent streams: the same seed at the same indices makes its
        // own decisions per kind.
        let plan = plan.with_conn_drops(0.25);
        let both =
            (0..10_000).filter(|&i| plan.journal_write_fails(i) && plan.drop_connection(i)).count();
        assert!(both < 1000, "kind streams look correlated: {both} joint firings");
    }

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::new(9);
        assert!(schedule(&plan, 2048).iter().all(|&(_, a, b, c, d)| !(a || b || c || d)));
        let none = NoFaults;
        assert!(!none.shard_panic(0, 0));
        assert!(!none.journal_write_fails(0));
        assert!(!none.drop_connection(0));
        assert!(none.stall_connection(0).is_none());
    }

    #[test]
    fn parse_round_trips_the_cli_syntax() {
        let plan = FaultPlan::parse(
            "seed=11, shard=0.001, journal=0.01, conn=0.05, stall=0.1, stall-ms=25",
        )
        .unwrap();
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.shard_panic_rate, 0.001);
        assert_eq!(plan.journal_error_rate, 0.01);
        assert_eq!(plan.conn_drop_rate, 0.05);
        assert_eq!(plan.conn_stall_rate, 0.1);
        assert_eq!(plan.stall, Duration::from_millis(25));
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(FaultPlan::parse("bogus=1").unwrap_err().contains("not recognized"));
        assert!(FaultPlan::parse("conn").unwrap_err().contains("key=value"));
        assert!(FaultPlan::parse("conn=1.5").unwrap_err().contains("outside"));
    }
}
