//! The binary wire codec: a compact, self-describing encoding of the serde
//! [`Value`] tree over the `bytes` shim.
//!
//! Every wire message already converts through `serde::Value` (the shim's
//! intermediate tree), so one generic `Value ↔ bytes` codec covers every
//! `Request`/`Response` variant — including everything nested inside domain
//! specs and runtime snapshots — and agreement with the JSONL codec holds by
//! construction: both are faithful encodings of the same tree.
//!
//! ## Value encoding
//!
//! One tag byte, then a payload:
//!
//! | tag | value           | payload                                  |
//! |-----|-----------------|------------------------------------------|
//! | 0   | `Null`          | —                                        |
//! | 1   | `Bool(false)`   | —                                        |
//! | 2   | `Bool(true)`    | —                                        |
//! | 3   | `U64`           | LEB128 varint                            |
//! | 4   | `I64`           | zigzag LEB128 varint                     |
//! | 5   | `F64`           | 8 bytes, IEEE-754 bits little-endian     |
//! | 6   | `Str`           | varint byte length ‖ UTF-8 bytes         |
//! | 7   | `Seq`           | varint count ‖ elements                  |
//! | 8   | `Map`           | varint count ‖ (key string ‖ value) pairs|
//!
//! Varints keep the common small integers (domain ids, counts, step numbers)
//! to one byte; floats keep their exact bits, so a binary round trip is
//! identity even where JSON text would have to re-parse a decimal form.
//!
//! ## Framing
//!
//! A connection that opened with the [`BINARY_PREFIX`] negotiation byte
//! carries length-prefixed frames in both directions:
//!
//! ```text
//! u32 LE body length (correlation id + message) ‖ u64 LE correlation id ‖ message
//! ```
//!
//! The correlation id is chosen by the client and echoed verbatim on the
//! response frame, which is what makes out-of-order pipelining possible: the
//! server may complete requests in any order (only per-domain order is
//! preserved) and the client matches completions by id.

use bytes::{Buf, BufMut, BytesMut};
use serde::Value;

/// Negotiation byte opening a binary connection (followed by one version
/// byte).
pub const BINARY_PREFIX: u8 = b'B';
/// Optional negotiation byte explicitly selecting the legacy JSONL codec.
/// Any first byte other than [`BINARY_PREFIX`] or this selects JSONL too —
/// raw `nc` sessions keep working — but the explicit form lets a client be
/// version-proof.
pub const JSONL_PREFIX: u8 = b'J';
/// Binary framing version carried right after [`BINARY_PREFIX`].
pub const BINARY_VERSION: u8 = 1;
/// Upper bound on one frame's body, guarding the length-prefix read against
/// garbage (a snapshot of a large fleet is MBs, not GBs).
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Bytes of framing overhead ahead of each message body.
pub const FRAME_HEADER: usize = 4 + 8;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.remaining() == 0 {
            return Err("truncated varint".into());
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

/// Appends the binary encoding of `value` to `buf`.
pub fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_TRUE),
        Value::U64(n) => {
            buf.put_u8(TAG_U64);
            put_varint(buf, *n);
        }
        Value::I64(n) => {
            buf.put_u8(TAG_I64);
            // Zigzag: small magnitudes of either sign stay short.
            put_varint(buf, ((n << 1) ^ (n >> 63)) as u64);
        }
        Value::F64(x) => {
            buf.put_u8(TAG_F64);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Seq(items) => {
            buf.put_u8(TAG_SEQ);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_value(item, buf);
            }
        }
        Value::Map(entries) => {
            buf.put_u8(TAG_MAP);
            put_varint(buf, entries.len() as u64);
            for (key, item) in entries {
                put_str(buf, key);
                encode_value(item, buf);
            }
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(format!("truncated string: need {len}, have {}", buf.remaining()));
    }
    let s = std::str::from_utf8(&buf.chunk()[..len])
        .map_err(|e| format!("string is not UTF-8: {e}"))?
        .to_owned();
    buf.advance(len);
    Ok(s)
}

/// Decodes one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> Result<Value, String> {
    if buf.remaining() == 0 {
        return Err("empty buffer".into());
    }
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_U64 => Ok(Value::U64(get_varint(buf)?)),
        TAG_I64 => {
            let z = get_varint(buf)?;
            Ok(Value::I64(((z >> 1) as i64) ^ -((z & 1) as i64)))
        }
        TAG_F64 => {
            if buf.remaining() < 8 {
                return Err("truncated f64".into());
            }
            Ok(Value::F64(buf.get_f64_le()))
        }
        TAG_STR => Ok(Value::Str(get_str(buf)?)),
        TAG_SEQ => {
            let count = get_varint(buf)?;
            let n = checked_count(buf, count)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let count = get_varint(buf)?;
            let n = checked_count(buf, count)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let key = get_str(buf)?;
                entries.push((key, decode_value(buf)?));
            }
            Ok(Value::Map(entries))
        }
        tag => Err(format!("unknown value tag {tag}")),
    }
}

/// Caps a decoded element count by the bytes actually present (each element
/// costs ≥ 1 byte), so corrupt counts can't drive huge preallocations.
fn checked_count(buf: &&[u8], n: u64) -> Result<usize, String> {
    if n > buf.remaining() as u64 {
        return Err(format!("container count {n} exceeds {} remaining bytes", buf.remaining()));
    }
    Ok(n as usize)
}

/// Encodes a message as a binary value (no framing).
pub fn encode_binary<T: serde::Serialize>(msg: &T, buf: &mut BytesMut) {
    encode_value(&msg.to_value(), buf);
}

/// Decodes a message from a binary value; the whole buffer must be consumed.
pub fn decode_binary<T: serde::Deserialize>(mut body: &[u8]) -> Result<T, String> {
    let value = decode_value(&mut body)?;
    if !body.is_empty() {
        return Err(format!("{} trailing bytes after message", body.len()));
    }
    T::from_value(&value).map_err(|e| e.to_string())
}

/// Magic byte opening every encoded domain snapshot.
pub const SNAPSHOT_MAGIC: u8 = b'S';
/// Version of the snapshot encoding. Bump on incompatible layout changes;
/// decoders reject other versions rather than feeding the deserializer
/// garbage.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Encodes a domain snapshot to its compact binary form — the encoding the
/// fleet's hibernation store holds cold domains in. Equivalent to the JSONL
/// text form by construction (both encode the same `Value` tree) at a
/// fraction of the size, behind a 2-byte magic + version header.
pub fn encode_snapshot(snapshot: &crate::domain::DomainSnapshot) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(SNAPSHOT_MAGIC);
    buf.put_u8(SNAPSHOT_VERSION);
    encode_binary(snapshot, &mut buf);
    buf.as_slice().to_vec()
}

/// Decodes a domain snapshot from its binary form, validating the header.
pub fn decode_snapshot(bytes: &[u8]) -> Result<crate::domain::DomainSnapshot, String> {
    if bytes.len() < 2 {
        return Err(format!("snapshot header truncated ({} bytes)", bytes.len()));
    }
    if bytes[0] != SNAPSHOT_MAGIC {
        return Err("snapshot magic mismatch (not a binary domain snapshot)".into());
    }
    if bytes[1] != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {} unsupported (this build speaks version {SNAPSHOT_VERSION})",
            bytes[1]
        ));
    }
    decode_binary(&bytes[2..])
}

/// Appends one complete frame (`len ‖ correlation id ‖ message`) to `buf`.
pub fn encode_frame<T: serde::Serialize>(corr: u64, msg: &T, buf: &mut BytesMut) {
    let header_at = buf.len();
    buf.put_u32_le(0); // patched below
    buf.put_u64_le(corr);
    encode_binary(msg, buf);
    let body_len = (buf.len() - header_at - 4) as u32;
    buf[header_at..header_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Attempts to split one frame off the front of `pending`. Returns
/// `Ok(None)` when more bytes are needed, `Ok(Some((corr, body_range)))`
/// with the frame consumed from `pending` otherwise.
pub fn take_frame(pending: &mut Vec<u8>) -> Result<Option<(u64, Vec<u8>)>, String> {
    if pending.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(format!("frame length {body_len} exceeds cap {MAX_FRAME_LEN}"));
    }
    if body_len < 8 {
        return Err(format!("frame length {body_len} too short for a correlation id"));
    }
    if pending.len() < 4 + body_len {
        return Ok(None);
    }
    let corr = u64::from_le_bytes(pending[4..12].try_into().expect("8 bytes"));
    let body = pending[12..4 + body_len].to_vec();
    pending.drain(..4 + body_len);
    Ok(Some((corr, body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(v, &mut buf);
        let mut slice = buf.as_slice();
        let back = decode_value(&mut slice).expect("decode");
        assert!(slice.is_empty(), "whole encoding consumed");
        back
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::U64(0),
            Value::U64(127),
            Value::U64(128),
            Value::U64(u64::MAX),
            Value::I64(0),
            Value::I64(-1),
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::F64(0.0),
            Value::F64(-1.5e-300),
            Value::F64(f64::MAX),
            Value::Str(String::new()),
            Value::Str("héllo \n\"world\"".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn f64_bits_survive_exactly() {
        // Bit patterns JSON text would mangle (NaN payloads, -0.0).
        for bits in [f64::NAN.to_bits() | 0xDEAD, (-0.0f64).to_bits()] {
            let v = Value::F64(f64::from_bits(bits));
            let mut buf = BytesMut::new();
            encode_value(&v, &mut buf);
            let mut s = buf.as_slice();
            match decode_value(&mut s).unwrap() {
                Value::F64(x) => assert_eq!(x.to_bits(), bits),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let v = Value::Map(vec![(
            "Advance".into(),
            Value::Map(vec![
                ("domain".into(), Value::U64(3)),
                ("steps".into(), Value::U64(300)),
                ("qs".into(), Value::Seq(vec![Value::F64(0.25), Value::Null, Value::Bool(true)])),
            ]),
        )]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn varints_are_compact() {
        let mut buf = BytesMut::new();
        encode_value(&Value::U64(5), &mut buf);
        assert_eq!(buf.len(), 2, "tag + one varint byte");
    }

    #[test]
    fn truncated_and_corrupt_input_errors_cleanly() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Str("hello".into()), &mut buf);
        let whole = buf.as_slice();
        for cut in 0..whole.len() {
            let mut s = &whole[..cut];
            assert!(cut == 0 || decode_value(&mut s).is_err(), "prefix of {cut} bytes");
        }
        let mut bogus: &[u8] = &[99, 1, 2];
        assert!(decode_value(&mut bogus).is_err());
        // A corrupt count can't drive a huge preallocation.
        let mut seq: &[u8] = &[TAG_SEQ, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F];
        assert!(decode_value(&mut seq).is_err());
    }

    #[test]
    fn frames_split_and_reassemble() {
        let mut wire = BytesMut::new();
        encode_frame(7, &Value::U64(42), &mut wire);
        encode_frame(9, &Value::Str("next".into()), &mut wire);
        let mut pending = Vec::new();
        let bytes = wire.as_slice();
        // Feed the stream one byte at a time: frames pop exactly when whole.
        let mut seen = Vec::new();
        for &b in bytes {
            pending.push(b);
            while let Some((corr, body)) = take_frame(&mut pending).unwrap() {
                seen.push((corr, decode_binary::<Value>(&body).unwrap()));
            }
        }
        assert_eq!(seen, vec![(7, Value::U64(42)), (9, Value::Str("next".into()))]);
        assert!(pending.is_empty());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected() {
        let mut pending = (u32::MAX).to_le_bytes().to_vec();
        pending.extend_from_slice(&[0; 16]);
        assert!(take_frame(&mut pending).is_err());
    }
}
