//! The sharded controller runtime.
//!
//! [`ControllerRuntime`] hosts N independent tenancy domains across a pool
//! of shard worker threads. Each domain lives on exactly one shard and every
//! operation on it runs on that shard's worker — an actor discipline that
//! makes per-domain execution strictly serial (so trajectories are
//! deterministic) while different domains run fully in parallel.
//!
//! Callers talk to shards over crossbeam channels: an operation is a boxed
//! closure sent to the owning shard, and the result comes back on a
//! one-shot reply channel. The embeddable API ([`ControllerRuntime::ingest`],
//! [`ControllerRuntime::advance`], ...) and the TCP wire protocol are both
//! thin clients of this dispatch.

use crate::clock::Clock;
use crate::domain::{DecisionRecord, Domain, DomainSnapshot, DomainSpec, IngestOutcome};
use crossbeam::channel::{self, Sender};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use tempo_sim::RmConfig;
use tempo_workload::time::Time;
use tempo_workload::JobSpec;

/// Identifies a domain within a runtime. Dense, assigned at creation.
pub type DomainId = u64;

/// Why a runtime operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    UnknownDomain(DomainId),
    InvalidSpec(String),
    /// The owning shard worker is gone (it panicked or the runtime shut
    /// down mid-call).
    ShardDown,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownDomain(id) => write!(f, "unknown domain {id}"),
            RuntimeError::InvalidSpec(msg) => write!(f, "invalid domain spec: {msg}"),
            RuntimeError::ShardDown => write!(f, "shard worker unavailable"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Point-in-time health/occupancy counters for one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainMetrics {
    pub id: DomainId,
    pub name: String,
    /// Advance calls (decisions + skipped).
    pub steps: u64,
    /// Control-loop iterations actually run.
    pub decisions: u64,
    pub skipped: u64,
    /// Jobs ingested over the domain's lifetime.
    pub ingested: u64,
    /// What-if memo-cache occupancy (computed entries).
    pub cache_entries: u64,
    /// Simulations the domain's What-if Model has run.
    pub sims: u64,
    /// Jobs dropped by a `Shed` ingest budget.
    pub shed_count: u64,
    /// Jobs turned away (whole bursts) by a `Delay` ingest budget.
    pub delayed_count: u64,
    /// Fraction of the ingest budget currently spent: 0.0 = idle bucket,
    /// 1.0 = saturated. Always 0.0 for unbudgeted domains.
    pub ingest_budget_occupancy: f64,
}

/// Aggregated runtime metrics (the wire protocol's `Metrics` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeMetrics {
    pub domains: u64,
    pub shards: u64,
    pub clock_now: Time,
    pub total_decisions: u64,
    pub total_ingested: u64,
    pub total_cache_entries: u64,
    pub total_sims: u64,
    pub total_shed: u64,
    pub total_delayed: u64,
    pub per_domain: Vec<DomainMetrics>,
}

/// Serializable state of a whole runtime: every domain, warm caches
/// included. Restore with [`ControllerRuntime::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Clock reading at snapshot time (restored into a [`crate::SimClock`]
    /// by deterministic-replay setups; informational under wall clocks).
    pub clock_now: Time,
    /// Domain states, id-sorted.
    pub domains: Vec<DomainSnapshot>,
}

/// A unit of work executed on a shard worker thread.
type ShardJob = Box<dyn FnOnce(&mut ShardState) + Send>;

/// What one shard worker owns: its slice of the domain map.
struct ShardState {
    domains: BTreeMap<DomainId, Domain>,
}

struct ShardHandle {
    tx: Sender<ShardJob>,
    worker: Option<JoinHandle<()>>,
}

/// The sharded multi-domain serving runtime. Cheap to share: all methods
/// take `&self` and may be called concurrently from any number of threads.
pub struct ControllerRuntime {
    shards: Vec<ShardHandle>,
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    /// Guards restore (which rewrites `next_id` and domain placement)
    /// against concurrent creates.
    create_lock: Mutex<()>,
}

impl ControllerRuntime {
    /// Spawns `shards` worker threads sharing `clock`.
    pub fn new(shards: usize, clock: Arc<dyn Clock>) -> Self {
        let shards = shards.max(1);
        let handles = (0..shards)
            .map(|i| {
                let (tx, rx) = channel::unbounded::<ShardJob>();
                let worker = std::thread::Builder::new()
                    .name(format!("tempo-serve-shard-{i}"))
                    .spawn(move || {
                        let mut state = ShardState { domains: BTreeMap::new() };
                        while let Ok(job) = rx.recv() {
                            job(&mut state);
                        }
                    })
                    .expect("spawn shard worker");
                ShardHandle { tx, worker: Some(worker) }
            })
            .collect();
        Self { shards: handles, clock, next_id: AtomicU64::new(0), create_lock: Mutex::new(()) }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Domain → shard placement: fixed by id, so snapshots restore onto the
    /// same shard layout they were taken from (given the same shard count).
    fn shard_of(&self, id: DomainId) -> &ShardHandle {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Runs `f` on the shard owning `id` and waits for the result.
    fn on_shard<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut ShardState) -> R + Send + 'static,
    {
        let (reply_tx, reply_rx) = channel::bounded::<R>(1);
        let job: ShardJob = Box::new(move |state| {
            let _ = reply_tx.send(f(state));
        });
        self.shard_of(id).tx.send(job).map_err(|_| RuntimeError::ShardDown)?;
        reply_rx.recv().map_err(|_| RuntimeError::ShardDown)
    }

    /// Runs `f` on every shard concurrently and returns the results in
    /// shard order.
    fn on_all_shards<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut ShardState) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let replies: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (reply_tx, reply_rx) = channel::bounded::<R>(1);
                let f = Arc::clone(&f);
                let job: ShardJob = Box::new(move |state| {
                    let _ = reply_tx.send(f(state));
                });
                let sent = shard.tx.send(job).is_ok();
                (sent, reply_rx)
            })
            .collect();
        replies.into_iter().filter(|(sent, _)| *sent).filter_map(|(_, rx)| rx.recv().ok()).collect()
    }

    /// Creates a domain from `spec`; returns its id. The spec is validated
    /// (inside [`Domain::new`]) before any state is committed, and the
    /// heavyweight controller construction happens outside `create_lock` so
    /// concurrent creates don't serialize on it.
    pub fn create_domain(&self, spec: DomainSpec) -> Result<DomainId, RuntimeError> {
        let domain = Domain::new(spec).map_err(RuntimeError::InvalidSpec)?;
        let _guard = self.create_lock.lock().expect("create lock");
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.on_shard(id, move |state| {
            state.domains.insert(id, domain);
        })?;
        Ok(id)
    }

    /// Ingests job submissions into a domain's workload window. The domain's
    /// ingest budget (if any) is refilled from the runtime clock, so the
    /// outcome may be `Busy` or a shed-trimmed `Accepted`.
    pub fn ingest(&self, id: DomainId, jobs: Vec<JobSpec>) -> Result<IngestOutcome, RuntimeError> {
        let now = self.clock.now();
        self.on_shard(id, move |state| {
            state
                .domains
                .get_mut(&id)
                .map(|d| d.ingest(now, jobs))
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Runs `f` against the domain on its owning shard and waits for the
    /// result — the blocking counterpart of
    /// [`ControllerRuntime::on_domain_async`], used where one clock reading
    /// must cover a compound operation (`IngestAdvance`).
    pub fn on_domain<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut Domain) -> R + Send + 'static,
    {
        self.on_shard(id, move |state| {
            state.domains.get_mut(&id).map(f).ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Fire-and-forget dispatch: runs `f` against the domain on its owning
    /// shard without blocking for a reply. The pipelined wire server is
    /// built on this — a connection's reader thread dispatches frames as
    /// fast as they arrive and `f` hands each result to the writer side.
    ///
    /// Same-domain operations dispatched in order execute in order (each
    /// shard is a FIFO actor); `f` gets `Err(UnknownDomain)` if the id is
    /// unplaced when the job runs.
    pub fn on_domain_async<F>(&self, id: DomainId, f: F) -> Result<(), RuntimeError>
    where
        F: FnOnce(Result<&mut Domain, RuntimeError>) + Send + 'static,
    {
        let job: ShardJob = Box::new(move |state| match state.domains.get_mut(&id) {
            Some(d) => f(Ok(d)),
            None => f(Err(RuntimeError::UnknownDomain(id))),
        });
        self.shard_of(id).tx.send(job).map_err(|_| RuntimeError::ShardDown)
    }

    /// Runs one control-loop iteration on a domain against the window
    /// ending at the runtime clock's current reading.
    pub fn advance(&self, id: DomainId) -> Result<DecisionRecord, RuntimeError> {
        let now = self.clock.now();
        self.on_shard(id, move |state| {
            state
                .domains
                .get_mut(&id)
                .map(|d| d.advance(now))
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Advances every domain once, all shards in parallel, using a single
    /// consistent clock reading. Records come back id-sorted.
    pub fn advance_all(&self) -> Vec<(DomainId, DecisionRecord)> {
        let now = self.clock.now();
        let mut out: Vec<(DomainId, DecisionRecord)> = self
            .on_all_shards(move |state| {
                state.domains.iter_mut().map(|(id, d)| (*id, d.advance(now))).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The configuration a domain's cluster should currently run.
    pub fn current_config(&self, id: DomainId) -> Result<RmConfig, RuntimeError> {
        self.on_shard(id, move |state| {
            state
                .domains
                .get(&id)
                .map(|d| d.current_config())
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Runs a read-only closure against a domain on its owning shard —
    /// the embeddable escape hatch for diagnostics (parity suites compare
    /// optimizer histories through this).
    pub fn inspect<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&Domain) -> R + Send + 'static,
    {
        self.on_shard(id, move |state| {
            state.domains.get(&id).map(f).ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Occupancy and throughput counters across every domain, id-sorted.
    pub fn metrics(&self) -> RuntimeMetrics {
        let mut per_domain: Vec<DomainMetrics> = self
            .on_all_shards(|state| {
                state
                    .domains
                    .iter()
                    .map(|(id, d)| DomainMetrics {
                        id: *id,
                        name: d.spec().name.clone(),
                        steps: d.steps(),
                        decisions: d.decisions(),
                        skipped: d.skipped(),
                        ingested: d.ingested(),
                        cache_entries: d.cache_len() as u64,
                        sims: d.sim_count(),
                        shed_count: d.shed_count(),
                        delayed_count: d.delayed_count(),
                        ingest_budget_occupancy: d.ingest_budget_occupancy(),
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        per_domain.sort_by_key(|m| m.id);
        RuntimeMetrics {
            domains: per_domain.len() as u64,
            shards: self.shards.len() as u64,
            clock_now: self.clock.now(),
            total_decisions: per_domain.iter().map(|m| m.decisions).sum(),
            total_ingested: per_domain.iter().map(|m| m.ingested).sum(),
            total_cache_entries: per_domain.iter().map(|m| m.cache_entries).sum(),
            total_sims: per_domain.iter().map(|m| m.sims).sum(),
            total_shed: per_domain.iter().map(|m| m.shed_count).sum(),
            total_delayed: per_domain.iter().map(|m| m.delayed_count).sum(),
            per_domain,
        }
    }

    /// Captures every domain's resumable state, id-sorted.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let mut domains: Vec<DomainSnapshot> = self
            .on_all_shards(|state| {
                state.domains.iter().map(|(id, d)| d.snapshot(*id)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        domains.sort_by_key(|d| d.id);
        RuntimeSnapshot { clock_now: self.clock.now(), domains }
    }

    /// Restores domains from a snapshot (ids preserved), replacing any
    /// same-id domains already hosted. Returns the restored ids.
    pub fn restore(&self, snapshot: RuntimeSnapshot) -> Result<Vec<DomainId>, RuntimeError> {
        let _guard = self.create_lock.lock().expect("create lock");
        let mut ids = Vec::with_capacity(snapshot.domains.len());
        let mut max_id = self.next_id.load(Ordering::SeqCst);
        for ds in snapshot.domains {
            let id = ds.id;
            let domain = Domain::restore(ds).map_err(RuntimeError::InvalidSpec)?;
            self.on_shard(id, move |state| {
                state.domains.insert(id, domain);
            })?;
            ids.push(id);
            max_id = max_id.max(id + 1);
        }
        self.next_id.store(max_id, Ordering::SeqCst);
        Ok(ids)
    }

    /// Stops accepting work and joins every shard worker. Queued operations
    /// submitted before the call complete first (channels drain in order).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for shard in &mut self.shards {
            // Dropping the sender closes the queue; the worker drains what
            // is left and exits its recv loop.
            let (closed_tx, _closed_rx) = channel::bounded::<ShardJob>(1);
            let tx = std::mem::replace(&mut shard.tx, closed_tx);
            drop(tx);
            drop(_closed_rx);
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ControllerRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::domain::DomainSpec;
    use tempo_qs::{QsKind, SloSet, SloSpec};
    use tempo_sim::{ClusterSpec, TenantConfig};
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::TaskSpec;

    fn spec(name: &str, seed: u64) -> DomainSpec {
        let slos = SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ]);
        let initial = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(2.0),
            TenantConfig::fair_default(),
        ]);
        DomainSpec::new(name, ClusterSpec::new(8, 4), slos, initial, 4 * MIN)
            .with_seed(seed)
            .with_probes(3)
    }

    fn jobs(base: u64) -> Vec<JobSpec> {
        (0..4u64)
            .map(|i| {
                JobSpec::new(
                    0,
                    (i % 2) as u16,
                    base + i * 30 * SEC,
                    vec![TaskSpec::map(20 * SEC), TaskSpec::reduce(30 * SEC)],
                )
            })
            .collect()
    }

    #[test]
    fn domains_are_isolated_across_shards() {
        let rt = ControllerRuntime::new(3, Arc::new(SimClock::new()));
        let a = rt.create_domain(spec("a", 1)).unwrap();
        let b = rt.create_domain(spec("b", 2)).unwrap();
        assert_ne!(a, b);
        rt.ingest(a, jobs(0)).unwrap();
        let rec = rt.advance(a).unwrap();
        assert!(!rec.skipped);
        // Domain b saw nothing.
        let rec_b = rt.advance(b).unwrap();
        assert!(rec_b.skipped);
        let m = rt.metrics();
        assert_eq!(m.domains, 2);
        assert_eq!(m.total_decisions, 1);
        assert_eq!(m.per_domain[0].ingested, 4);
        assert_eq!(m.per_domain[1].ingested, 0);
        rt.shutdown();
    }

    #[test]
    fn unknown_domains_and_bad_specs_error() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        assert_eq!(rt.advance(99), Err(RuntimeError::UnknownDomain(99)));
        assert_eq!(rt.ingest(99, vec![]), Err(RuntimeError::UnknownDomain(99)));
        let mut bad = spec("bad", 1);
        bad.window_len = 0;
        assert!(matches!(rt.create_domain(bad), Err(RuntimeError::InvalidSpec(_))));
        rt.shutdown();
    }

    #[test]
    fn advance_all_uses_one_clock_reading() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(4, Arc::<SimClock>::clone(&clock));
        let ids: Vec<_> =
            (0..6).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        for &id in &ids {
            rt.ingest(id, jobs(0)).unwrap();
        }
        clock.advance(2 * MIN);
        let records = rt.advance_all();
        assert_eq!(records.len(), 6);
        assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "id-sorted");
        let windows: Vec<_> = records.iter().map(|(_, r)| r.window).collect();
        assert!(windows.iter().all(|w| *w == windows[0]), "single consistent now");
        rt.shutdown();
    }

    #[test]
    fn concurrent_clients_make_progress() {
        let rt = Arc::new(ControllerRuntime::new(4, Arc::new(SimClock::new())));
        let ids: Vec<_> =
            (0..8).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    rt.ingest(id, jobs(0)).unwrap();
                    for _ in 0..2 {
                        rt.advance(id).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let m = rt.metrics();
        assert_eq!(m.total_decisions, 16);
        Arc::try_unwrap(rt).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn over_budget_tenant_backpressures_without_slowing_siblings() {
        use crate::domain::IngestBudget;
        let clock = Arc::new(SimClock::new());
        // One shard on purpose: the greedy tenant and its siblings share a
        // worker thread, so isolation must come from the budget, not luck.
        let rt = ControllerRuntime::new(1, Arc::<SimClock>::clone(&clock));
        let greedy =
            rt.create_domain(spec("greedy", 1).with_ingest_budget(IngestBudget::delay(4))).unwrap();
        let calm_a = rt.create_domain(spec("calm-a", 2)).unwrap();
        let calm_b = rt.create_domain(spec("calm-b", 3)).unwrap();

        // The greedy tenant drains its bucket, then gets turned away.
        assert_eq!(rt.ingest(greedy, jobs(0)).unwrap(), IngestOutcome::Accepted { accepted: 4 });
        let busy = rt.ingest(greedy, jobs(0)).unwrap();
        assert!(
            matches!(busy, IngestOutcome::Busy { retry_after_micros } if retry_after_micros > 0)
        );

        // Siblings on the same shard keep ingesting and deciding at full
        // rate while the greedy tenant is backpressured.
        for _ in 0..3 {
            assert_eq!(rt.ingest(calm_a, jobs(0)).unwrap().accepted(), 4);
            assert_eq!(rt.ingest(calm_b, jobs(0)).unwrap().accepted(), 4);
            clock.advance(30 * SEC);
            assert!(!rt.advance(calm_a).unwrap().skipped);
            assert!(!rt.advance(calm_b).unwrap().skipped);
        }

        let m = rt.metrics();
        assert_eq!(m.total_delayed, 4);
        assert_eq!(m.total_shed, 0);
        let gm = m.per_domain.iter().find(|d| d.id == greedy).unwrap();
        assert_eq!(gm.delayed_count, 4);
        assert!(gm.ingest_budget_occupancy > 0.0);
        let am = m.per_domain.iter().find(|d| d.id == calm_a).unwrap();
        assert_eq!(am.ingested, 12, "sibling saw every job");
        assert_eq!(am.decisions, 3, "sibling never skipped");

        // Once the retry hint elapses the greedy tenant is admitted again.
        clock.advance(4 * MIN);
        assert_eq!(rt.ingest(greedy, jobs(0)).unwrap().accepted(), 4);
        rt.shutdown();
    }

    #[test]
    fn async_dispatch_preserves_same_domain_order() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        let id = rt.create_domain(spec("a", 1)).unwrap();
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..16u64 {
            let tx = tx.clone();
            rt.on_domain_async(id, move |d| {
                let _ = tx.send(d.map(|d| d.ingested()).unwrap_or(u64::MAX) + i);
            })
            .unwrap();
        }
        let seen: Vec<u64> = (0..16).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(seen, (0..16).collect::<Vec<_>>(), "FIFO per shard");
        // Unknown domains surface through the callback, not a panic.
        let (tx2, rx2) = channel::bounded::<Result<(), RuntimeError>>(1);
        rt.on_domain_async(999, move |d| {
            let _ = tx2.send(d.map(|_| ()));
        })
        .unwrap();
        assert_eq!(rx2.recv().unwrap(), Err(RuntimeError::UnknownDomain(999)));
        rt.shutdown();
    }

    #[test]
    fn snapshot_restore_round_trips_through_a_fresh_runtime() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock));
        let a = rt.create_domain(spec("a", 7)).unwrap();
        let b = rt.create_domain(spec("b", 8)).unwrap();
        rt.ingest(a, jobs(0)).unwrap();
        rt.ingest(b, jobs(MIN)).unwrap();
        rt.advance_all();
        let snap = rt.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        rt.shutdown();

        let clock2 = Arc::new(SimClock::at(snap.clock_now));
        let rt2 = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock2));
        let parsed: RuntimeSnapshot = serde_json::from_str(&json).unwrap();
        let ids = rt2.restore(parsed).unwrap();
        assert_eq!(ids, vec![a, b]);
        // New domains never collide with restored ids.
        let c = rt2.create_domain(spec("c", 9)).unwrap();
        assert!(c > b);
        let m = rt2.metrics();
        assert_eq!(m.domains, 3);
        assert_eq!(m.total_decisions, 2);
        rt2.shutdown();
    }
}
