//! The sharded controller runtime.
//!
//! [`ControllerRuntime`] hosts N independent tenancy domains across a pool
//! of shard worker threads. Each domain lives on exactly one shard and every
//! operation on it runs on that shard's worker — an actor discipline that
//! makes per-domain execution strictly serial (so trajectories are
//! deterministic) while different domains run fully in parallel.
//!
//! Callers talk to shards over crossbeam channels: an operation is a boxed
//! closure sent to the owning shard, and the result comes back on a
//! one-shot reply channel. The embeddable API ([`ControllerRuntime::ingest`],
//! [`ControllerRuntime::advance`], ...) and the TCP wire protocol are both
//! thin clients of this dispatch.
//!
//! Placement is a fleet-managed table, not a hash of the id: domains are
//! created on the least-populated shard, can be migrated between shards
//! ([`ControllerRuntime::migrate`], [`ControllerRuntime::rebalance`]), and
//! can leave memory entirely ([`ControllerRuntime::hibernate`] or the
//! [`crate::FleetConfig::resident_bytes_watermark`] LRU policy), coming
//! back bit-identically on their next operation. See [`crate::fleet`] for
//! the policy layer.

use crate::clock::Clock;
use crate::codec;
use crate::domain::{
    AdvanceProvenance, DecisionRecord, Domain, DomainSnapshot, DomainSpec, IngestOutcome,
};
use crate::fault::{FaultInjector, NoFaults};
use crate::fleet::{DomainState, FleetConfig, FleetState, Routing};
use crossbeam::channel::{self, Sender};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tempo_core::WorkerPool;
use tempo_obs::TraceRing;
use tempo_sim::RmConfig;
use tempo_workload::time::Time;
use tempo_workload::JobSpec;

/// Identifies a domain within a runtime. Dense, assigned at creation.
pub type DomainId = u64;

/// Why a runtime operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    UnknownDomain(DomainId),
    InvalidSpec(String),
    /// A fleet-management request was malformed (e.g. a migration target
    /// shard that does not exist).
    Fleet(String),
    /// The owning shard worker is gone (it panicked or the runtime shut
    /// down mid-call).
    ShardDown,
    /// The domain's in-memory state was lost to a shard-worker panic and
    /// has not been repaired (from the journal) yet.
    DomainDegraded(DomainId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownDomain(id) => write!(f, "unknown domain {id}"),
            RuntimeError::InvalidSpec(msg) => write!(f, "invalid domain spec: {msg}"),
            RuntimeError::Fleet(msg) => write!(f, "fleet request invalid: {msg}"),
            RuntimeError::ShardDown => write!(f, "shard worker unavailable"),
            RuntimeError::DomainDegraded(id) => {
                write!(f, "domain {id} degraded by a shard fault (awaiting journal repair)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Retained decision-trail length. Older entries fall off the ring;
/// [`TraceRing::pushed`] still counts them.
const TRACE_CAPACITY: usize = 1024;

/// One control-loop decision as retained by the runtime's bounded trace
/// ring — the `TraceQuery` wire payload. Captures what the controller chose
/// and where the evidence came from (What-if cache hits vs fresh
/// simulations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    pub domain: DomainId,
    /// Advance step on the domain (matches [`DecisionRecord::step`]).
    pub step: u64,
    /// Absolute workload window `[start, end)` the decision tuned on.
    pub window: (Time, Time),
    /// Controller iteration index.
    pub iteration: u64,
    /// Whether the revert guard rolled back the previous change.
    pub reverted: bool,
    /// Observed (priority-weighted) QS vector.
    pub observed_qs: Vec<f64>,
    /// The maximin objective over the observation: the worst per-SLO
    /// quality score.
    pub objective: f64,
    /// The configuration the decision chose.
    pub config: RmConfig,
    /// What-if memo-cache hits during the iteration (cache provenance).
    pub cache_hits: u64,
    /// Memo-cache misses (fresh What-if evaluations) during the iteration.
    pub cache_misses: u64,
    /// Simulations the iteration ran.
    pub sims: u64,
}

/// Records one non-skipped decision in the trace ring (skipped advances ran
/// no iteration, so there is no decision to trace). Unconditional — not
/// gated on the telemetry flag — so `TraceQuery` works without a scraper.
pub(crate) fn push_trace(
    traces: &TraceRing<DecisionTrace>,
    id: DomainId,
    rec: &DecisionRecord,
    prov: AdvanceProvenance,
) {
    if rec.skipped {
        return;
    }
    tempo_obs::counter!(
        "tempo_domain_decisions_total",
        "Control-loop decisions recorded in the trace ring"
    )
    .inc();
    let objective = rec.observed_qs.iter().copied().fold(f64::INFINITY, f64::min);
    traces.push(DecisionTrace {
        domain: id,
        step: rec.step,
        window: rec.window,
        iteration: rec.iteration,
        reverted: rec.reverted,
        observed_qs: rec.observed_qs.clone(),
        objective: if objective.is_finite() { objective } else { 0.0 },
        config: rec.config.clone(),
        cache_hits: prov.cache_hits,
        cache_misses: prov.cache_misses,
        sims: prov.sims,
    });
}

/// Point-in-time health/occupancy counters for one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainMetrics {
    pub id: DomainId,
    pub name: String,
    /// Advance calls (decisions + skipped).
    pub steps: u64,
    /// Control-loop iterations actually run.
    pub decisions: u64,
    pub skipped: u64,
    /// Jobs ingested over the domain's lifetime.
    pub ingested: u64,
    /// What-if memo-cache occupancy (computed entries).
    pub cache_entries: u64,
    /// Simulations the domain's What-if Model has run.
    pub sims: u64,
    /// What-if memo-cache hits / misses / LRU evictions. Like `sims` these
    /// are process-lifetime diagnostics: they reset when a domain is
    /// restored (never serialized into snapshots).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// Jobs dropped by a `Shed` ingest budget.
    pub shed_count: u64,
    /// Jobs turned away (whole bursts) by a `Delay` ingest budget.
    pub delayed_count: u64,
    /// Fraction of the ingest budget currently spent: 0.0 = idle bucket,
    /// 1.0 = saturated. Always 0.0 for unbudgeted domains.
    pub ingest_budget_occupancy: f64,
    /// Whether the domain is materialized in memory (`false` = hibernated
    /// to snapshot bytes; counters above are from its last resident
    /// moment).
    pub resident: bool,
    /// The shard currently hosting (or assigned to) the domain.
    pub shard: u64,
    /// Fleet dispatch tick of the last operation targeting this domain.
    pub last_touch_tick: u64,
    /// Count-based estimate of the domain's resident footprint.
    pub estimated_bytes: u64,
    /// EWMA of CPU micros per advance step.
    pub advance_ewma_micros: f64,
    /// Times this domain has been hibernated / rehydrated.
    pub hibernations: u64,
    pub rehydrations: u64,
    /// Whether the domain's state was lost to a shard-worker panic and is
    /// awaiting journal repair (counters shown are its last good capture).
    pub degraded: bool,
}

/// Aggregated runtime metrics (the wire protocol's `Metrics` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeMetrics {
    pub domains: u64,
    pub shards: u64,
    pub clock_now: Time,
    pub total_decisions: u64,
    pub total_ingested: u64,
    pub total_cache_entries: u64,
    pub total_sims: u64,
    /// What-if memo-cache hit/miss/eviction totals across live domains.
    pub total_cache_hits: u64,
    pub total_cache_misses: u64,
    pub total_cache_evictions: u64,
    pub total_shed: u64,
    pub total_delayed: u64,
    /// Domains currently materialized in memory.
    pub resident_domains: u64,
    /// Domains lost to shard-worker panics and awaiting journal repair.
    pub degraded_domains: u64,
    /// Estimated bytes held by resident domains right now, and the high
    /// watermark of that estimate over the runtime's lifetime.
    pub resident_bytes: u64,
    pub peak_resident_bytes: u64,
    pub total_hibernations: u64,
    pub total_rehydrations: u64,
    pub total_migrations: u64,
    /// Advance steps each shard has run since the last rebalance.
    pub shard_loads: Vec<u64>,
    pub per_domain: Vec<DomainMetrics>,
}

/// Serializable state of a whole runtime: every domain, warm caches
/// included. Restore with [`ControllerRuntime::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Clock reading at snapshot time (restored into a [`crate::SimClock`]
    /// by deterministic-replay setups; informational under wall clocks).
    pub clock_now: Time,
    /// Domain states, id-sorted.
    pub domains: Vec<DomainSnapshot>,
}

/// A unit of work executed on a shard worker thread.
type ShardJob = Box<dyn FnOnce(&mut ShardState) + Send>;

/// What one shard worker owns: its slice of the domain map, plus a handle
/// to the fleet table for publishing snapshot bytes and cost samples.
struct ShardState {
    domains: BTreeMap<DomainId, Domain>,
    fleet: Arc<FleetState>,
    /// Clone of the runtime-wide What-if worker pool, attached to every
    /// domain that becomes resident on this shard.
    whatif_pool: WorkerPool,
    /// This worker's shard index (for fault-schedule lookups and logs).
    shard: usize,
    faults: Arc<dyn FaultInjector>,
    /// Instrumented operations this worker has run (the fault-schedule
    /// event index).
    ops: u64,
    /// The domain the currently-executing instrumented job targets; the
    /// supervisor reads it after a panic to know what was lost.
    active: Option<DomainId>,
}

impl ShardState {
    /// Makes `domain` resident: attaches the shared What-if worker pool
    /// (so N domains x M cores collapses onto one pool's threads instead of
    /// multiplying) and inserts it into the map.
    fn install(&mut self, id: DomainId, mut domain: Domain) {
        domain.install_pool(self.whatif_pool.clone());
        self.domains.insert(id, domain);
    }

    /// Serializes a domain out of memory: removes it from the map, encodes
    /// its snapshot through the binary codec, and publishes the bytes to
    /// the fleet store. No-op if the domain is not hosted here (e.g. it was
    /// already moved).
    fn hibernate(&mut self, id: DomainId) {
        let Some(domain) = self.domains.remove(&id) else { return };
        let cached = base_metrics(id, &domain);
        let bytes = codec::encode_snapshot(&domain.snapshot(id));
        self.fleet.store_bytes(id, bytes, cached);
        tempo_obs::counter!(
            "tempo_domain_hibernations_total",
            "Domains serialized out of memory to snapshot bytes"
        )
        .inc();
    }

    /// Materializes a hibernated domain from its stored snapshot bytes.
    /// When the bytes are still in flight — the publishing hibernate job is
    /// queued on another shard (a migration) — this spins until they land;
    /// the wait always terminates because transition enqueues are totally
    /// ordered by the fleet lock (see [`ControllerRuntime::migrate`]).
    fn rehydrate(&mut self, id: DomainId) {
        if self.domains.contains_key(&id) {
            return;
        }
        let mut spins = 0u32;
        let bytes = loop {
            if let Some(bytes) = self.fleet.take_bytes(id) {
                break bytes;
            }
            spins += 1;
            if spins < 1_000 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        };
        let restored = codec::decode_snapshot(&bytes).and_then(Domain::restore);
        match restored {
            Ok(domain) => {
                self.install(id, domain);
                tempo_obs::counter!(
                    "tempo_domain_rehydrations_total",
                    "Domains rematerialized from stored snapshot bytes"
                )
                .inc();
            }
            // Unreachable in practice (we encoded the bytes ourselves); a
            // failure leaves the domain unplaced, surfacing as
            // `UnknownDomain` rather than poisoning the worker.
            Err(e) => eprintln!("tempo-serve: failed to rehydrate domain {id}: {e}"),
        }
    }
}

/// Counter snapshot of a live domain. Fleet-level fields (placement,
/// residency, cost accounting) are placeholders here; `metrics()` overlays
/// them from the fleet table.
fn base_metrics(id: DomainId, d: &Domain) -> DomainMetrics {
    let (cache_hits, cache_misses, cache_evictions) = d.cache_stats();
    DomainMetrics {
        id,
        name: d.spec().name.clone(),
        steps: d.steps(),
        decisions: d.decisions(),
        skipped: d.skipped(),
        ingested: d.ingested(),
        cache_entries: d.cache_len() as u64,
        sims: d.sim_count(),
        cache_hits,
        cache_misses,
        cache_evictions,
        shed_count: d.shed_count(),
        delayed_count: d.delayed_count(),
        ingest_budget_occupancy: d.ingest_budget_occupancy(),
        resident: true,
        shard: 0,
        last_touch_tick: 0,
        estimated_bytes: 0,
        advance_ewma_micros: 0.0,
        hibernations: 0,
        rehydrations: 0,
        degraded: false,
    }
}

/// Wraps a shard job with cost/size instrumentation: advance micros feed
/// the domain's EWMA and per-shard load, the refreshed size estimate feeds
/// the resident-bytes accounting.
fn instrumented<F>(id: DomainId, f: F) -> ShardJob
where
    F: FnOnce(&mut ShardState) + Send + 'static,
{
    Box::new(move |state| {
        state.ops += 1;
        state.active = Some(id);
        if state.faults.shard_panic(state.shard, state.ops) {
            tempo_obs::counter!(
                "tempo_fault_injections_total",
                "Deterministic fault-injector firings by kind",
                "kind" => "shard_panic"
            )
            .inc();
            panic!("injected shard fault (shard {}, op {})", state.shard, state.ops);
        }
        let steps_before = state.domains.get(&id).map(|d| d.steps()).unwrap_or(0);
        let start = Instant::now();
        f(state);
        let micros = start.elapsed().as_secs_f64() * 1e6;
        if let Some(d) = state.domains.get(&id) {
            let steps = d.steps().saturating_sub(steps_before);
            state.fleet.note_op(id, micros, steps, d.estimated_bytes());
        }
        state.active = None;
    })
}

struct ShardHandle {
    tx: Sender<ShardJob>,
    worker: Option<JoinHandle<()>>,
}

/// The sharded multi-domain serving runtime. Cheap to share: all methods
/// take `&self` and may be called concurrently from any number of threads.
pub struct ControllerRuntime {
    shards: Vec<ShardHandle>,
    clock: Arc<dyn Clock>,
    fleet: Arc<FleetState>,
    next_id: AtomicU64,
    /// Guards restore (which rewrites `next_id` and domain placement)
    /// against concurrent creates.
    create_lock: Mutex<()>,
    /// Bounded ring of recent control-loop decisions (`TraceQuery`).
    traces: Arc<TraceRing<DecisionTrace>>,
    /// Every known domain's spec, retained so maintenance can respawn a
    /// degraded domain even without a journal (the domain object itself is
    /// lost with the panicking worker).
    specs: Mutex<HashMap<DomainId, DomainSpec>>,
}

impl ControllerRuntime {
    /// Spawns `shards` worker threads sharing `clock`, with fleet
    /// management at its defaults (no watermark: nothing ever hibernates
    /// unless asked to).
    pub fn new(shards: usize, clock: Arc<dyn Clock>) -> Self {
        Self::with_fleet(shards, clock, FleetConfig::default())
    }

    /// Spawns `shards` worker threads sharing `clock` under the given fleet
    /// policy, with no fault injection.
    pub fn with_fleet(shards: usize, clock: Arc<dyn Clock>, config: FleetConfig) -> Self {
        Self::with_fleet_faults(shards, clock, config, Arc::new(NoFaults))
    }

    /// Full-control constructor: fleet policy plus a fault injector
    /// consulted on every instrumented shard operation.
    ///
    /// Each shard worker is supervised: a panic — injected or real — is
    /// caught, the in-flight domain's (now untrustworthy) state is removed
    /// and marked degraded in the fleet table, and the worker keeps
    /// serving its queue. Sibling domains on the same shard are untouched;
    /// the degraded domain refuses operations until the journal repair
    /// path rebuilds and reinstalls it.
    pub fn with_fleet_faults(
        shards: usize,
        clock: Arc<dyn Clock>,
        config: FleetConfig,
        faults: Arc<dyn FaultInjector>,
    ) -> Self {
        let shards = shards.max(1);
        let fleet = Arc::new(FleetState::new(config, shards));
        // One What-if worker pool for the whole runtime: every resident
        // domain's model shares its threads, so evaluation parallelism is
        // bounded by the pool width regardless of domain count.
        let whatif_pool = WorkerPool::with_default_width();
        let handles = (0..shards)
            .map(|i| {
                let (tx, rx) = channel::unbounded::<ShardJob>();
                let fleet = Arc::clone(&fleet);
                let faults = Arc::clone(&faults);
                let whatif_pool = whatif_pool.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("tempo-serve-shard-{i}"))
                    .spawn(move || {
                        let mut state = ShardState {
                            domains: BTreeMap::new(),
                            fleet,
                            shard: i,
                            faults,
                            ops: 0,
                            active: None,
                            whatif_pool,
                        };
                        while let Ok(job) = rx.recv() {
                            if catch_unwind(AssertUnwindSafe(|| job(&mut state))).is_err() {
                                match state.active.take() {
                                    Some(id) => {
                                        state.domains.remove(&id);
                                        state.fleet.mark_degraded(id);
                                        eprintln!(
                                            "tempo-serve: shard {i} worker panicked; \
                                             domain {id} degraded, worker resumed"
                                        );
                                    }
                                    None => eprintln!(
                                        "tempo-serve: shard {i} worker panicked in a \
                                         non-domain job; worker resumed"
                                    ),
                                }
                            }
                        }
                    })
                    .expect("spawn shard worker");
                ShardHandle { tx, worker: Some(worker) }
            })
            .collect();
        Self {
            shards: handles,
            clock,
            fleet,
            next_id: AtomicU64::new(0),
            create_lock: Mutex::new(()),
            traces: Arc::new(TraceRing::new(TRACE_CAPACITY)),
            specs: Mutex::new(HashMap::new()),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The fleet policy this runtime was built with.
    pub fn fleet_config(&self) -> &FleetConfig {
        self.fleet.config()
    }

    fn send_hibernate(&self, shard: usize, id: DomainId) -> Result<(), RuntimeError> {
        let job: ShardJob = Box::new(move |state| state.hibernate(id));
        self.shards[shard].tx.send(job).map_err(|_| RuntimeError::ShardDown)
    }

    fn send_rehydrate(&self, shard: usize, id: DomainId) -> Result<(), RuntimeError> {
        let job: ShardJob = Box::new(move |state| state.rehydrate(id));
        self.shards[shard].tx.send(job).map_err(|_| RuntimeError::ShardDown)
    }

    /// Routes one domain-targeted job through the fleet table: bumps touch
    /// recency, transparently rehydrates a hibernated domain, applies the
    /// watermark eviction policy, and delivers the job to the owning shard.
    ///
    /// Every placement transition (rehydrate mark, eviction marks) and its
    /// shard-job enqueue happen under ONE continuous fleet-lock hold —
    /// sends on the unbounded shard channels never block, so sending under
    /// the lock is safe. That discipline gives transitions a total order
    /// whose restriction to each shard equals that shard's FIFO order,
    /// which is what makes rehydration race-free (a rehydrate can never be
    /// queued ahead of the hibernate that produces its bytes).
    fn dispatch_to(&self, id: DomainId, job: ShardJob) -> Result<(), RuntimeError> {
        let mut inner = self.fleet.lock();
        match inner.route(id) {
            Routing::Unplaced => {
                drop(inner);
                // Unknown id: deliver anyway so the job observes
                // `UnknownDomain` through the normal callback path.
                let fallback = (id % self.shards.len() as u64) as usize;
                self.shards[fallback].tx.send(job).map_err(|_| RuntimeError::ShardDown)
            }
            Routing::To { shard, rehydrate } => {
                if rehydrate {
                    self.send_rehydrate(shard, id)?;
                }
                let watermark = self.fleet.config().resident_bytes_watermark;
                for (vid, vshard) in inner.plan_evictions(Some(id), watermark) {
                    self.send_hibernate(vshard, vid)?;
                }
                self.shards[shard].tx.send(job).map_err(|_| RuntimeError::ShardDown)
            }
            Routing::Degraded => Err(RuntimeError::DomainDegraded(id)),
        }
    }

    /// Runs `f` on the shard owning `id` and waits for the result.
    fn on_shard<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut ShardState) -> R + Send + 'static,
    {
        let (reply_tx, reply_rx) = channel::bounded::<R>(1);
        let job = instrumented(id, move |state| {
            let _ = reply_tx.send(f(state));
        });
        self.dispatch_to(id, job)?;
        reply_rx.recv().map_err(|_| RuntimeError::ShardDown)
    }

    /// Runs `f` on every shard concurrently and returns the results in
    /// shard order. Bypasses the fleet table: sees resident domains only
    /// and leaves touch recency alone.
    fn on_all_shards<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut ShardState) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let replies: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let (reply_tx, reply_rx) = channel::bounded::<R>(1);
                let f = Arc::clone(&f);
                let job: ShardJob = Box::new(move |state| {
                    let _ = reply_tx.send(f(state));
                });
                let sent = shard.tx.send(job).is_ok();
                (sent, reply_rx)
            })
            .collect();
        replies.into_iter().filter(|(sent, _)| *sent).filter_map(|(_, rx)| rx.recv().ok()).collect()
    }

    /// Creates a domain from `spec`; returns its id. The spec is validated
    /// (inside [`Domain::new`]) before any state is committed, and the
    /// heavyweight controller construction happens outside `create_lock` so
    /// concurrent creates don't serialize on it. Placement goes to the
    /// least-populated shard.
    pub fn create_domain(&self, spec: DomainSpec) -> Result<DomainId, RuntimeError> {
        let domain = Domain::new(spec).map_err(RuntimeError::InvalidSpec)?;
        let _guard = self.create_lock.lock().expect("create lock");
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.install_domain(id, domain)?;
        Ok(id)
    }

    /// Registers `domain` in the fleet table (placing it if the id is new,
    /// reusing placement on a restore-over-live-id) and inserts it on its
    /// shard, blocking until the insert lands. Watermark evictions run in
    /// the same critical section, so resident bytes never exceed the
    /// watermark by more than the incoming domain.
    fn install_domain(&self, id: DomainId, domain: Domain) -> Result<(), RuntimeError> {
        let est = domain.estimated_bytes();
        let cached = base_metrics(id, &domain);
        self.specs.lock().expect("specs lock").insert(id, domain.spec().clone());
        let (reply_tx, reply_rx) = channel::bounded::<()>(1);
        let mut inner = self.fleet.lock();
        let shard = match inner.reinstall(id, est, cached.clone()) {
            Some(shard) => shard,
            None => {
                let shard = inner.place();
                inner.register(id, shard, est, cached);
                shard
            }
        };
        let job: ShardJob = Box::new(move |state| {
            state.install(id, domain);
            let _ = reply_tx.send(());
        });
        self.shards[shard].tx.send(job).map_err(|_| RuntimeError::ShardDown)?;
        let watermark = self.fleet.config().resident_bytes_watermark;
        for (vid, vshard) in inner.plan_evictions(Some(id), watermark) {
            self.send_hibernate(vshard, vid)?;
        }
        drop(inner);
        reply_rx.recv().map_err(|_| RuntimeError::ShardDown)
    }

    /// Ingests job submissions into a domain's workload window. The domain's
    /// ingest budget (if any) is refilled from the runtime clock, so the
    /// outcome may be `Busy` or a shed-trimmed `Accepted`.
    pub fn ingest(&self, id: DomainId, jobs: Vec<JobSpec>) -> Result<IngestOutcome, RuntimeError> {
        let now = self.clock.now();
        self.on_shard(id, move |state| {
            state
                .domains
                .get_mut(&id)
                .map(|d| d.ingest(now, jobs))
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Runs `f` against the domain on its owning shard and waits for the
    /// result — the blocking counterpart of
    /// [`ControllerRuntime::on_domain_async`], used where one clock reading
    /// must cover a compound operation (`IngestAdvance`).
    pub fn on_domain<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&mut Domain) -> R + Send + 'static,
    {
        self.on_shard(id, move |state| {
            state.domains.get_mut(&id).map(f).ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Fire-and-forget dispatch: runs `f` against the domain on its owning
    /// shard without blocking for a reply. The pipelined wire server is
    /// built on this — a connection's reader thread dispatches frames as
    /// fast as they arrive and `f` hands each result to the writer side.
    ///
    /// Same-domain operations dispatched in order execute in order (each
    /// shard is a FIFO actor and migrations preserve the relative order);
    /// `f` gets `Err(UnknownDomain)` if the id is unplaced when the job
    /// runs.
    pub fn on_domain_async<F>(&self, id: DomainId, f: F) -> Result<(), RuntimeError>
    where
        F: FnOnce(Result<&mut Domain, RuntimeError>) + Send + 'static,
    {
        let job = instrumented(id, move |state| match state.domains.get_mut(&id) {
            Some(d) => f(Ok(d)),
            None => f(Err(RuntimeError::UnknownDomain(id))),
        });
        self.dispatch_to(id, job)
    }

    /// Runs one control-loop iteration on a domain against the window
    /// ending at the runtime clock's current reading.
    pub fn advance(&self, id: DomainId) -> Result<DecisionRecord, RuntimeError> {
        let now = self.clock.now();
        let traces = Arc::clone(&self.traces);
        self.on_shard(id, move |state| {
            state
                .domains
                .get_mut(&id)
                .map(|d| {
                    let rec = d.advance(now);
                    push_trace(&traces, id, &rec, d.last_provenance());
                    rec
                })
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Advances every *resident* domain once, all shards in parallel, using
    /// a single consistent clock reading. Records come back id-sorted.
    ///
    /// Hibernated domains are deliberately skipped — waking the whole cold
    /// fleet would defeat the watermark — and the background sweep does not
    /// refresh touch recency, so it never interferes with the LRU policy.
    /// A cold domain's trajectory resumes on its next targeted operation.
    pub fn advance_all(&self) -> Vec<(DomainId, DecisionRecord)> {
        self.advance_all_at(self.clock.now())
    }

    /// [`ControllerRuntime::advance_all`] with the clock reading supplied
    /// by the caller — journal replay uses this to re-run a recorded sweep
    /// at its original time rather than the recovery clock's.
    pub fn advance_all_at(&self, now: Time) -> Vec<(DomainId, DecisionRecord)> {
        self.advance_all_at_with(now, |_| {})
    }

    /// [`ControllerRuntime::advance_all_at`] with a per-shard completion
    /// hook: `on_shard_done` runs on each shard's own worker thread right
    /// after that shard's domains advanced — and therefore before any later
    /// operation on that shard — with the ids it advanced. The journaled
    /// server uses this to append the sweep to the ops journal in exact
    /// per-domain execution order even under concurrent connections.
    pub fn advance_all_at_with<F>(
        &self,
        now: Time,
        on_shard_done: F,
    ) -> Vec<(DomainId, DecisionRecord)>
    where
        F: Fn(&[DomainId]) + Send + Sync + 'static,
    {
        let traces = Arc::clone(&self.traces);
        let mut out: Vec<(DomainId, DecisionRecord)> = self
            .on_all_shards(move |state| {
                let fleet = Arc::clone(&state.fleet);
                let traces = Arc::clone(&traces);
                let records = state
                    .domains
                    .iter_mut()
                    .map(|(id, d)| {
                        let before = d.steps();
                        let start = Instant::now();
                        let rec = d.advance(now);
                        let micros = start.elapsed().as_secs_f64() * 1e6;
                        let steps = d.steps().saturating_sub(before);
                        fleet.note_op(*id, micros, steps, d.estimated_bytes());
                        push_trace(&traces, *id, &rec, d.last_provenance());
                        (*id, rec)
                    })
                    .collect::<Vec<_>>();
                let ids: Vec<DomainId> = records.iter().map(|(id, _)| *id).collect();
                on_shard_done(&ids);
                records
            })
            .into_iter()
            .flatten()
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The configuration a domain's cluster should currently run.
    pub fn current_config(&self, id: DomainId) -> Result<RmConfig, RuntimeError> {
        self.on_shard(id, move |state| {
            state
                .domains
                .get(&id)
                .map(|d| d.current_config())
                .ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Runs a read-only closure against a domain on its owning shard —
    /// the embeddable escape hatch for diagnostics (parity suites compare
    /// optimizer histories through this). Counts as a touch and rehydrates
    /// a hibernated domain, like any other domain-targeted operation.
    pub fn inspect<R, F>(&self, id: DomainId, f: F) -> Result<R, RuntimeError>
    where
        R: Send + 'static,
        F: FnOnce(&Domain) -> R + Send + 'static,
    {
        self.on_shard(id, move |state| {
            state.domains.get(&id).map(f).ok_or(RuntimeError::UnknownDomain(id))
        })?
    }

    /// Serializes a domain out of memory now. Returns `Ok(true)` once the
    /// snapshot bytes are stored (the reply is awaited, so memory really
    /// was released), `Ok(false)` if the domain was already hibernated.
    /// The domain rehydrates transparently on its next operation.
    pub fn hibernate(&self, id: DomainId) -> Result<bool, RuntimeError> {
        let (reply_tx, reply_rx) = channel::bounded::<()>(1);
        {
            let mut inner = self.fleet.lock();
            if !inner.entries.contains_key(&id) {
                return Err(RuntimeError::UnknownDomain(id));
            }
            let Some(shard) = inner.mark_hibernated(id) else {
                return Ok(false);
            };
            let job: ShardJob = Box::new(move |state| {
                state.hibernate(id);
                let _ = reply_tx.send(());
            });
            self.shards[shard].tx.send(job).map_err(|_| RuntimeError::ShardDown)?;
        }
        reply_rx.recv().map_err(|_| RuntimeError::ShardDown)?;
        Ok(true)
    }

    /// Moves a domain to another shard using hibernate/rehydrate as the
    /// move primitive: the source shard serializes the domain to snapshot
    /// bytes and the target shard restores from them — bit-identical state,
    /// warm caches included. Returns `Ok(false)` when the domain is already
    /// on `to`.
    ///
    /// Per-domain FIFO survives the move: operations dispatched before the
    /// migration sit ahead of the hibernate job on the source queue, later
    /// ones sit behind the rehydrate job on the target queue, and the
    /// rehydrate waits for the hibernate's bytes. That wait cannot
    /// deadlock: transitions are totally ordered by the fleet lock and each
    /// shard queue is a restriction of that order, so a rehydrate only ever
    /// waits on a hibernate from a strictly earlier transition — a cycle of
    /// waits would need some transition to precede itself.
    pub fn migrate(&self, id: DomainId, to: usize) -> Result<bool, RuntimeError> {
        self.migrate_from(id, None, to)
    }

    /// Migration with an optional placement precondition: no-op unless the
    /// domain is currently on `only_from` (used by the rebalancer to skip
    /// plan entries that raced with a concurrent move).
    fn migrate_from(
        &self,
        id: DomainId,
        only_from: Option<usize>,
        to: usize,
    ) -> Result<bool, RuntimeError> {
        if to >= self.shards.len() {
            return Err(RuntimeError::Fleet(format!(
                "target shard {to} out of range ({} shards)",
                self.shards.len()
            )));
        }
        let mut guard = self.fleet.lock();
        let inner = &mut *guard;
        let Some(e) = inner.entries.get_mut(&id) else {
            return Err(RuntimeError::UnknownDomain(id));
        };
        let from = e.shard;
        if from == to || only_from.is_some_and(|f| f != from) {
            return Ok(false);
        }
        e.shard = to;
        e.migrations += 1;
        let resident = e.state == DomainState::Resident;
        inner.migrations += 1;
        tempo_obs::counter!("tempo_domain_migrations_total", "Domains moved between shards").inc();
        inner.shard_counts[from] -= 1;
        inner.shard_counts[to] += 1;
        if resident {
            // Both enqueues under the same lock hold (see `dispatch_to`).
            // A hibernated domain needs no jobs: its bytes are already in
            // the store and the next touch rehydrates on the new shard.
            self.send_hibernate(from, id)?;
            self.send_rehydrate(to, id)?;
        }
        Ok(true)
    }

    /// Migrates hot domains off overloaded shards until no shard carries
    /// more than [`FleetConfig::rebalance_factor`] × the mean advance load,
    /// then resets the load window. Returns the executed moves as
    /// `(domain, from, to)`.
    pub fn rebalance(&self) -> Vec<(DomainId, u64, u64)> {
        let factor = self.fleet.config().rebalance_factor;
        let plan = self.fleet.lock().plan_rebalance(factor);
        let mut moves = Vec::with_capacity(plan.len());
        for (id, from, to) in plan {
            if self.migrate_from(id, Some(from), to).unwrap_or(false) {
                moves.push((id, from as u64, to as u64));
            }
        }
        self.fleet.lock().reset_work();
        moves
    }

    /// One fleet-policy sweep: enforces the resident-bytes watermark with
    /// no domain protected, and hibernates domains idle for more than
    /// [`FleetConfig::idle_ticks`] dispatch ticks. Returns how many domains
    /// were sent to hibernation. The server runs this on every `Tick`.
    pub fn maintain(&self) -> u64 {
        let mut inner = self.fleet.lock();
        let watermark = self.fleet.config().resident_bytes_watermark;
        let mut victims = inner.plan_evictions(None, watermark);
        if let Some(ticks) = self.fleet.config().idle_ticks {
            victims.extend(inner.plan_idle(ticks));
        }
        for &(vid, vshard) in &victims {
            if self.send_hibernate(vshard, vid).is_err() {
                break;
            }
        }
        victims.len() as u64
    }

    /// Whether `id` is known to the fleet table at all — resident,
    /// hibernated, or degraded. Journal replay uses this to recognize a
    /// create that is already covered by the checkpoint.
    pub fn contains_domain(&self, id: DomainId) -> bool {
        self.fleet.lock().entries.contains_key(&id)
    }

    /// Domains currently marked degraded (lost to a shard-worker panic),
    /// id-sorted. The journal repair path sweeps this.
    pub fn degraded_domains(&self) -> Vec<DomainId> {
        let inner = self.fleet.lock();
        inner
            .entries
            .iter()
            .filter(|(_, e)| e.state == DomainState::Degraded)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The runtime's decision-trace ring (shared with the wire server so
    /// fire-and-forget dispatch paths can record decisions too).
    pub fn traces(&self) -> &Arc<TraceRing<DecisionTrace>> {
        &self.traces
    }

    /// The most recent retained decisions, oldest first. `limit` defaults
    /// to everything retained; `domain` filters to one domain's decisions.
    pub fn recent_traces(
        &self,
        limit: Option<u64>,
        domain: Option<DomainId>,
    ) -> Vec<DecisionTrace> {
        let n = limit.map_or(TRACE_CAPACITY, |l| l.min(TRACE_CAPACITY as u64) as usize);
        match domain {
            Some(id) => self.traces.recent_filtered(n, |t| t.domain == id),
            None => self.traces.recent(n),
        }
    }

    /// Journal-less self-healing: re-creates every degraded domain fresh
    /// from its retained spec and reinstalls it. The rebuilt domain starts
    /// cold — its in-memory trajectory died with the panicking worker, and
    /// only a journal can resurrect that — but the tenant is served again
    /// instead of erroring until an operator intervenes. The journaled
    /// maintenance path uses [`crate::wal::repair_domain`] instead, which
    /// recovers the full trajectory. Returns the respawned ids.
    pub fn respawn_degraded(&self) -> Vec<DomainId> {
        let mut respawned = Vec::new();
        for id in self.degraded_domains() {
            let Some(spec) = self.specs.lock().expect("specs lock").get(&id).cloned() else {
                continue;
            };
            match Domain::new(spec) {
                Ok(domain) => match self.install_domain(id, domain) {
                    Ok(()) => {
                        tempo_obs::counter!(
                            "tempo_domain_respawned_total",
                            "Degraded domains respawned fresh from their retained spec"
                        )
                        .inc();
                        eprintln!("tempo-serve: domain {id} respawned from its spec (state reset)");
                        respawned.push(id);
                    }
                    Err(e) => eprintln!("tempo-serve: respawn of domain {id} failed: {e}"),
                },
                Err(e) => eprintln!("tempo-serve: respawn of domain {id} rejected its spec: {e}"),
            }
        }
        respawned
    }

    /// Occupancy and throughput counters across every domain, id-sorted.
    /// Never rehydrates: hibernated domains report the counters captured
    /// when they left memory, overlaid with live fleet accounting.
    pub fn metrics(&self) -> RuntimeMetrics {
        let swept: HashMap<DomainId, DomainMetrics> = self
            .on_all_shards(|state| {
                state.domains.iter().map(|(id, d)| (*id, base_metrics(*id, d))).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let inner = self.fleet.lock();
        let shard_loads = inner.shard_loads();
        let mut resident_domains = 0u64;
        let mut degraded_domains = 0u64;
        let mut per_domain = Vec::with_capacity(inner.entries.len());
        for (&id, e) in &inner.entries {
            let resident = e.state == DomainState::Resident;
            let degraded = e.state == DomainState::Degraded;
            resident_domains += u64::from(resident);
            degraded_domains += u64::from(degraded);
            let mut m = swept.get(&id).cloned().unwrap_or_else(|| e.cached.clone());
            m.resident = resident;
            m.degraded = degraded;
            m.shard = e.shard as u64;
            m.last_touch_tick = e.last_touch;
            m.estimated_bytes = e.est_bytes;
            m.advance_ewma_micros = e.advance_ewma_micros;
            m.hibernations = e.hibernations;
            m.rehydrations = e.rehydrations;
            per_domain.push(m);
        }
        let (resident_bytes, peak_resident_bytes) =
            (inner.resident_bytes, inner.peak_resident_bytes);
        let (total_hibernations, total_rehydrations, total_migrations) =
            (inner.hibernations, inner.rehydrations, inner.migrations);
        drop(inner);
        RuntimeMetrics {
            domains: per_domain.len() as u64,
            shards: self.shards.len() as u64,
            clock_now: self.clock.now(),
            total_decisions: per_domain.iter().map(|m| m.decisions).sum(),
            total_ingested: per_domain.iter().map(|m| m.ingested).sum(),
            total_cache_entries: per_domain.iter().map(|m| m.cache_entries).sum(),
            total_sims: per_domain.iter().map(|m| m.sims).sum(),
            total_cache_hits: per_domain.iter().map(|m| m.cache_hits).sum(),
            total_cache_misses: per_domain.iter().map(|m| m.cache_misses).sum(),
            total_cache_evictions: per_domain.iter().map(|m| m.cache_evictions).sum(),
            total_shed: per_domain.iter().map(|m| m.shed_count).sum(),
            total_delayed: per_domain.iter().map(|m| m.delayed_count).sum(),
            resident_domains,
            degraded_domains,
            resident_bytes,
            peak_resident_bytes,
            total_hibernations,
            total_rehydrations,
            total_migrations,
            shard_loads,
            per_domain,
        }
    }

    /// Captures every domain's resumable state, id-sorted. Hibernated
    /// domains are decoded straight from their stored snapshot bytes —
    /// exactly the state a rehydration would resume from — without waking
    /// them. A domain whose hibernate/rehydrate job is mid-flight is picked
    /// up on a retry sweep.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let clock_now = self.clock.now();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut domains: Vec<DomainSnapshot> = self
                .on_all_shards(|state| {
                    state.domains.iter().map(|(id, d)| d.snapshot(*id)).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            let resident: HashSet<DomainId> = domains.iter().map(|d| d.id).collect();
            let mut cold = Vec::new();
            let mut in_flight = false;
            {
                let inner = self.fleet.lock();
                for (&id, e) in &inner.entries {
                    if resident.contains(&id) {
                        continue;
                    }
                    // A degraded domain has no trustworthy state anywhere;
                    // the snapshot simply omits it (the journal is its only
                    // recovery source).
                    if e.state == DomainState::Degraded {
                        continue;
                    }
                    match inner.store.get(&id) {
                        Some(bytes) => cold.push(bytes.clone()),
                        None => in_flight = true,
                    }
                }
            }
            if !in_flight {
                for bytes in cold {
                    domains.push(
                        codec::decode_snapshot(&bytes).expect("stored snapshot bytes decode"),
                    );
                }
                domains.sort_by_key(|d| d.id);
                return RuntimeSnapshot { clock_now, domains };
            }
            assert!(
                Instant::now() < deadline,
                "domain state unavailable for 10s during snapshot (in-flight transition wedged)"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stop-the-world capture: every shard worker snapshots its resident
    /// domains and then parks at a barrier, so while `f` runs nothing
    /// executes — or journals — anywhere in the runtime. The checkpoint
    /// path is built on this: taking the state capture and cutting the
    /// journal inside one quiescent window is what guarantees every
    /// journaled op lands in exactly one of {checkpoint, journal suffix}.
    ///
    /// Park jobs are enqueued under one continuous fleet-lock hold, the
    /// same discipline as placement transitions (see
    /// [`ControllerRuntime::dispatch_to`]): a migration's hibernate/
    /// rehydrate pair is therefore entirely before the barrier (its bytes
    /// land before the affected shards park) or entirely behind it — a
    /// rehydrate can never spin for bytes whose hibernate is parked.
    ///
    /// `f` must not dispatch work to shards (it would deadlock against the
    /// barrier); fleet-table reads and journal I/O are fine. Degraded
    /// domains are omitted, exactly as in [`ControllerRuntime::snapshot`].
    pub fn quiesced_snapshot<R>(
        &self,
        f: impl FnOnce(&RuntimeSnapshot) -> R,
    ) -> (RuntimeSnapshot, R) {
        let clock_now = self.clock.now();
        let (cap_tx, cap_rx) = channel::unbounded::<Vec<DomainSnapshot>>();
        let mut releases = Vec::with_capacity(self.shards.len());
        {
            let _inner = self.fleet.lock();
            for shard in &self.shards {
                let cap_tx = cap_tx.clone();
                let (release_tx, release_rx) = channel::bounded::<()>(1);
                let job: ShardJob = Box::new(move |state| {
                    let caps: Vec<DomainSnapshot> =
                        state.domains.iter().map(|(id, d)| d.snapshot(*id)).collect();
                    let _ = cap_tx.send(caps);
                    let _ = release_rx.recv();
                });
                if shard.tx.send(job).is_ok() {
                    releases.push(release_tx);
                }
            }
        }
        let mut domains: Vec<DomainSnapshot> =
            (0..releases.len()).filter_map(|_| cap_rx.recv().ok()).flatten().collect();
        // Every live worker is parked now; cold domains come from the store.
        // No in-flight wait is needed: a transition whose job is queued
        // behind the barrier has not removed its domain from the shard map
        // yet, so the domain was captured as resident above.
        let resident: HashSet<DomainId> = domains.iter().map(|d| d.id).collect();
        {
            let inner = self.fleet.lock();
            for (&id, e) in &inner.entries {
                if resident.contains(&id) || e.state == DomainState::Degraded {
                    continue;
                }
                match inner.store.get(&id) {
                    Some(bytes) => domains
                        .push(codec::decode_snapshot(bytes).expect("stored snapshot bytes decode")),
                    // Only reachable if a rehydrate failed to decode its own
                    // bytes (already logged there); nothing left to capture.
                    None => {
                        eprintln!("tempo-serve: domain {id} has no capturable state during quiesce")
                    }
                }
            }
        }
        domains.sort_by_key(|d| d.id);
        let snapshot = RuntimeSnapshot { clock_now, domains };
        let result = f(&snapshot);
        for release in releases {
            let _ = release.send(());
        }
        (snapshot, result)
    }

    /// Restores domains from a snapshot (ids preserved), replacing any
    /// same-id domains already hosted. Returns the restored ids.
    pub fn restore(&self, snapshot: RuntimeSnapshot) -> Result<Vec<DomainId>, RuntimeError> {
        let _guard = self.create_lock.lock().expect("create lock");
        let mut ids = Vec::with_capacity(snapshot.domains.len());
        let mut max_id = self.next_id.load(Ordering::SeqCst);
        for ds in snapshot.domains {
            let id = ds.id;
            let domain = Domain::restore(ds).map_err(RuntimeError::InvalidSpec)?;
            self.install_domain(id, domain)?;
            ids.push(id);
            max_id = max_id.max(id + 1);
        }
        self.next_id.store(max_id, Ordering::SeqCst);
        Ok(ids)
    }

    /// Stops accepting work and joins every shard worker. Queued operations
    /// submitted before the call complete first (channels drain in order).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for shard in &mut self.shards {
            // Dropping the sender closes the queue; the worker drains what
            // is left and exits its recv loop. A rehydrate job draining on
            // one shard can still complete: the hibernate publishing its
            // bytes was enqueued first (fleet-lock order) and other shards'
            // workers keep draining their queues independently.
            let (closed_tx, _closed_rx) = channel::bounded::<ShardJob>(1);
            let tx = std::mem::replace(&mut shard.tx, closed_tx);
            drop(tx);
            drop(_closed_rx);
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ControllerRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::domain::DomainSpec;
    use tempo_qs::{QsKind, SloSet, SloSpec};
    use tempo_sim::{ClusterSpec, TenantConfig};
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::TaskSpec;

    fn spec(name: &str, seed: u64) -> DomainSpec {
        let slos = SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ]);
        let initial = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(2.0),
            TenantConfig::fair_default(),
        ]);
        DomainSpec::new(name, ClusterSpec::new(8, 4), slos, initial, 4 * MIN)
            .with_seed(seed)
            .with_probes(3)
    }

    fn jobs(base: u64) -> Vec<JobSpec> {
        (0..4u64)
            .map(|i| {
                JobSpec::new(
                    0,
                    (i % 2) as u16,
                    base + i * 30 * SEC,
                    vec![TaskSpec::map(20 * SEC), TaskSpec::reduce(30 * SEC)],
                )
            })
            .collect()
    }

    #[test]
    fn domains_are_isolated_across_shards() {
        let rt = ControllerRuntime::new(3, Arc::new(SimClock::new()));
        let a = rt.create_domain(spec("a", 1)).unwrap();
        let b = rt.create_domain(spec("b", 2)).unwrap();
        assert_ne!(a, b);
        rt.ingest(a, jobs(0)).unwrap();
        let rec = rt.advance(a).unwrap();
        assert!(!rec.skipped);
        // Domain b saw nothing.
        let rec_b = rt.advance(b).unwrap();
        assert!(rec_b.skipped);
        let m = rt.metrics();
        assert_eq!(m.domains, 2);
        assert_eq!(m.total_decisions, 1);
        assert_eq!(m.per_domain[0].ingested, 4);
        assert_eq!(m.per_domain[1].ingested, 0);
        rt.shutdown();
    }

    #[test]
    fn unknown_domains_and_bad_specs_error() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        assert_eq!(rt.advance(99), Err(RuntimeError::UnknownDomain(99)));
        assert_eq!(rt.ingest(99, vec![]), Err(RuntimeError::UnknownDomain(99)));
        let mut bad = spec("bad", 1);
        bad.window_len = 0;
        assert!(matches!(rt.create_domain(bad), Err(RuntimeError::InvalidSpec(_))));
        rt.shutdown();
    }

    #[test]
    fn advance_all_uses_one_clock_reading() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(4, Arc::<SimClock>::clone(&clock));
        let ids: Vec<_> =
            (0..6).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        for &id in &ids {
            rt.ingest(id, jobs(0)).unwrap();
        }
        clock.advance(2 * MIN);
        let records = rt.advance_all();
        assert_eq!(records.len(), 6);
        assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "id-sorted");
        let windows: Vec<_> = records.iter().map(|(_, r)| r.window).collect();
        assert!(windows.iter().all(|w| *w == windows[0]), "single consistent now");
        rt.shutdown();
    }

    #[test]
    fn concurrent_clients_make_progress() {
        let rt = Arc::new(ControllerRuntime::new(4, Arc::new(SimClock::new())));
        let ids: Vec<_> =
            (0..8).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    rt.ingest(id, jobs(0)).unwrap();
                    for _ in 0..2 {
                        rt.advance(id).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let m = rt.metrics();
        assert_eq!(m.total_decisions, 16);
        Arc::try_unwrap(rt).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn over_budget_tenant_backpressures_without_slowing_siblings() {
        use crate::domain::IngestBudget;
        let clock = Arc::new(SimClock::new());
        // One shard on purpose: the greedy tenant and its siblings share a
        // worker thread, so isolation must come from the budget, not luck.
        let rt = ControllerRuntime::new(1, Arc::<SimClock>::clone(&clock));
        let greedy =
            rt.create_domain(spec("greedy", 1).with_ingest_budget(IngestBudget::delay(4))).unwrap();
        let calm_a = rt.create_domain(spec("calm-a", 2)).unwrap();
        let calm_b = rt.create_domain(spec("calm-b", 3)).unwrap();

        // The greedy tenant drains its bucket, then gets turned away.
        assert_eq!(rt.ingest(greedy, jobs(0)).unwrap(), IngestOutcome::Accepted { accepted: 4 });
        let busy = rt.ingest(greedy, jobs(0)).unwrap();
        assert!(
            matches!(busy, IngestOutcome::Busy { retry_after_micros } if retry_after_micros > 0)
        );

        // Siblings on the same shard keep ingesting and deciding at full
        // rate while the greedy tenant is backpressured.
        for _ in 0..3 {
            assert_eq!(rt.ingest(calm_a, jobs(0)).unwrap().accepted(), 4);
            assert_eq!(rt.ingest(calm_b, jobs(0)).unwrap().accepted(), 4);
            clock.advance(30 * SEC);
            assert!(!rt.advance(calm_a).unwrap().skipped);
            assert!(!rt.advance(calm_b).unwrap().skipped);
        }

        let m = rt.metrics();
        assert_eq!(m.total_delayed, 4);
        assert_eq!(m.total_shed, 0);
        let gm = m.per_domain.iter().find(|d| d.id == greedy).unwrap();
        assert_eq!(gm.delayed_count, 4);
        assert!(gm.ingest_budget_occupancy > 0.0);
        let am = m.per_domain.iter().find(|d| d.id == calm_a).unwrap();
        assert_eq!(am.ingested, 12, "sibling saw every job");
        assert_eq!(am.decisions, 3, "sibling never skipped");

        // Once the retry hint elapses the greedy tenant is admitted again.
        clock.advance(4 * MIN);
        assert_eq!(rt.ingest(greedy, jobs(0)).unwrap().accepted(), 4);
        rt.shutdown();
    }

    #[test]
    fn async_dispatch_preserves_same_domain_order() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        let id = rt.create_domain(spec("a", 1)).unwrap();
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..16u64 {
            let tx = tx.clone();
            rt.on_domain_async(id, move |d| {
                let _ = tx.send(d.map(|d| d.ingested()).unwrap_or(u64::MAX) + i);
            })
            .unwrap();
        }
        let seen: Vec<u64> = (0..16).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(seen, (0..16).collect::<Vec<_>>(), "FIFO per shard");
        // Unknown domains surface through the callback, not a panic.
        let (tx2, rx2) = channel::bounded::<Result<(), RuntimeError>>(1);
        rt.on_domain_async(999, move |d| {
            let _ = tx2.send(d.map(|_| ()));
        })
        .unwrap();
        assert_eq!(rx2.recv().unwrap(), Err(RuntimeError::UnknownDomain(999)));
        rt.shutdown();
    }

    #[test]
    fn snapshot_restore_round_trips_through_a_fresh_runtime() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock));
        let a = rt.create_domain(spec("a", 7)).unwrap();
        let b = rt.create_domain(spec("b", 8)).unwrap();
        rt.ingest(a, jobs(0)).unwrap();
        rt.ingest(b, jobs(MIN)).unwrap();
        rt.advance_all();
        let snap = rt.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        rt.shutdown();

        let clock2 = Arc::new(SimClock::at(snap.clock_now));
        let rt2 = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock2));
        let parsed: RuntimeSnapshot = serde_json::from_str(&json).unwrap();
        let ids = rt2.restore(parsed).unwrap();
        assert_eq!(ids, vec![a, b]);
        // New domains never collide with restored ids.
        let c = rt2.create_domain(spec("c", 9)).unwrap();
        assert!(c > b);
        let m = rt2.metrics();
        assert_eq!(m.domains, 3);
        assert_eq!(m.total_decisions, 2);
        rt2.shutdown();
    }

    #[test]
    fn hibernated_domains_report_metrics_and_wake_transparently() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock));
        let a = rt.create_domain(spec("a", 1)).unwrap();
        let b = rt.create_domain(spec("b", 2)).unwrap();
        rt.ingest(a, jobs(0)).unwrap();
        clock.advance(2 * MIN);
        assert!(!rt.advance(a).unwrap().skipped);

        assert!(rt.hibernate(a).unwrap());
        assert!(!rt.hibernate(a).unwrap(), "second hibernate is a no-op");
        assert_eq!(rt.hibernate(777), Err(RuntimeError::UnknownDomain(777)));

        // Metrics come from the cached counters without waking the domain.
        let m = rt.metrics();
        assert_eq!(m.domains, 2);
        assert_eq!(m.resident_domains, 1);
        assert_eq!(m.total_hibernations, 1);
        let am = m.per_domain.iter().find(|d| d.id == a).unwrap();
        assert!(!am.resident);
        assert_eq!(am.ingested, 4);
        assert_eq!(am.decisions, 1);
        assert!(am.estimated_bytes > 0);
        assert!(m.per_domain.iter().find(|d| d.id == b).unwrap().resident);
        assert!(m.resident_bytes < m.peak_resident_bytes);

        // Snapshots include hibernated domains without waking them.
        let snap = rt.snapshot();
        assert_eq!(snap.domains.len(), 2);
        assert_eq!(rt.metrics().resident_domains, 1, "snapshot did not rehydrate");

        // The next operation rehydrates transparently, counters intact.
        clock.advance(2 * MIN);
        rt.ingest(a, jobs(4 * MIN)).unwrap();
        assert!(!rt.advance(a).unwrap().skipped);
        let m = rt.metrics();
        let am = m.per_domain.iter().find(|d| d.id == a).unwrap();
        assert!(am.resident);
        assert_eq!(am.ingested, 8);
        assert_eq!(am.decisions, 2);
        assert_eq!(am.hibernations, 1);
        assert_eq!(am.rehydrations, 1);
        assert_eq!(m.resident_domains, 2);
        rt.shutdown();
    }

    #[test]
    fn watermark_keeps_resident_bytes_bounded() {
        let clock = Arc::new(SimClock::new());
        // Watermark below two idle domains' footprint: at most one stays
        // resident once a second exists.
        let config = FleetConfig::default().with_watermark(6 * 1024);
        let rt = ControllerRuntime::with_fleet(1, Arc::<SimClock>::clone(&clock), config);
        let ids: Vec<_> =
            (0..4).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        let m = rt.metrics();
        assert_eq!(m.domains, 4);
        assert_eq!(m.resident_domains, 1, "creation evicted down to the watermark");
        // Peak never exceeded watermark + the single protected domain.
        let max_domain = m.per_domain.iter().map(|d| d.estimated_bytes).max().unwrap();
        assert!(
            m.peak_resident_bytes <= 6 * 1024 + max_domain,
            "peak {} exceeds watermark + one domain",
            m.peak_resident_bytes
        );
        // Every domain still works when touched; LRU churns through them.
        for (i, &id) in ids.iter().enumerate() {
            rt.ingest(id, jobs(i as u64 * 30 * SEC)).unwrap();
            clock.advance(30 * SEC);
            assert!(!rt.advance(id).unwrap().skipped);
        }
        let m = rt.metrics();
        assert_eq!(m.total_decisions, 4);
        assert!(m.total_rehydrations >= 3, "cold domains woke on touch");
        assert_eq!(m.resident_domains, 1);
        rt.shutdown();
    }

    #[test]
    fn migrate_moves_domains_and_validates_targets() {
        let clock = Arc::new(SimClock::new());
        let rt = ControllerRuntime::new(2, Arc::<SimClock>::clone(&clock));
        let a = rt.create_domain(spec("a", 5)).unwrap();
        rt.ingest(a, jobs(0)).unwrap();
        clock.advance(MIN);
        let before = rt.advance(a).unwrap();
        assert!(!before.skipped);

        assert!(matches!(rt.migrate(a, 99), Err(RuntimeError::Fleet(_))));
        assert_eq!(rt.migrate(404, 1), Err(RuntimeError::UnknownDomain(404)));
        let home = rt.metrics().per_domain[0].shard;
        assert!(!rt.migrate(a, home as usize).unwrap(), "already there");
        let away = 1 - home;
        assert!(rt.migrate(a, away as usize).unwrap());

        // The domain keeps working on its new shard, history intact.
        rt.ingest(a, jobs(2 * MIN)).unwrap();
        clock.advance(MIN);
        assert!(!rt.advance(a).unwrap().skipped);
        let m = rt.metrics();
        let am = &m.per_domain[0];
        assert_eq!(am.shard, away);
        assert!(am.resident);
        assert_eq!(am.decisions, 2);
        assert_eq!(am.ingested, 8);
        assert_eq!(m.total_migrations, 1);
        rt.shutdown();
    }

    #[test]
    fn rebalance_spreads_advance_load_across_shards() {
        let clock = Arc::new(SimClock::new());
        let config = FleetConfig::default().with_rebalance_factor(1.25);
        let rt = ControllerRuntime::with_fleet(4, Arc::<SimClock>::clone(&clock), config);
        // Eight domains, two per shard by creation placement; make shard
        // 0's pair do all the work.
        let ids: Vec<_> =
            (0..8).map(|i| rt.create_domain(spec(&format!("d{i}"), i)).unwrap()).collect();
        let hot: Vec<_> = {
            let m = rt.metrics();
            m.per_domain.iter().filter(|d| d.shard == 0).map(|d| d.id).collect()
        };
        assert_eq!(hot.len(), 2);
        for round in 0..6u64 {
            for &id in &hot {
                rt.ingest(id, jobs(round * MIN)).unwrap();
                clock.advance(20 * SEC);
                rt.advance(id).unwrap();
            }
        }
        let loads = rt.metrics().shard_loads;
        assert_eq!(loads.iter().sum::<u64>(), 12);
        assert_eq!(loads[0], 12, "all load on shard 0 before rebalancing");

        let moves = rt.rebalance();
        assert!(!moves.is_empty(), "imbalance above factor must trigger moves");
        assert!(moves.iter().all(|&(id, from, _)| from == 0 && hot.contains(&id)));
        let m = rt.metrics();
        assert!(m.total_migrations >= 1);
        assert!(m.shard_loads.iter().all(|&l| l == 0), "load window reset");
        // Moved domains still advance correctly on their new shards.
        for &id in &ids {
            clock.advance(20 * SEC);
            rt.advance(id).unwrap();
        }
        assert_eq!(rt.metrics().per_domain.len(), 8);
        rt.shutdown();
    }

    #[test]
    fn maintain_hibernates_idle_domains() {
        let clock = Arc::new(SimClock::new());
        let config = FleetConfig::default().with_idle_ticks(6);
        let rt = ControllerRuntime::with_fleet(1, Arc::<SimClock>::clone(&clock), config);
        let idle = rt.create_domain(spec("idle", 1)).unwrap();
        let busy = rt.create_domain(spec("busy", 2)).unwrap();
        assert_eq!(rt.maintain(), 0, "nothing idle yet");
        // Burn dispatch ticks on the busy domain only.
        for round in 0..8u64 {
            rt.ingest(busy, jobs(round * 30 * SEC)).unwrap();
        }
        assert_eq!(rt.maintain(), 1);
        let m = rt.metrics();
        assert!(!m.per_domain.iter().find(|d| d.id == idle).unwrap().resident);
        assert!(m.per_domain.iter().find(|d| d.id == busy).unwrap().resident);
        // The idle domain comes back on touch.
        rt.ingest(idle, jobs(0)).unwrap();
        assert!(rt.metrics().per_domain.iter().find(|d| d.id == idle).unwrap().resident);
        rt.shutdown();
    }

    #[test]
    fn quiesced_snapshot_matches_snapshot_and_resumes_service() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        let a = rt.create_domain(spec("a", 1)).unwrap();
        let b = rt.create_domain(spec("b", 2)).unwrap();
        let c = rt.create_domain(spec("c", 3)).unwrap();
        rt.ingest(a, jobs(0)).unwrap();
        rt.advance(a).unwrap();
        rt.ingest(b, jobs(5)).unwrap();
        assert!(rt.hibernate(c).unwrap(), "hibernate c");
        let reference = rt.snapshot();
        let (quiesced, seen) = rt.quiesced_snapshot(|s| s.domains.len());
        assert_eq!(quiesced, reference);
        assert_eq!(seen, 3, "closure sees the full capture, cold domains included");
        // The barrier released: every shard serves again.
        rt.advance(a).unwrap();
        rt.advance(b).unwrap();
        rt.advance(c).unwrap();
        rt.shutdown();
    }

    #[test]
    fn advance_all_at_with_reports_each_shards_domains() {
        let rt = ControllerRuntime::new(2, Arc::new(SimClock::new()));
        for i in 0..4u64 {
            rt.create_domain(spec(&format!("d{i}"), i)).unwrap();
        }
        let seen = Arc::new(std::sync::Mutex::new(Vec::<Vec<DomainId>>::new()));
        let hook_seen = Arc::clone(&seen);
        let records = rt.advance_all_at_with(rt.clock().now(), move |shard_ids| {
            hook_seen.lock().unwrap().push(shard_ids.to_vec());
        });
        let mut advanced: Vec<DomainId> = records.iter().map(|(id, _)| *id).collect();
        advanced.sort_unstable();
        let groups = seen.lock().unwrap();
        let mut reported: Vec<DomainId> = groups.iter().flatten().copied().collect();
        reported.sort_unstable();
        assert_eq!(reported, advanced, "hook reports exactly the advanced ids");
        assert!(groups.len() <= 2, "at most one hook call per shard, got {}", groups.len());
        drop(groups);
        rt.shutdown();
    }
}
