//! Canned domain shapes for load generation, smoke tests, and examples.
//!
//! The spec mirrors the paper's §8.2 contention setup at toy scale: a
//! deadline tenant bursting against a best-effort stream on a tight
//! cluster, so every advance has real tuning work to do while staying cheap
//! enough to run hundreds of domains on a laptop.

use crate::domain::DomainSpec;
use tempo_qs::{QsKind, SloSet, SloSpec};
use tempo_sim::{ClusterSpec, RmConfig, TenantConfig};
use tempo_workload::time::{Time, MIN, SEC};
use tempo_workload::trace::{JobSpec, TaskSpec};

/// Re-tuning window length used by [`contention_spec`].
pub const DEMO_WINDOW: Time = 4 * MIN;

/// A two-tenant contention domain: tenant 0 carries a deadline SLO, tenant
/// 1 a best-effort average-response-time SLO.
pub fn contention_spec(name: &str, seed: u64) -> DomainSpec {
    let slos = SloSet::new(vec![
        SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
        SloSpec::new(Some(1), QsKind::AvgResponseTime),
    ]);
    let initial = RmConfig::new(vec![
        TenantConfig::fair_default().with_weight(2.0),
        TenantConfig::fair_default(),
    ]);
    DomainSpec::new(name, ClusterSpec::new(8, 4), slos, initial, DEMO_WINDOW)
        .with_seed(seed)
        .with_probes(3)
}

/// A deterministic burst of `count` submissions starting at `base`,
/// alternating deadline jobs (tenant 0) and best-effort jobs (tenant 1).
/// `salt` varies durations/spacing so domains don't all ingest identical
/// streams.
pub fn contention_burst(base: Time, count: u64, salt: u64) -> Vec<JobSpec> {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |span: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % span
    };
    (0..count)
        .map(|i| {
            let submit = base + i * 20 * SEC + next(10) * SEC;
            if i % 2 == 0 {
                JobSpec::new(
                    0,
                    0,
                    submit,
                    vec![
                        TaskSpec::map((15 + next(10)) * SEC),
                        TaskSpec::map((15 + next(10)) * SEC),
                        TaskSpec::reduce((30 + next(15)) * SEC),
                    ],
                )
                .with_deadline(submit + 2 * MIN)
            } else {
                JobSpec::new(
                    0,
                    1,
                    submit,
                    vec![
                        TaskSpec::map((20 + next(15)) * SEC),
                        TaskSpec::reduce((45 + next(20)) * SEC),
                    ],
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn demo_domain_tunes_on_demo_bursts() {
        let mut d = Domain::new(contention_spec("demo", 3)).unwrap();
        d.ingest(0, contention_burst(0, 8, 3));
        let rec = d.advance(0);
        assert!(!rec.skipped);
        assert_eq!(rec.observed_qs.len(), 2);
    }

    #[test]
    fn bursts_are_deterministic_per_salt() {
        assert_eq!(contention_burst(0, 6, 9), contention_burst(0, 6, 9));
        assert_ne!(contention_burst(0, 6, 9), contention_burst(0, 6, 10));
    }
}
