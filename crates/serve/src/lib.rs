//! # tempo-serve
//!
//! The serving layer of the Tempo reproduction: where `tempo-core` gives
//! you *one* self-tuning controller you step by hand, this crate runs
//! *fleets* of them continuously — the paper's control loop (§4) promoted
//! from batch harness to daemon.
//!
//! * [`runtime::ControllerRuntime`] — a sharded runtime hosting N
//!   independent tenancy domains ([`domain::Domain`]), each a Tempo
//!   controller plus a live workload window, driven by a pool of shard
//!   worker threads over crossbeam channels. Per-domain execution is
//!   strictly serial (deterministic trajectories); distinct domains run in
//!   parallel.
//! * [`clock`] — pluggable time: [`clock::WallClock`] for production,
//!   [`clock::SimClock`] for deterministic replay and the serve/direct
//!   parity suite.
//! * [`proto`] + [`server`] — a JSONL-over-TCP wire protocol served by the
//!   `tempo-serve` binary, with graceful drain on shutdown.
//! * Snapshot/restore — [`runtime::RuntimeSnapshot`] captures tuned
//!   configurations, optimizer state, workload windows, *and* warm What-if
//!   memo-cache entries, so a restarted daemon resumes bit-identically.
//!
//! The companion `serve_bench` binary is the load generator: it drives
//! hundreds of domains concurrently (embedded or over TCP) and reports
//! decisions/sec and ingest events/sec.

pub mod clock;
pub mod demo;
pub mod domain;
pub mod proto;
pub mod runtime;
pub mod server;

pub use clock::{Clock, SimClock, WallClock};
pub use domain::{DecisionRecord, Domain, DomainSnapshot, DomainSpec};
pub use proto::{Request, Response, PROTO_VERSION};
pub use runtime::{
    ControllerRuntime, DomainId, DomainMetrics, RuntimeError, RuntimeMetrics, RuntimeSnapshot,
};
pub use server::{ClockMode, Server, ServerConfig};
