//! # tempo-serve
//!
//! The serving layer of the Tempo reproduction: where `tempo-core` gives
//! you *one* self-tuning controller you step by hand, this crate runs
//! *fleets* of them continuously — the paper's control loop (§4) promoted
//! from batch harness to daemon.
//!
//! * [`runtime::ControllerRuntime`] — a sharded runtime hosting N
//!   independent tenancy domains ([`domain::Domain`]), each a Tempo
//!   controller plus a live workload window, driven by a pool of shard
//!   worker threads over crossbeam channels. Per-domain execution is
//!   strictly serial (deterministic trajectories); distinct domains run in
//!   parallel.
//! * [`clock`] — pluggable time: [`clock::WallClock`] for production,
//!   [`clock::SimClock`] for deterministic replay and the serve/direct
//!   parity suite.
//! * [`proto`] + [`codec`] + [`server`] — a TCP wire protocol with two
//!   negotiated codecs sharing one message set: legacy JSONL (strict
//!   request/response, `nc`-scriptable) and length-prefixed binary frames
//!   with correlation ids, which the server pipelines out of order across
//!   domains. [`client::Client`] speaks both.
//! * Per-tenant ingest backpressure — domains can carry an
//!   [`domain::IngestBudget`] (token bucket per re-tuning window) that
//!   sheds or delays over-budget bursts ([`proto::Response::Busy`])
//!   without slowing sibling domains on the same shard.
//! * Snapshot/restore — [`runtime::RuntimeSnapshot`] captures tuned
//!   configurations, optimizer state, workload windows, *and* warm What-if
//!   memo-cache entries, so a restarted daemon resumes bit-identically.
//! * [`fleet`] — million-domain fleet management: cold domains hibernate
//!   to compact binary snapshot bytes under an operator-set resident-bytes
//!   watermark (LRU + idle-tick policies) and rehydrate transparently on
//!   their next operation; per-domain cost accounting (estimated resident
//!   bytes, advance-cost EWMA, touch recency) rolls up into
//!   [`runtime::RuntimeMetrics`]; and a load-aware placement table with a
//!   greedy rebalancer ([`runtime::ControllerRuntime::rebalance`]) keeps
//!   any one shard from hoarding the advance work, using
//!   hibernate/rehydrate as the bit-identical cross-shard move primitive.
//!
//! The companion `serve_bench` binary is the load generator: it drives
//! hundreds of domains concurrently (embedded or over TCP, either codec,
//! with a configurable pipeline depth) and reports decisions/sec and
//! ingest events/sec.

pub mod client;
pub mod clock;
pub mod codec;
pub mod demo;
pub mod domain;
pub mod fault;
pub mod fleet;
pub mod proto;
pub mod runtime;
pub mod server;
pub mod wal;

pub use client::{Client, ClientStats, Proto, RetryPolicy};
pub use clock::{Clock, SimClock, WallClock};
pub use domain::{
    BackpressurePolicy, DecisionRecord, Domain, DomainSnapshot, DomainSpec, IngestBudget,
    IngestOutcome,
};
pub use fault::{FaultInjector, FaultPlan, NoFaults};
pub use fleet::FleetConfig;
pub use proto::{Request, Response, PROTO_VERSION};
pub use runtime::{
    ControllerRuntime, DomainId, DomainMetrics, RuntimeError, RuntimeMetrics, RuntimeSnapshot,
};
pub use server::{ClockMode, Server, ServerConfig};
pub use wal::{Journal, JournalOp, JournalRecord, RecoveryReport};
