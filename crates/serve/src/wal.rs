//! The durable operations journal — what makes tempo-serve crash-only.
//!
//! Every state-mutating request the server executes is appended to
//! `journal.bin` as a CRC-checksummed, length-prefixed binary-codec frame,
//! *after* it executed (write-behind: an op the client saw acknowledged may
//! be lost if the process dies between execute and append — crash-only
//! semantics, not two-phase commit). Periodically the whole runtime is
//! checkpointed to `checkpoint.bin` and the journal is reset, inside one
//! stop-the-world window ([`ControllerRuntime::quiesced_snapshot`]): every
//! shard parks while the state is captured and the journal cut, so each
//! journaled op lands in exactly one of {checkpoint, fresh journal}, never
//! neither. Recovery loads the latest
//! valid checkpoint, truncates the journal at the first bad CRC (a torn
//! tail from `kill -9` is expected, not an error), and replays the suffix.
//!
//! Because every journaled record carries the clock reading its operation
//! originally executed with, replay is independent of the recovery-time
//! clock: the recovered trajectory — PALD history, RNG odometer, warm
//! What-if caches — is bit-identical to the uninterrupted run for any
//! serialized (single-connection) workload, and equal to the journal's
//! recorded linearization under concurrency. The crash-recovery parity
//! proptest pins exactly this.
//!
//! ## File formats (all integers little-endian)
//!
//! ```text
//! journal.bin    = "TWAL" ‖ u8 version ‖ u64 epoch ‖ record*
//! record         = u32 body_len ‖ u32 crc32(body) ‖ body
//! body           = binary-codec encoding of JournalRecord
//! checkpoint.bin = "TCKP" ‖ u8 version ‖ u64 epoch ‖ u32 crc32(body) ‖ body
//! body           = binary-codec encoding of RuntimeSnapshot
//! ```
//!
//! The epoch stitches the two files together: writing a checkpoint bumps the
//! epoch, renames the checkpoint into place, then atomically replaces the
//! journal with a fresh header carrying the new epoch. A crash between the
//! two renames leaves a journal whose epoch trails the checkpoint's; its
//! records are already covered by the checkpoint, so recovery discards them.
//! Both headers are versioned: a file from a future build is rejected with a
//! clear error, never fed to the deserializer.
//!
//! Appends flush to the OS page cache and survive `kill -9`; they do not
//! `fsync`, so a host power loss can lose the tail (documented in the
//! README's fault model). Checkpoints, being rare, *are* synced before the
//! rename.

use crate::clock::SimClock;
use crate::codec;
use crate::domain::Domain;
use crate::fault::FaultInjector;
use crate::runtime::{ControllerRuntime, DomainId, RuntimeSnapshot};
use bytes::BytesMut;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tempo_workload::time::Time;
use tempo_workload::JobSpec;

mod obs {
    pub(super) fn appends() -> &'static tempo_obs::Counter {
        tempo_obs::counter!("tempo_wal_appends_total", "Journal records durably appended")
    }

    pub(super) fn append_errors() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_wal_append_errors_total",
            "Journal appends that failed (injected or real I/O error)"
        )
    }

    pub(super) fn checkpoints() -> &'static tempo_obs::Counter {
        tempo_obs::counter!("tempo_wal_checkpoints_total", "Checkpoints written and synced")
    }

    pub(super) fn append_micros() -> &'static tempo_obs::Histogram {
        tempo_obs::histogram!(
            "tempo_wal_append_duration_micros",
            "Wall time of one successful journal append, in microseconds"
        )
    }

    pub(super) fn checkpoint_micros() -> &'static tempo_obs::Histogram {
        tempo_obs::histogram!(
            "tempo_wal_checkpoint_duration_micros",
            "Wall time of one checkpoint write (encode + sync + journal reset), in microseconds"
        )
    }

    pub(super) fn recovery_micros() -> &'static tempo_obs::Histogram {
        tempo_obs::histogram!(
            "tempo_wal_recovery_duration_micros",
            "Wall time of one recovery pass (checkpoint restore + journal replay), in microseconds"
        )
    }

    pub(super) fn replayed() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_wal_replayed_records_total",
            "Journal records replayed during recovery passes"
        )
    }

    /// Fault-injection firings by kind. `kind` varies per call site, so this
    /// resolves through the registry instead of the call-site-cached macro.
    pub(super) fn fault_injections(kind: &str) -> &'static tempo_obs::Counter {
        tempo_obs::counter(
            "tempo_fault_injections_total",
            "Deterministic fault-injector firings by kind",
            &[("kind", kind)],
        )
    }
}

/// Magic opening `journal.bin`.
pub const JOURNAL_MAGIC: [u8; 4] = *b"TWAL";
/// Magic opening `checkpoint.bin`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"TCKP";
/// On-disk format version carried by both headers.
pub const JOURNAL_VERSION: u8 = 1;
/// `magic ‖ version ‖ epoch`.
const JOURNAL_HEADER: usize = 4 + 1 + 8;
/// Sanity cap on one journal record's body (mirrors the wire frame cap): a
/// length prefix beyond it is corruption, treated as a torn tail.
const MAX_RECORD_LEN: usize = codec::MAX_FRAME_LEN;

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One journaled operation: the dispatch-time clock reading plus what ran.
/// Replay applies `op` with the recorded `now`, never the recovery clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    pub now: Time,
    pub op: JournalOp,
}

/// The state-mutating operations the server journals. Read-only requests
/// (Hello/Config/Metrics/Snapshot) and failed operations are never logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// A successful create, with the id the runtime assigned (replay asserts
    /// the recovered runtime assigns the same one).
    CreateDomain {
        id: DomainId,
        spec: crate::domain::DomainSpec,
    },
    /// An executed ingest — journaled even when the budget answered `Busy`,
    /// because refilling the token bucket mutates domain state.
    Ingest {
        domain: DomainId,
        jobs: Vec<JobSpec>,
    },
    Advance {
        domain: DomainId,
        steps: u64,
    },
    IngestAdvance {
        domain: DomainId,
        jobs: Vec<JobSpec>,
        steps: u64,
    },
    /// A fleet-wide advance, with the ids it actually advanced (resident
    /// domains only) so single-domain repair knows whether it participated.
    AdvanceAll {
        domains: Vec<DomainId>,
    },
    /// A clock tick (sim-clock daemons) and its maintenance sweep.
    Tick {
        micros: u64,
    },
    Hibernate {
        domain: DomainId,
    },
    Migrate {
        domain: DomainId,
        shard: u64,
    },
    Rebalance,
    /// An operator-initiated restore over the live runtime.
    Restore {
        snapshot: RuntimeSnapshot,
    },
}

/// What [`Journal::open`] found on disk.
pub struct Recovered {
    pub checkpoint: Option<RuntimeSnapshot>,
    /// Valid journal records past the checkpoint, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes cut from a torn journal tail (0 on a clean open).
    pub truncated_bytes: u64,
    /// Whether a stale pre-checkpoint journal was discarded whole (a crash
    /// landed between the checkpoint rename and the journal reset).
    pub discarded_stale_journal: bool,
}

/// Counters the daemon surfaces about its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Records durably appended (successful writes only).
    pub appends: u64,
    /// Appends that failed (injected or real I/O error): the op executed
    /// but was not journaled, so a crash may lose it.
    pub append_errors: u64,
    pub checkpoints: u64,
}

struct Appender {
    file: File,
    epoch: u64,
    records_since_checkpoint: u64,
}

/// An open operations journal. Appends are serialized by an internal lock;
/// the handle is shared freely across connection threads.
pub struct Journal {
    dir: PathBuf,
    checkpoint_every: u64,
    faults: Arc<dyn FaultInjector>,
    inner: Mutex<Appender>,
    checkpoint_due: AtomicBool,
    /// Append *attempts*, successful or not — this is the fault-schedule
    /// index, so it must tick once per call to keep injection deterministic.
    attempts: AtomicU64,
    /// Successful appends only (what [`JournalStats::appends`] reports).
    appended: AtomicU64,
    append_errors: AtomicU64,
    checkpoints: AtomicU64,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir` and reads back
    /// whatever a previous process left: the latest checkpoint, the valid
    /// journal suffix (torn tail truncated in place), or an error for real
    /// corruption — a bad checkpoint CRC or a header from a future version.
    pub fn open(
        dir: impl AsRef<Path>,
        checkpoint_every: u64,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<(Journal, Recovered), String> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| format!("create journal dir: {e}"))?;
        let journal_path = dir.join("journal.bin");

        let (checkpoint, ckpt_epoch) = match read_checkpoint_file(&dir.join("checkpoint.bin"))? {
            Some((snapshot, epoch)) => (Some(snapshot), epoch),
            None => (None, 0),
        };

        let mut truncated_bytes = 0u64;
        let mut discarded_stale_journal = false;
        let records = if journal_path.exists() {
            let bytes = fs::read(&journal_path).map_err(|e| format!("read journal: {e}"))?;
            let (epoch, records, valid_len) = parse_journal(&bytes)?;
            if epoch != ckpt_epoch {
                if epoch > ckpt_epoch {
                    return Err(format!(
                        "journal epoch {epoch} is ahead of checkpoint epoch {ckpt_epoch} \
                         (checkpoint file rolled back or deleted?)"
                    ));
                }
                // The checkpoint already covers these records; reset.
                discarded_stale_journal = true;
                replace_journal(&dir, ckpt_epoch)?;
                Vec::new()
            } else {
                if valid_len < bytes.len() {
                    truncated_bytes = (bytes.len() - valid_len) as u64;
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&journal_path)
                        .map_err(|e| format!("open journal for truncation: {e}"))?;
                    f.set_len(valid_len as u64)
                        .map_err(|e| format!("truncate torn journal tail: {e}"))?;
                }
                records
            }
        } else {
            replace_journal(&dir, ckpt_epoch)?;
            Vec::new()
        };

        let file = OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .map_err(|e| format!("open journal for append: {e}"))?;
        let journal = Journal {
            dir,
            checkpoint_every: checkpoint_every.max(1),
            faults,
            inner: Mutex::new(Appender {
                file,
                epoch: ckpt_epoch,
                records_since_checkpoint: records.len() as u64,
            }),
            checkpoint_due: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        };
        let recovered = Recovered { checkpoint, records, truncated_bytes, discarded_stale_journal };
        Ok((journal, recovered))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appends: self.appended.load(Ordering::SeqCst),
            append_errors: self.append_errors.load(Ordering::SeqCst),
            checkpoints: self.checkpoints.load(Ordering::SeqCst),
        }
    }

    /// Appends one record. Fails on injected or real I/O errors — the
    /// caller keeps serving either way (see [`Journal::append_logged`]).
    pub fn append(&self, record: &JournalRecord) -> Result<(), String> {
        let watch = tempo_obs::Stopwatch::start();
        let mut inner = self.inner.lock().expect("journal lock");
        let index = self.attempts.fetch_add(1, Ordering::SeqCst);
        if self.faults.journal_write_fails(index) {
            self.append_errors.fetch_add(1, Ordering::SeqCst);
            obs::append_errors().inc();
            obs::fault_injections("journal").inc();
            return Err(format!("injected journal write fault at append {index}"));
        }
        let mut body = BytesMut::new();
        codec::encode_binary(record, &mut body);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(body.as_slice()).to_le_bytes());
        frame.extend_from_slice(body.as_slice());
        if let Err(e) = inner.file.write_all(&frame) {
            self.append_errors.fetch_add(1, Ordering::SeqCst);
            obs::append_errors().inc();
            return Err(format!("journal append I/O error: {e}"));
        }
        self.appended.fetch_add(1, Ordering::SeqCst);
        obs::appends().inc();
        watch.observe_into(obs::append_micros);
        inner.records_since_checkpoint += 1;
        if inner.records_since_checkpoint >= self.checkpoint_every {
            self.checkpoint_due.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Append that degrades instead of failing: an error is logged and
    /// counted, and the server keeps serving (the op may be lost on crash —
    /// the crash-only durability contract, weakened for this one record).
    pub fn append_logged(&self, record: &JournalRecord) {
        if let Err(e) = self.append(record) {
            eprintln!("tempo-serve: {e} (op executed but not journaled)");
        }
    }

    /// Whether enough records accumulated that a connection thread should
    /// checkpoint. Cleared by [`Journal::write_checkpoint`]; reading it does
    /// not clear it (use [`Journal::take_checkpoint_due`] to claim the job).
    pub fn checkpoint_due(&self) -> bool {
        self.checkpoint_due.load(Ordering::SeqCst)
    }

    /// Claims a due checkpoint: returns true to exactly one caller.
    pub fn take_checkpoint_due(&self) -> bool {
        self.checkpoint_due.swap(false, Ordering::SeqCst)
    }

    /// Re-arms the due flag — used when a claimed checkpoint had to be
    /// deferred (e.g. a degraded domain whose only recovery source is the
    /// journal the checkpoint would truncate).
    pub fn mark_checkpoint_due(&self) {
        self.checkpoint_due.store(true, Ordering::SeqCst);
    }

    /// Writes `snapshot` as the new checkpoint and resets the journal, both
    /// atomically (tmp + rename). Appends wait while this runs, so the
    /// checkpoint/journal cut is a consistent point in the op stream.
    pub fn write_checkpoint(&self, snapshot: &RuntimeSnapshot) -> Result<(), String> {
        self.write_checkpoint_with(snapshot, || snapshot.clock_now)
    }

    /// [`Journal::write_checkpoint`] with a clock re-stamp taken *under the
    /// append lock*. A `Tick` runs on a connection thread, not a shard, so
    /// quiescing the shards does not stop it: one can advance the clock and
    /// append after the snapshot captured `clock_now` but before the journal
    /// is truncated, and its record would vanish with the old journal while
    /// the checkpoint still carried the older reading. Re-reading the clock
    /// here closes that window — an advance strictly precedes its record's
    /// append, so any tick record this truncation destroys is covered by the
    /// stamped reading. A tick record that instead lands in the fresh
    /// journal replays as an idempotent `SimClock::set` (monotonic max), so
    /// over-stamping is harmless.
    pub fn write_checkpoint_with(
        &self,
        snapshot: &RuntimeSnapshot,
        stamp: impl FnOnce() -> Time,
    ) -> Result<(), String> {
        let watch = tempo_obs::Stopwatch::start();
        let mut inner = self.inner.lock().expect("journal lock");
        let epoch = inner.epoch + 1;
        let stamped = RuntimeSnapshot {
            clock_now: stamp().max(snapshot.clock_now),
            domains: snapshot.domains.clone(),
        };
        let mut body = BytesMut::new();
        codec::encode_binary(&stamped, &mut body);
        let mut bytes = Vec::with_capacity(JOURNAL_HEADER + 4 + body.len());
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        bytes.push(JOURNAL_VERSION);
        bytes.extend_from_slice(&epoch.to_le_bytes());
        bytes.extend_from_slice(&crc32(body.as_slice()).to_le_bytes());
        bytes.extend_from_slice(body.as_slice());
        let tmp = self.dir.join("checkpoint.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, self.dir.join("checkpoint.bin"))
        };
        write().map_err(|e| format!("write checkpoint: {e}"))?;
        inner.file = replace_journal(&self.dir, epoch)?;
        inner.epoch = epoch;
        inner.records_since_checkpoint = 0;
        self.checkpoint_due.store(false, Ordering::SeqCst);
        self.checkpoints.fetch_add(1, Ordering::SeqCst);
        obs::checkpoints().inc();
        watch.observe_into(obs::checkpoint_micros);
        Ok(())
    }

    /// Re-reads the current checkpoint + journal suffix without disturbing
    /// either (appends are paused for a consistent cut). The repair path
    /// uses this to rebuild a degraded domain in place.
    pub fn read_current(&self) -> Result<(Option<RuntimeSnapshot>, Vec<JournalRecord>), String> {
        let _inner = self.inner.lock().expect("journal lock");
        let checkpoint = read_checkpoint_file(&self.dir.join("checkpoint.bin"))?.map(|(s, _)| s);
        let bytes =
            fs::read(self.dir.join("journal.bin")).map_err(|e| format!("read journal: {e}"))?;
        let (_, records, _) = parse_journal(&bytes)?;
        Ok((checkpoint, records))
    }
}

/// Atomically replaces `journal.bin` with a fresh header at `epoch`;
/// returns an append handle to the new file.
fn replace_journal(dir: &Path, epoch: u64) -> Result<File, String> {
    let tmp = dir.join("journal.tmp");
    let write = || -> std::io::Result<File> {
        let mut f = File::create(&tmp)?;
        f.write_all(&JOURNAL_MAGIC)?;
        f.write_all(&[JOURNAL_VERSION])?;
        f.write_all(&epoch.to_le_bytes())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join("journal.bin"))?;
        OpenOptions::new().append(true).open(dir.join("journal.bin"))
    };
    write().map_err(|e| format!("reset journal: {e}"))
}

/// Parses a journal image: header, then records until the first torn or
/// corrupt one. Returns `(epoch, valid records, valid byte length)`.
/// Header problems (bad magic, future version) are hard errors; anything
/// wrong past the header is a torn tail by policy.
fn parse_journal(bytes: &[u8]) -> Result<(u64, Vec<JournalRecord>, usize), String> {
    if bytes.len() < JOURNAL_HEADER {
        return Err(format!("journal header truncated ({} bytes)", bytes.len()));
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err("journal magic mismatch (not a tempo-serve journal)".into());
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(format!(
            "journal version {} unsupported (this build speaks version {JOURNAL_VERSION})",
            bytes[4]
        ));
    }
    let epoch = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut at = JOURNAL_HEADER;
    while bytes.len() - at >= 8 {
        let body_len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if body_len > MAX_RECORD_LEN || bytes.len() - at - 8 < body_len {
            break; // torn or corrupt length
        }
        let body = &bytes[at + 8..at + 8 + body_len];
        if crc32(body) != crc {
            break; // torn or corrupt body
        }
        match codec::decode_binary::<JournalRecord>(body) {
            Ok(record) => records.push(record),
            Err(_) => break, // CRC-valid but undecodable: treat as the tail
        }
        at += 8 + body_len;
    }
    Ok((epoch, records, at))
}

/// Reads and validates `checkpoint.bin`. `Ok(None)` when absent; hard
/// errors for truncation, bad magic/CRC, or a future version — the journal
/// was truncated when this file was written, so there is no safe fallback.
fn read_checkpoint_file(path: &Path) -> Result<Option<(RuntimeSnapshot, u64)>, String> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read checkpoint: {e}")),
    };
    if bytes.len() < JOURNAL_HEADER + 4 {
        return Err(format!("checkpoint truncated ({} bytes)", bytes.len()));
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err("checkpoint magic mismatch (not a tempo-serve checkpoint)".into());
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(format!(
            "checkpoint version {} unsupported (this build speaks version {JOURNAL_VERSION})",
            bytes[4]
        ));
    }
    let epoch = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes"));
    let body = &bytes[17..];
    if crc32(body) != crc {
        return Err("checkpoint CRC mismatch (corrupt checkpoint, no safe fallback)".into());
    }
    let snapshot = codec::decode_binary::<RuntimeSnapshot>(body)
        .map_err(|e| format!("checkpoint decode: {e}"))?;
    Ok(Some((snapshot, epoch)))
}

/// What a recovery pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    pub checkpoint_domains: u64,
    pub replayed: u64,
    pub truncated_bytes: u64,
    pub discarded_stale_journal: bool,
}

/// Rebuilds runtime state from what [`Journal::open`] recovered: restore
/// the checkpoint (setting the sim clock to its reading), then replay every
/// journal record with its recorded clock reading.
pub fn replay(
    runtime: &ControllerRuntime,
    sim: Option<&SimClock>,
    recovered: Recovered,
) -> Result<RecoveryReport, String> {
    let watch = tempo_obs::Stopwatch::start();
    let Recovered { checkpoint, records, truncated_bytes, discarded_stale_journal } = recovered;
    let mut checkpoint_domains = 0;
    if let Some(snapshot) = checkpoint {
        checkpoint_domains = snapshot.domains.len() as u64;
        if let Some(sim) = sim {
            sim.set(snapshot.clock_now);
        }
        runtime.restore(snapshot).map_err(|e| format!("checkpoint restore: {e}"))?;
    }
    let replayed = records.len() as u64;
    for (i, record) in records.into_iter().enumerate() {
        apply_record(runtime, sim, record)
            .map_err(|e| format!("journal replay failed at record {i}: {e}"))?;
    }
    obs::replayed().add(replayed);
    watch.observe_into(obs::recovery_micros);
    Ok(RecoveryReport { checkpoint_domains, replayed, truncated_bytes, discarded_stale_journal })
}

fn apply_record(
    runtime: &ControllerRuntime,
    sim: Option<&SimClock>,
    record: JournalRecord,
) -> Result<(), String> {
    let now = record.now;
    match record.op {
        JournalOp::CreateDomain { id, spec } => {
            // A create that executed just before the checkpoint cut but
            // appended just after it is in both the checkpoint and the
            // journal; re-creating would reset the domain. Skip it — restore
            // already advanced the id counter past every checkpointed id.
            if runtime.contains_domain(id) {
                return Ok(());
            }
            let created = runtime.create_domain(spec).map_err(|e| e.to_string())?;
            if created != id {
                return Err(format!(
                    "replayed create assigned id {created}, journal recorded {id}"
                ));
            }
        }
        JournalOp::Ingest { domain, jobs } => {
            runtime
                .on_domain(domain, move |d| {
                    d.ingest(now, jobs);
                })
                .map_err(|e| e.to_string())?;
        }
        JournalOp::Advance { domain, steps } => {
            runtime
                .on_domain(domain, move |d| {
                    for _ in 0..steps {
                        d.advance(now);
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        JournalOp::IngestAdvance { domain, jobs, steps } => {
            runtime
                .on_domain(domain, move |d| {
                    d.ingest(now, jobs);
                    for _ in 0..steps {
                        d.advance(now);
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        JournalOp::AdvanceAll { domains } => {
            // Advance exactly the recorded ids, not `advance_all_at`: after a
            // checkpoint restore every domain is resident, while the original
            // sweep skipped hibernated ones — and the record may cover only
            // one shard's share of a sweep (the server journals the sweep
            // per-shard, in each shard's execution order).
            for id in domains {
                runtime
                    .on_domain(id, move |d| {
                        d.advance(now);
                    })
                    .map_err(|e| e.to_string())?;
            }
        }
        JournalOp::Tick { micros: _ } => {
            // `record.now` is the post-advance reading, and `SimClock::set`
            // is a monotonic max — so replay is idempotent whether the tick's
            // effect was already captured by a checkpoint or not, and
            // replaying ticks in journal order reproduces the final clock
            // even when concurrent ticks appended out of value order.
            if let Some(sim) = sim {
                sim.set(now);
            }
            runtime.maintain();
        }
        // Placement ops can legitimately no-op on replay (e.g. an already-
        // hibernated domain); domain-internal state is unaffected either way.
        JournalOp::Hibernate { domain } => {
            let _ = runtime.hibernate(domain);
        }
        JournalOp::Migrate { domain, shard } => {
            let _ = runtime.migrate(domain, shard as usize);
        }
        JournalOp::Rebalance => {
            runtime.rebalance();
        }
        JournalOp::Restore { snapshot } => {
            runtime.restore(snapshot).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Journal upkeep run from connection threads after serving requests:
/// repairs any degraded domains, then writes a due checkpoint. Never call
/// from a shard worker — checkpointing parks every shard and would
/// self-deadlock.
///
/// Order matters: a checkpoint omits degraded domains *and* truncates the
/// journal, which together destroy both of a degraded domain's recovery
/// sources. Repair therefore runs first, and a claimed checkpoint is
/// deferred (the due flag re-armed) if any domain is still degraded at the
/// cut. The degraded check happens inside the quiesced window, where no
/// shard job can run and newly panic — so "empty then" means "empty for the
/// whole checkpoint".
pub fn run_maintenance(journal: &Journal, runtime: &ControllerRuntime) {
    let degraded = runtime.degraded_domains();
    if !degraded.is_empty() {
        match journal.read_current() {
            Ok((checkpoint, records)) => {
                for id in degraded {
                    match repair_domain(runtime, id, checkpoint.as_ref(), &records) {
                        Ok(true) => eprintln!("tempo-serve: domain {id} repaired from the journal"),
                        Ok(false) => {
                            eprintln!(
                                "tempo-serve: domain {id} has no recovery source in the journal"
                            )
                        }
                        Err(e) => eprintln!("tempo-serve: domain {id} repair failed: {e}"),
                    }
                }
            }
            Err(e) => eprintln!("tempo-serve: journal read for repair failed: {e}"),
        }
    }
    if journal.take_checkpoint_due() {
        // Stop-the-world capture: the snapshot and the journal cut happen in
        // one quiescent window, so every journaled op lands in exactly one
        // of {checkpoint, fresh journal} — a free-running snapshot would let
        // an op on an already-captured shard append to the journal this cut
        // truncates, losing it from both.
        let (_, result) = runtime.quiesced_snapshot(|snapshot| {
            if !runtime.degraded_domains().is_empty() {
                journal.mark_checkpoint_due();
                eprintln!(
                    "tempo-serve: checkpoint deferred — degraded domain awaits journal repair"
                );
                return Ok(());
            }
            journal.write_checkpoint_with(snapshot, || runtime.clock().now())
        });
        if let Err(e) = result {
            eprintln!("tempo-serve: checkpoint failed: {e}");
        }
    }
}

/// Rebuilds one degraded domain from the checkpoint + journal and installs
/// it back into the runtime (clearing its degraded mark). Returns
/// `Ok(false)` when neither the checkpoint nor the journal knows the id.
///
/// Only the domain's own records matter: placement ops and other domains'
/// records never change its internal state, so the rebuild applies its
/// creates/restores/ingests/advances (with their recorded clock readings)
/// and skips everything else.
pub fn repair_domain(
    runtime: &ControllerRuntime,
    id: DomainId,
    checkpoint: Option<&RuntimeSnapshot>,
    records: &[JournalRecord],
) -> Result<bool, String> {
    let mut domain: Option<Domain> =
        match checkpoint.and_then(|s| s.domains.iter().find(|d| d.id == id)) {
            Some(ds) => Some(Domain::restore(ds.clone())?),
            None => None,
        };
    for record in records {
        let now = record.now;
        match &record.op {
            JournalOp::CreateDomain { id: cid, spec } if *cid == id => {
                domain = Some(Domain::new(spec.clone())?);
            }
            JournalOp::Restore { snapshot } => {
                if let Some(ds) = snapshot.domains.iter().find(|d| d.id == id) {
                    domain = Some(Domain::restore(ds.clone())?);
                }
            }
            JournalOp::Ingest { domain: did, jobs } if *did == id => {
                if let Some(d) = domain.as_mut() {
                    d.ingest(now, jobs.clone());
                }
            }
            JournalOp::Advance { domain: did, steps } if *did == id => {
                if let Some(d) = domain.as_mut() {
                    for _ in 0..*steps {
                        d.advance(now);
                    }
                }
            }
            JournalOp::IngestAdvance { domain: did, jobs, steps } if *did == id => {
                if let Some(d) = domain.as_mut() {
                    d.ingest(now, jobs.clone());
                    for _ in 0..*steps {
                        d.advance(now);
                    }
                }
            }
            JournalOp::AdvanceAll { domains } if domains.contains(&id) => {
                if let Some(d) = domain.as_mut() {
                    d.advance(now);
                }
            }
            _ => {}
        }
    }
    let Some(domain) = domain else { return Ok(false) };
    runtime
        .restore(RuntimeSnapshot {
            clock_now: runtime.clock().now(),
            domains: vec![domain.snapshot(id)],
        })
        .map_err(|e| e.to_string())?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{no_faults, FaultPlan};
    use std::sync::atomic::AtomicU32;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tempo-wal-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tick(now: Time, micros: u64) -> JournalRecord {
        JournalRecord { now, op: JournalOp::Tick { micros } }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        let recs: Vec<_> = (0..5).map(|i| tick(i * 10, 10)).collect();
        {
            let (journal, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
            assert!(recovered.checkpoint.is_none());
            assert!(recovered.records.is_empty());
            for r in &recs {
                journal.append(r).unwrap();
            }
            assert_eq!(journal.stats().appends, 5);
        }
        let (journal, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert_eq!(recovered.records, recs);
        assert_eq!(recovered.truncated_bytes, 0);
        // Appends continue past the recovered suffix.
        journal.append(&tick(99, 1)).unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert_eq!(recovered.records.len(), 6);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = temp_dir("torn");
        {
            let (journal, _) = Journal::open(&dir, 1024, no_faults()).unwrap();
            for i in 0..3 {
                journal.append(&tick(i, 1)).unwrap();
            }
        }
        let path = dir.join("journal.bin");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the second record's body: it and everything
        // after it become the torn tail.
        let record_len = (bytes.len() - JOURNAL_HEADER) / 3;
        bytes[JOURNAL_HEADER + record_len + 9] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (journal, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert_eq!(recovered.records, vec![tick(0, 1)]);
        assert_eq!(recovered.truncated_bytes, 2 * record_len as u64);
        // The file was truncated in place, so a fresh append lands cleanly.
        journal.append(&tick(7, 7)).unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert_eq!(recovered.records, vec![tick(0, 1), tick(7, 7)]);

        // Mid-record kill: any byte-level prefix recovers a record prefix.
        let bytes = fs::read(&path).unwrap();
        for cut in JOURNAL_HEADER..bytes.len() {
            let dir2 = temp_dir("cut");
            fs::create_dir_all(&dir2).unwrap();
            fs::write(dir2.join("journal.bin"), &bytes[..cut]).unwrap();
            let (_, r) = Journal::open(&dir2, 1024, no_faults()).unwrap();
            assert!(r.records.len() <= 2, "cut {cut} produced {} records", r.records.len());
            let _ = fs::remove_dir_all(&dir2);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_truncate_the_journal_and_bump_the_epoch() {
        let dir = temp_dir("ckpt");
        let snapshot = RuntimeSnapshot { clock_now: 1234, domains: Vec::new() };
        {
            let (journal, _) = Journal::open(&dir, 1024, no_faults()).unwrap();
            journal.append(&tick(1, 1)).unwrap();
            journal.append(&tick(2, 1)).unwrap();
            journal.write_checkpoint(&snapshot).unwrap();
            assert_eq!(journal.stats().checkpoints, 1);
            journal.append(&tick(3, 1)).unwrap();
        }
        let (_, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert_eq!(recovered.checkpoint, Some(snapshot));
        assert_eq!(recovered.records, vec![tick(3, 1)], "pre-checkpoint records truncated");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_due_fires_at_the_cadence_and_is_claimed_once() {
        let dir = temp_dir("due");
        let (journal, _) = Journal::open(&dir, 3, no_faults()).unwrap();
        journal.append(&tick(1, 1)).unwrap();
        journal.append(&tick(2, 1)).unwrap();
        assert!(!journal.checkpoint_due());
        journal.append(&tick(3, 1)).unwrap();
        assert!(journal.checkpoint_due());
        assert!(journal.take_checkpoint_due());
        assert!(!journal.take_checkpoint_due(), "claimed exactly once");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_from_a_checkpoint_crash_window_is_discarded() {
        let dir = temp_dir("stale");
        let snapshot = RuntimeSnapshot { clock_now: 5, domains: Vec::new() };
        let stale = {
            let (journal, _) = Journal::open(&dir, 1024, no_faults()).unwrap();
            journal.append(&tick(1, 1)).unwrap();
            let stale = fs::read(dir.join("journal.bin")).unwrap();
            journal.write_checkpoint(&snapshot).unwrap();
            stale
        };
        // Simulate a crash between the checkpoint rename and the journal
        // reset: the old epoch-0 journal is still in place.
        fs::write(dir.join("journal.bin"), &stale).unwrap();
        let (_, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert!(recovered.discarded_stale_journal);
        assert!(recovered.records.is_empty(), "stale records are covered by the checkpoint");
        assert_eq!(recovered.checkpoint, Some(snapshot));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forward_versions_are_rejected_with_a_clear_error() {
        let dir = temp_dir("version");
        let snapshot = RuntimeSnapshot { clock_now: 0, domains: Vec::new() };
        {
            let (journal, _) = Journal::open(&dir, 1024, no_faults()).unwrap();
            journal.append(&tick(1, 1)).unwrap();
            journal.write_checkpoint(&snapshot).unwrap();
        }
        for file in ["journal.bin", "checkpoint.bin"] {
            let path = dir.join(file);
            let mut bytes = fs::read(&path).unwrap();
            let saved = bytes[4];
            bytes[4] = JOURNAL_VERSION + 1;
            fs::write(&path, &bytes).unwrap();
            let err = Journal::open(&dir, 1024, no_faults()).map(drop).unwrap_err();
            assert!(err.contains("version"), "{file}: {err}");
            bytes[4] = saved;
            fs::write(&path, &bytes).unwrap();
        }
        // Garbage magic is corruption, not a version problem.
        fs::write(dir.join("journal.bin"), b"GARBAGEGARBAGEGARBAGE").unwrap();
        assert!(Journal::open(&dir, 1024, no_faults()).map(drop).unwrap_err().contains("magic"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_a_hard_error() {
        let dir = temp_dir("badckpt");
        {
            let (journal, _) = Journal::open(&dir, 1024, no_faults()).unwrap();
            journal
                .write_checkpoint(&RuntimeSnapshot { clock_now: 9, domains: Vec::new() })
                .unwrap();
        }
        let path = dir.join("checkpoint.bin");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(Journal::open(&dir, 1024, no_faults()).map(drop).unwrap_err().contains("CRC"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_journal_faults_fail_appends_deterministically() {
        let dir = temp_dir("fault");
        let plan = FaultPlan::new(3).with_journal_errors(1.0);
        let (journal, _) = Journal::open(&dir, 1024, Arc::new(plan)).unwrap();
        assert!(journal.append(&tick(1, 1)).unwrap_err().contains("injected"));
        assert_eq!(journal.stats().append_errors, 1);
        assert_eq!(journal.stats().appends, 0, "a failed append is not an append");
        drop(journal);
        let (_, recovered) = Journal::open(&dir, 1024, no_faults()).unwrap();
        assert!(recovered.records.is_empty(), "failed appends wrote nothing");
        let _ = fs::remove_dir_all(&dir);
    }
}
