//! One tenancy domain: a [`Tempo`] controller plus its live workload window.
//!
//! A domain is the unit of isolation in the serving runtime: it owns a
//! controller, a [`WindowLog`] of recently ingested job submissions, and the
//! bookkeeping that turns "advance" calls into control-loop iterations. All
//! of its behaviour is a deterministic function of (spec, ingested jobs,
//! clock readings at advance time) — the property the serve/direct parity
//! suite pins and snapshot/restore relies on.

use serde::{Deserialize, Serialize};
use tempo_core::control::{LoopConfig, RevertPolicy, Tempo, TempoSnapshot};
use tempo_core::pald::PaldConfig;
use tempo_core::whatif::{WhatIfModel, WorkloadSource};
use tempo_core::ConfigSpace;
use tempo_qs::SloSet;
use tempo_sim::{observe, ClusterSpec, NoiseModel, RmConfig, Schedule};
use tempo_workload::time::Time;
use tempo_workload::window::{WindowLog, WindowLogState};
use tempo_workload::{JobSpec, Trace};

/// Declarative, wire-serializable description of a tenancy domain.
///
/// The What-if Model always replays the domain's current workload window
/// deterministically (the paper's default mode); `observation_noise` only
/// affects the stand-in cluster runs the controller observes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Display name (reports, metrics).
    pub name: String,
    pub cluster: ClusterSpec,
    /// The QS vector the controller optimizes. Tenant ids inside refer to
    /// positions in `initial.tenants`.
    pub slos: SloSet,
    /// Starting RM configuration; its tenant count fixes the configuration
    /// space and its policy selects the scheduler backend.
    pub initial: RmConfig,
    /// Length of the re-tuning window: each advance tunes on the jobs
    /// ingested during the most recent `window_len` of clock time.
    pub window_len: Time,
    /// Master seed: probe placement and observation noise derive from it.
    pub seed: u64,
    /// PALD probes per iteration.
    pub probes: usize,
    /// PALD trust-region radius.
    pub trust_radius: f64,
    pub revert: RevertPolicy,
    /// Noise injected into the stand-in cluster runs the controller
    /// observes (not into What-if predictions).
    pub observation_noise: NoiseModel,
    /// Clear the What-if memo cache after this many window rolls
    /// ([`LoopConfig::clear_cache_windows`]).
    pub clear_cache_windows: Option<u32>,
    /// LRU watermark on memo-cache entries
    /// ([`WhatIfModel::set_cache_capacity`]).
    pub cache_capacity: Option<usize>,
    /// Per-domain ingest budget; `None` (the default) accepts everything.
    /// Old wire specs without the field deserialize as `None`.
    pub ingest_budget: Option<IngestBudget>,
}

/// What to do with a burst that exceeds the domain's ingest budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Drop the excess permanently (lossy, the client keeps streaming):
    /// the burst's accepted prefix is ingested, the rest is shed.
    Shed,
    /// Reject the whole burst with [`IngestOutcome::Busy`] so the client
    /// can retry it after `retry_after_micros` (lossless with backoff).
    Delay,
}

/// A token-bucket ingest budget: at most `jobs_per_window` job submissions
/// per [`DomainSpec::window_len`] of clock time, with burst capacity equal
/// to one window's worth. Refills are a pure function of clock readings, so
/// budgeted domains stay deterministic under a [`crate::SimClock`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestBudget {
    pub jobs_per_window: u64,
    pub policy: BackpressurePolicy,
}

impl IngestBudget {
    pub fn shed(jobs_per_window: u64) -> Self {
        Self { jobs_per_window, policy: BackpressurePolicy::Shed }
    }

    pub fn delay(jobs_per_window: u64) -> Self {
        Self { jobs_per_window, policy: BackpressurePolicy::Delay }
    }
}

/// What one ingest call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestOutcome {
    /// `accepted` jobs entered the workload window; under
    /// [`BackpressurePolicy::Shed`] this may be fewer than were offered
    /// (the rest were dropped and counted in `shed_count`).
    Accepted { accepted: u64 },
    /// The burst was rejected whole ([`BackpressurePolicy::Delay`]); retry
    /// after roughly `retry_after_micros` of clock time.
    Busy { retry_after_micros: u64 },
}

impl IngestOutcome {
    /// Jobs that actually entered the window.
    pub fn accepted(&self) -> u64 {
        match self {
            IngestOutcome::Accepted { accepted } => *accepted,
            IngestOutcome::Busy { .. } => 0,
        }
    }
}

impl DomainSpec {
    /// A spec with the control-loop defaults: 5 probes, 0.15 trust radius,
    /// dominated-revert, no observation noise, cache cleared every 32
    /// windows and bounded to 4096 entries.
    pub fn new(
        name: impl Into<String>,
        cluster: ClusterSpec,
        slos: SloSet,
        initial: RmConfig,
        window_len: Time,
    ) -> Self {
        let pald = PaldConfig::default();
        Self {
            name: name.into(),
            cluster,
            slos,
            initial,
            window_len,
            seed: 0,
            probes: pald.probes,
            trust_radius: pald.trust_radius,
            revert: RevertPolicy::Dominated,
            observation_noise: NoiseModel::NONE,
            clear_cache_windows: Some(32),
            cache_capacity: Some(4096),
            ingest_budget: None,
        }
    }

    pub fn with_ingest_budget(mut self, budget: IngestBudget) -> Self {
        self.ingest_budget = Some(budget);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }

    pub fn with_trust_radius(mut self, radius: f64) -> Self {
        self.trust_radius = radius;
        self
    }

    pub fn with_observation_noise(mut self, noise: NoiseModel) -> Self {
        self.observation_noise = noise;
        self
    }

    pub fn with_revert(mut self, revert: RevertPolicy) -> Self {
        self.revert = revert;
        self
    }

    /// The QS evaluation window every rolled workload window is scored
    /// over: `[0, window_len + window_len/4)` on the window's own time axis
    /// (the slack lets straggler jobs finish and count).
    pub fn qs_window(&self) -> (Time, Time) {
        (0, self.window_len + self.window_len / 4)
    }

    /// The control-loop configuration this spec expands to.
    pub fn loop_config(&self) -> LoopConfig {
        LoopConfig {
            pald: PaldConfig {
                probes: self.probes,
                trust_radius: self.trust_radius,
                seed: self.seed,
                ..PaldConfig::default()
            },
            revert: self.revert,
            clear_cache_windows: self.clear_cache_windows,
            ..LoopConfig::default()
        }
    }

    /// Structural validation, surfaced before a domain is created.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("domain name is empty".into());
        }
        if self.window_len == 0 {
            return Err("window_len must be positive".into());
        }
        if self.slos.is_empty() {
            return Err("domain has no SLOs".into());
        }
        if self.probes == 0 {
            return Err("need at least one probe".into());
        }
        if !(self.trust_radius > 0.0 && self.trust_radius <= 1.0) {
            return Err("trust radius outside (0, 1]".into());
        }
        if let Some(budget) = &self.ingest_budget {
            if budget.jobs_per_window == 0 {
                return Err("ingest budget must allow at least one job per window".into());
            }
        }
        self.initial.validate().map_err(|e| format!("invalid initial RM configuration: {e}"))?;
        for slo in &self.slos.slos {
            if let Some(t) = slo.tenant {
                if t as usize >= self.initial.tenants.len() {
                    return Err(format!("SLO '{}' names tenant {t} beyond the config", slo.name));
                }
            }
        }
        Ok(())
    }
}

/// What one advance call did (the wire-visible decision record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Advance calls made on this domain so far (this one included).
    pub step: u64,
    /// The absolute workload window `[start, end)` this advance tuned on.
    pub window: (Time, Time),
    /// `true` when the window held no jobs: no iteration was run and the
    /// configuration is unchanged.
    pub skipped: bool,
    /// Controller iteration index (meaningless when skipped).
    pub iteration: u64,
    /// Observed (priority-weighted) QS vector (empty when skipped).
    pub observed_qs: Vec<f64>,
    /// Whether the revert guard rolled back the previous change.
    pub reverted: bool,
    /// The configuration the cluster should run from now on.
    pub config: RmConfig,
}

/// Observation seed for a domain step: decorrelates the noise stream across
/// steps (and, via the spec seed, across domains) while staying replayable.
pub fn observation_seed(seed: u64, step: u64) -> u64 {
    seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What-if cache/simulation provenance of the most recent non-skipped
/// advance — what the decision trace reports. Transient diagnostics like
/// [`tempo_core::whatif::WhatIfModel`]'s sim counter: never snapshotted, so
/// restore resets it and snapshot bytes stay identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceProvenance {
    /// Memo-cache hits during the iteration.
    pub cache_hits: u64,
    /// Memo-cache misses (fresh What-if evaluations) during the iteration.
    pub cache_misses: u64,
    /// Simulations the iteration ran.
    pub sims: u64,
}

/// A live tenancy domain.
pub struct Domain {
    spec: DomainSpec,
    tempo: Tempo,
    log: WindowLog,
    /// Advance calls so far.
    step: u64,
    /// Iterations actually run (advances minus skips).
    decisions: u64,
    skipped: u64,
    /// End of the most recent window (windows never regress even if the
    /// clock stalls).
    last_end: Time,
    /// The window + shifted segment the What-if Model currently replays.
    installed: Option<((Time, Time), Trace)>,
    /// Ingest-budget tokens currently available (meaningless without a
    /// budget). Starts full: a fresh domain can absorb one window's burst.
    tokens: f64,
    /// Clock reading of the last token refill.
    last_refill: Time,
    /// Jobs dropped by the [`BackpressurePolicy::Shed`] policy.
    shed: u64,
    /// Jobs turned away with a retry by [`BackpressurePolicy::Delay`].
    delayed: u64,
    /// Provenance of the most recent non-skipped advance (transient).
    last_provenance: AdvanceProvenance,
}

impl Domain {
    /// Builds the controller wiring for `spec`: a deterministic What-if
    /// Model replaying the (initially empty) window, the backend-native
    /// configuration space, and a Tempo controller seated on the initial
    /// configuration.
    pub fn new(spec: DomainSpec) -> Result<Self, String> {
        spec.validate()?;
        // A standalone domain evaluates serially; domains hosted by a
        // `ControllerRuntime` get [`Domain::install_pool`]ed a clone of the
        // runtime-wide worker pool instead, so N domains × M cores share
        // one pool's threads rather than multiplying into cores² threads.
        // (Trajectories are thread-count invariant either way.)
        let whatif = WhatIfModel::new(
            spec.cluster.clone(),
            spec.slos.clone(),
            WorkloadSource::replay(Trace::default()),
            spec.qs_window(),
        )
        .with_threads(1);
        whatif.set_cache_capacity(spec.cache_capacity);
        let space = ConfigSpace::new(spec.initial.tenants.len(), &spec.cluster)
            .with_policy(spec.initial.policy);
        let tempo = Tempo::new(space, whatif, spec.loop_config(), &spec.initial);
        let tokens = spec.ingest_budget.map_or(0.0, |b| b.jobs_per_window as f64);
        Ok(Self {
            spec,
            tempo,
            log: WindowLog::new(),
            step: 0,
            decisions: 0,
            skipped: 0,
            last_end: 0,
            installed: None,
            tokens,
            last_refill: 0,
            shed: 0,
            delayed: 0,
            last_provenance: AdvanceProvenance::default(),
        })
    }

    pub fn spec(&self) -> &DomainSpec {
        &self.spec
    }

    /// Attaches a shared worker pool to this domain's What-if Model and
    /// lifts the standalone serial default. The runtime installs a clone of
    /// its fleet-wide pool on every domain that becomes resident, so
    /// concurrent domains share one bounded set of evaluation threads
    /// instead of each spawning their own.
    pub fn install_pool(&mut self, pool: tempo_core::WorkerPool) {
        self.tempo.whatif.set_threads(None);
        self.tempo.whatif.set_pool(pool);
    }

    /// The controller (read-only: diagnostics and the parity suite).
    pub fn tempo(&self) -> &Tempo {
        &self.tempo
    }

    /// The configuration the domain's cluster should currently run.
    pub fn current_config(&self) -> RmConfig {
        self.tempo.current_config()
    }

    /// Ingests a batch of job submissions at clock reading `now`, enforcing
    /// the spec's ingest budget (if any). Ids are re-assigned from the
    /// domain's dense counter.
    ///
    /// This is the shard-worker half of the backpressure loop: the budget is
    /// charged on the thread that owns the domain, so no amount of client
    /// concurrency can over-admit a tenant.
    pub fn ingest(&mut self, now: Time, jobs: Vec<JobSpec>) -> IngestOutcome {
        let Some(budget) = self.spec.ingest_budget else {
            return IngestOutcome::Accepted { accepted: self.log.extend(jobs) };
        };
        let capacity = budget.jobs_per_window as f64;
        let rate = capacity / self.spec.window_len as f64; // tokens per µs
        let dt = now.saturating_sub(self.last_refill);
        self.last_refill = self.last_refill.max(now);
        self.tokens = (self.tokens + dt as f64 * rate).min(capacity);

        // A burst wider than the whole budget is charged one full window's
        // worth, so oversized-but-rare bursts make progress instead of
        // livelocking behind a bucket that can never hold them.
        let offered = jobs.len() as u64;
        let need = (offered as f64).min(capacity);
        if need <= self.tokens {
            self.tokens -= need;
            return IngestOutcome::Accepted { accepted: self.log.extend(jobs) };
        }
        match budget.policy {
            BackpressurePolicy::Shed => {
                // Admit the prefix the remaining tokens cover; drop the rest.
                let admit = (self.tokens.floor() as u64).min(offered);
                self.tokens -= admit as f64;
                self.shed += offered - admit;
                tempo_obs::counter!("tempo_ingest_shed_total", "Jobs dropped past ingest budgets")
                    .add(offered - admit);
                let mut jobs = jobs;
                jobs.truncate(admit as usize);
                IngestOutcome::Accepted { accepted: self.log.extend(jobs) }
            }
            BackpressurePolicy::Delay => {
                self.delayed += offered;
                tempo_obs::counter!(
                    "tempo_ingest_delayed_total",
                    "Jobs turned away with a retry hint by delay budgets"
                )
                .add(offered);
                let deficit = need - self.tokens;
                IngestOutcome::Busy { retry_after_micros: (deficit / rate).ceil() as u64 }
            }
        }
    }

    /// Jobs dropped past the budget under the shed policy.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Jobs turned away with a retry hint under the delay policy.
    pub fn delayed_count(&self) -> u64 {
        self.delayed
    }

    /// Fraction of the ingest budget currently consumed (0 = idle bucket,
    /// 1 = exhausted); 0 for unbudgeted domains.
    pub fn ingest_budget_occupancy(&self) -> f64 {
        match self.spec.ingest_budget {
            Some(b) => 1.0 - self.tokens / b.jobs_per_window as f64,
            None => 0.0,
        }
    }

    /// Jobs accepted over the domain's lifetime.
    pub fn ingested(&self) -> u64 {
        self.log.accepted()
    }

    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    pub fn steps(&self) -> u64 {
        self.step
    }

    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Memo-cache occupancy (computed entries).
    pub fn cache_len(&self) -> usize {
        self.tempo.whatif.cache_len()
    }

    /// Simulations the domain's What-if Model has run.
    pub fn sim_count(&self) -> u64 {
        self.tempo.whatif.sim_count()
    }

    /// Lifetime memo-cache `(hits, misses, evictions)` of the domain's
    /// What-if Model. Diagnostics only: resets on restore, like `sim_count`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.tempo.whatif.cache_stats()
    }

    /// Cache/sim provenance of the most recent non-skipped advance.
    pub fn last_provenance(&self) -> AdvanceProvenance {
        self.last_provenance
    }

    /// Deterministic count-based estimate of the domain's resident heap
    /// footprint, in bytes — the fleet's memory-accounting currency. This
    /// is intentionally a model, not an allocator measurement: it has to be
    /// identical across platforms and across a hibernate/rehydrate cycle so
    /// watermark behavior is reproducible and testable. Weights approximate
    /// the real per-element costs (a logged job, an installed task, a memo
    /// cache entry, a PALD history row).
    pub fn estimated_bytes(&self) -> u64 {
        const BASE: u64 = 4096;
        const PER_LOGGED_JOB: u64 = 96;
        const PER_INSTALLED_TASK: u64 = 48;
        const PER_CACHE_ENTRY: u64 = 56;
        const PER_HISTORY_ROW: u64 = 96;
        let installed_tasks = self.installed.as_ref().map_or(0, |(_, seg)| seg.num_tasks() as u64);
        BASE + PER_LOGGED_JOB * self.log.len() as u64
            + PER_INSTALLED_TASK * installed_tasks
            + PER_CACHE_ENTRY * self.cache_len() as u64
            + PER_HISTORY_ROW * self.tempo.pald().history_len() as u64
    }

    /// Runs one control-loop iteration against the window ending at `now`:
    ///
    /// 1. slice the most recent `window_len` of ingested jobs and rebase it
    ///    to the window origin;
    /// 2. if the window's content changed since the last advance, swap it
    ///    into the What-if Model ([`Tempo::set_workload`]);
    /// 3. observe the window on the stand-in cluster under the current
    ///    configuration and feed the observation to [`Tempo::iterate`].
    ///
    /// An empty window skips the iteration (nothing to tune on) but still
    /// counts as a step, so the observation-seed stream stays aligned with
    /// the advance call sequence.
    pub fn advance(&mut self, now: Time) -> DecisionRecord {
        let end = now.max(self.spec.window_len).max(self.last_end);
        let start = end - self.spec.window_len;
        self.last_end = end;
        self.step += 1;
        let step = self.step;

        // Jobs older than every future window can never be replayed again.
        self.log.evict_before(start);
        let mut segment = self.log.trace_in(start, end);
        segment.shift_to_zero(start);

        if segment.is_empty() {
            self.skipped += 1;
            return DecisionRecord {
                step,
                window: (start, end),
                skipped: true,
                iteration: self.tempo.iteration() as u64,
                observed_qs: Vec::new(),
                reverted: false,
                config: self.tempo.current_config(),
            };
        }

        let changed = match &self.installed {
            Some((w, seg)) => *w != (start, end) || *seg != segment,
            None => true,
        };
        if changed {
            self.tempo.set_workload(WorkloadSource::replay(segment.clone()), self.spec.qs_window());
            self.installed = Some(((start, end), segment.clone()));
        }

        let observed = self.observe_window(&segment, step);
        let (hits_before, misses_before, _) = self.tempo.whatif.cache_stats();
        let sims_before = self.tempo.whatif.sim_count();
        let record = self.tempo.iterate(&observed);
        let (hits_after, misses_after, _) = self.tempo.whatif.cache_stats();
        self.last_provenance = AdvanceProvenance {
            cache_hits: hits_after - hits_before,
            cache_misses: misses_after - misses_before,
            sims: self.tempo.whatif.sim_count() - sims_before,
        };
        self.decisions += 1;
        DecisionRecord {
            step,
            window: (start, end),
            skipped: false,
            iteration: record.iteration as u64,
            observed_qs: record.observed_qs,
            reverted: record.reverted,
            config: self.tempo.current_config(),
        }
    }

    /// The stand-in "production run" of a window segment under the current
    /// configuration.
    fn observe_window(&self, segment: &Trace, step: u64) -> Schedule {
        observe(
            segment,
            &self.spec.cluster,
            &self.tempo.current_config(),
            self.spec.observation_noise,
            observation_seed(self.spec.seed, step),
        )
    }

    /// Captures everything needed to resume this domain warm.
    pub fn snapshot(&self, id: u64) -> DomainSnapshot {
        DomainSnapshot {
            id,
            spec: self.spec.clone(),
            step: self.step,
            decisions: self.decisions,
            skipped: self.skipped,
            last_end: self.last_end,
            log: self.log.to_state(),
            installed: self.installed.clone(),
            tempo: self.tempo.snapshot(),
            cache: self.tempo.whatif.export_cache(),
            tokens: self.tokens,
            last_refill: self.last_refill,
            shed: self.shed,
            delayed: self.delayed,
        }
    }

    /// Rebuilds a domain from a snapshot. Subsequent `ingest`/`advance`
    /// calls behave bit-identically to the never-snapshotted domain.
    pub fn restore(snapshot: DomainSnapshot) -> Result<Self, String> {
        let DomainSnapshot {
            id: _,
            spec,
            step,
            decisions,
            skipped,
            last_end,
            log,
            installed,
            tempo: tempo_snapshot,
            cache,
            tokens,
            last_refill,
            shed,
            delayed,
        } = snapshot;
        let mut domain = Domain::new(spec)?;
        // Wire-derived snapshots must be rejected gracefully, not let into
        // `Tempo::restore_state`'s assertions (a panic there would kill the
        // serving thread that carried the request).
        let dim = domain.tempo.space.dim();
        let k = domain.tempo.whatif.k();
        if tempo_snapshot.x.len() != dim {
            return Err(format!(
                "snapshot x has {} dims, spec expects {dim}",
                tempo_snapshot.x.len()
            ));
        }
        if tempo_snapshot.r.len() != k {
            return Err(format!(
                "snapshot r has {} entries, spec has {k} SLOs",
                tempo_snapshot.r.len()
            ));
        }
        if let Some((px, pqs)) = &tempo_snapshot.prev {
            if px.len() != dim || pqs.len() != k {
                return Err("snapshot prev-observation arity mismatch".into());
            }
        }
        if tempo_snapshot.pald.history_x.len() != tempo_snapshot.pald.history_f.len()
            || tempo_snapshot.pald.history_x.iter().any(|x| x.len() != dim)
            || tempo_snapshot.pald.history_f.iter().any(|f| f.len() != k)
        {
            return Err("snapshot optimizer history arity mismatch".into());
        }
        domain.log = WindowLog::from_state(log);
        if let Some((_, segment)) = &installed {
            // Re-derive the What-if context directly: `set_workload` would
            // reset optimizer state that `restore_state` is about to install.
            domain.tempo.whatif.set_source_window(
                WorkloadSource::replay(segment.clone()),
                domain.spec.qs_window(),
            );
        }
        domain.installed = installed;
        domain.tempo.whatif.import_cache(&cache);
        domain.tempo.restore_state(tempo_snapshot);
        domain.step = step;
        domain.decisions = decisions;
        domain.skipped = skipped;
        domain.last_end = last_end;
        domain.tokens = tokens;
        domain.last_refill = last_refill;
        domain.shed = shed;
        domain.delayed = delayed;
        Ok(domain)
    }
}

/// Wire-serializable state of one domain (an element of a runtime
/// snapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSnapshot {
    pub id: u64,
    pub spec: DomainSpec,
    pub step: u64,
    pub decisions: u64,
    pub skipped: u64,
    pub last_end: Time,
    pub log: WindowLogState,
    /// The window + rebased segment currently installed in the What-if
    /// Model (`None` when no non-empty window has been seen yet).
    pub installed: Option<((Time, Time), Trace)>,
    pub tempo: TempoSnapshot,
    /// Warm memo-cache entries ([`WhatIfModel::export_cache`]).
    pub cache: Vec<(u64, Vec<f64>)>,
    /// Ingest-budget bucket state ([`IngestBudget`]), so a restored tenant
    /// resumes with exactly the admission credit it had.
    pub tokens: f64,
    pub last_refill: Time,
    pub shed: u64,
    pub delayed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_qs::{QsKind, SloSpec};
    use tempo_sim::TenantConfig;
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::TaskSpec;

    fn demo_spec(seed: u64) -> DomainSpec {
        let slos = SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ]);
        let initial = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(2.0),
            TenantConfig::fair_default(),
        ]);
        DomainSpec::new("demo", ClusterSpec::new(8, 4), slos, initial, 4 * MIN)
            .with_seed(seed)
            .with_probes(3)
    }

    fn burst(base: Time) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for i in 0..3u64 {
            jobs.push(
                JobSpec::new(
                    0,
                    0,
                    base + i * 20 * SEC,
                    vec![TaskSpec::map(20 * SEC), TaskSpec::reduce(30 * SEC)],
                )
                .with_deadline(base + i * 20 * SEC + 2 * MIN),
            );
            jobs.push(JobSpec::new(
                0,
                1,
                base + i * 30 * SEC,
                vec![TaskSpec::map(30 * SEC), TaskSpec::reduce(60 * SEC)],
            ));
        }
        jobs
    }

    #[test]
    fn delay_budget_rejects_whole_bursts_with_a_retry_hint() {
        // Budget: 4 jobs per 4-minute window → refill rate 1 job/min.
        let spec = demo_spec(1).with_ingest_budget(IngestBudget::delay(4));
        let mut d = Domain::new(spec).unwrap();
        // A fresh bucket is full; an oversized burst is charged one full
        // window's worth and admitted (rare big bursts make progress).
        assert_eq!(d.ingest(0, burst(0)), IngestOutcome::Accepted { accepted: 6 });
        assert_eq!(d.ingest_budget_occupancy(), 1.0, "bucket drained");
        // Bucket empty: the next burst is turned away whole, lossless.
        assert_eq!(d.ingest(0, burst(0)), IngestOutcome::Busy { retry_after_micros: 4 * MIN });
        assert_eq!(d.delayed_count(), 6);
        assert_eq!(d.shed_count(), 0);
        assert_eq!(d.ingested(), 6, "rejected jobs never entered the window");
        // Half a window later: half the tokens are back, still not enough.
        assert_eq!(
            d.ingest(2 * MIN, burst(0)),
            IngestOutcome::Busy { retry_after_micros: 2 * MIN }
        );
        // Waiting out the hint admits the burst.
        assert_eq!(d.ingest(4 * MIN, burst(0)), IngestOutcome::Accepted { accepted: 6 });
    }

    #[test]
    fn shed_budget_admits_a_prefix_and_drops_the_rest() {
        let spec = demo_spec(1).with_ingest_budget(IngestBudget::shed(4));
        let mut d = Domain::new(spec).unwrap();
        assert_eq!(d.ingest(0, burst(0)), IngestOutcome::Accepted { accepted: 6 });
        // Empty bucket: everything sheds, the client is never told to retry.
        assert_eq!(d.ingest(0, burst(0)), IngestOutcome::Accepted { accepted: 0 });
        assert_eq!(d.shed_count(), 6);
        // One token refilled: a 1-job prefix is admitted, 5 shed.
        assert_eq!(d.ingest(MIN, burst(0)), IngestOutcome::Accepted { accepted: 1 });
        assert_eq!(d.shed_count(), 11);
        assert_eq!(d.delayed_count(), 0);
        assert_eq!(d.ingested(), 7);
    }

    #[test]
    fn budget_state_survives_snapshot_restore() {
        let spec = demo_spec(1).with_ingest_budget(IngestBudget::delay(4));
        let mut d = Domain::new(spec).unwrap();
        d.ingest(0, burst(0));
        d.ingest(0, burst(0));
        let restored = Domain::restore(d.snapshot(0)).unwrap();
        assert_eq!(restored.delayed_count(), d.delayed_count());
        assert_eq!(restored.ingest_budget_occupancy(), d.ingest_budget_occupancy());
        // Identical future behaviour: both still reject at t=0.
        let mut d2 = restored;
        assert_eq!(d2.ingest(0, burst(0)), d.ingest(0, burst(0)));
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut s = demo_spec(1);
        s.window_len = 0;
        assert!(Domain::new(s).is_err());
        let mut s = demo_spec(1);
        s.slos = SloSet::new(vec![SloSpec::new(Some(7), QsKind::AvgResponseTime)]);
        match Domain::new(s) {
            Err(e) => assert!(e.contains("tenant 7")),
            Ok(_) => panic!("out-of-range SLO tenant accepted"),
        }
        let mut s = demo_spec(1);
        s.probes = 0;
        assert!(Domain::new(s).is_err());
    }

    #[test]
    fn empty_windows_skip_but_count_steps() {
        let mut d = Domain::new(demo_spec(3)).unwrap();
        let rec = d.advance(0);
        assert!(rec.skipped);
        assert_eq!(rec.step, 1);
        assert_eq!(d.decisions(), 0);
        d.ingest(0, burst(0));
        let rec = d.advance(0);
        assert!(!rec.skipped);
        assert_eq!(rec.step, 2);
        assert_eq!(d.decisions(), 1);
        assert_eq!(rec.observed_qs.len(), 2);
    }

    #[test]
    fn windows_roll_with_the_clock_and_evict_history() {
        let mut d = Domain::new(demo_spec(4)).unwrap();
        d.ingest(0, burst(0));
        d.advance(0);
        let buffered = d.log.len();
        assert!(buffered > 0);
        // Jump two windows ahead: the old burst is out of range and evicted.
        d.ingest(0, burst(9 * MIN));
        let rec = d.advance(12 * MIN);
        assert_eq!(rec.window, (8 * MIN, 12 * MIN));
        assert!(!rec.skipped);
        assert!(d.log.len() < buffered + 6, "pre-window jobs evicted");
        // A stalled clock never regresses the window.
        let rec = d.advance(0);
        assert_eq!(rec.window, (8 * MIN, 12 * MIN));
    }

    #[test]
    fn repeated_advances_on_a_static_window_keep_tuning() {
        let mut d = Domain::new(demo_spec(5)).unwrap();
        d.ingest(0, burst(0));
        let mut iterations = Vec::new();
        for _ in 0..3 {
            let rec = d.advance(0);
            assert!(!rec.skipped);
            iterations.push(rec.iteration);
        }
        assert_eq!(iterations, vec![0, 1, 2], "same window, successive iterations");
        assert_eq!(d.decisions(), 3);
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots_gracefully() {
        let mut d = Domain::new(demo_spec(7)).unwrap();
        d.ingest(0, burst(0));
        d.advance(0);
        // Wire-derived snapshots can be arbitrarily corrupt; each mismatch
        // must surface as Err (never reach core's assertions and panic the
        // serving thread).
        let restore_err = |snapshot: DomainSnapshot| match Domain::restore(snapshot) {
            Err(e) => e,
            Ok(_) => panic!("corrupt snapshot accepted"),
        };
        let mut bad = d.snapshot(0);
        bad.tempo.x.push(0.5);
        assert!(restore_err(bad).contains("dims"));
        let mut bad = d.snapshot(0);
        bad.tempo.r.clear();
        assert!(restore_err(bad).contains("SLOs"));
        let mut bad = d.snapshot(0);
        if let Some((_, pqs)) = bad.tempo.prev.as_mut() {
            pqs.push(1.0);
        }
        assert!(restore_err(bad).contains("arity"));
        let mut bad = d.snapshot(0);
        bad.tempo.pald.history_f.pop();
        assert!(restore_err(bad).contains("history"));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut straight = Domain::new(demo_spec(6)).unwrap();
        straight.ingest(0, burst(0));
        straight.advance(0);
        straight.ingest(0, burst(5 * MIN));
        straight.advance(6 * MIN);

        let snap = straight.snapshot(42);
        let json = serde_json::to_string(&snap).unwrap();
        let parsed: DomainSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, snap, "snapshot survives its wire encoding");
        let mut resumed = Domain::restore(parsed).unwrap();

        assert_eq!(resumed.current_config(), straight.current_config());
        assert_eq!(resumed.ingested(), straight.ingested());
        // Both copies now see identical future input.
        for (t, b) in [(6 * MIN, burst(7 * MIN)), (9 * MIN, burst(8 * MIN))] {
            assert_eq!(straight.ingest(t, b.clone()), resumed.ingest(t, b));
            for _ in 0..2 {
                assert_eq!(straight.advance(t), resumed.advance(t), "diverged at t={t}");
            }
        }
        assert_eq!(
            straight.tempo().pald().history(),
            resumed.tempo().pald().history(),
            "optimizer histories identical after restore"
        );
    }
}
