//! The `tempo-serve` TCP server: JSONL protocol over `std::net`.
//!
//! One accept thread, one handler thread per connection, all thin clients
//! of the shared [`ControllerRuntime`]. Graceful shutdown is cooperative: a
//! `Shutdown` request (or [`Server::request_shutdown`]) raises a flag,
//! handler reads poll it via short socket timeouts, and the accept loop is
//! unblocked by a loopback poke — every thread drains and joins before
//! [`Server::join`] returns.

use crate::clock::{Clock, SimClock, WallClock};
use crate::proto::{decode, encode, Request, Response, PROTO_VERSION};
use crate::runtime::ControllerRuntime;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the server's runtime reads time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Real time ([`WallClock`]).
    Wall,
    /// Simulated time, driven by `Tick` requests ([`SimClock`]) —
    /// deterministic replay mode.
    Sim,
}

/// Server settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Shard worker threads.
    pub shards: usize,
    pub clock: ClockMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:7077".into(), shards: default_shards(), clock: ClockMode::Wall }
    }
}

/// Default shard count: the machine's parallelism.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A running server. Dropping it without [`Server::join`] aborts less
/// gracefully (threads are detached); prefer `join`.
pub struct Server {
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving in background threads.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (runtime, sim) = match config.clock {
            ClockMode::Wall => {
                (ControllerRuntime::new(config.shards, Arc::new(WallClock::new())), None)
            }
            ClockMode::Sim => {
                let sim = Arc::new(SimClock::new());
                let clock: Arc<dyn Clock> = Arc::<SimClock>::clone(&sim);
                (ControllerRuntime::new(config.shards, clock), Some(sim))
            }
        };
        let runtime = Arc::new(runtime);
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_runtime = Arc::clone(&runtime);
        let accept_sim = sim.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("tempo-serve-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_runtime, accept_sim, accept_shutdown);
            })
            .expect("spawn accept thread");

        Ok(Server { runtime, sim, local_addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The hosted runtime (embedded callers can bypass the socket).
    pub fn runtime(&self) -> &Arc<ControllerRuntime> {
        &self.runtime
    }

    /// The simulated clock, in [`ClockMode::Sim`].
    pub fn sim_clock(&self) -> Option<&Arc<SimClock>> {
        self.sim.as_ref()
    }

    /// Raises the shutdown flag and unblocks the accept loop. Returns
    /// immediately; use [`Server::join`] to wait for drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Whether a shutdown has been requested (by a client or locally).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has fully drained (accept loop exited, every
    /// connection handler joined), then returns the runtime so the caller
    /// can snapshot it before dropping (which joins the shard workers).
    pub fn join(mut self) -> Arc<ControllerRuntime> {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        Arc::clone(&self.runtime)
    }
}

fn accept_loop(
    listener: TcpListener,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    shutdown: Arc<AtomicBool>,
) {
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let runtime = Arc::clone(&runtime);
        let sim = sim.clone();
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("tempo-serve-conn".into())
            .spawn(move || handle_connection(stream, runtime, sim, flag))
            .expect("spawn connection handler");
        let mut list = handlers.lock().expect("handler list");
        // Reap finished handlers so a long-lived daemon serving many
        // short-lived connections doesn't accumulate join state forever.
        list.retain(|h| !h.is_finished());
        list.push(handle);
    }
    for handle in handlers.lock().expect("handler list").drain(..) {
        let _ = handle.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    shutdown: Arc<AtomicBool>,
) {
    // Short read timeouts keep the handler responsive to the shutdown flag
    // without busy-waiting.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Frame lines at the byte level: `read_line` would *discard* a partial
    // read whose accumulated bytes aren't yet valid UTF-8 (a timeout firing
    // mid-way through a multibyte character), silently corrupting the
    // stream. `read_until` keeps every byte across timeouts.
    let mut pending: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_until(b'\n', &mut pending) {
            Ok(0) => break, // client closed
            Ok(_) => {
                if pending.last() != Some(&b'\n') {
                    continue; // EOF without newline; next read returns 0
                }
                let raw = std::mem::take(&mut pending);
                let Ok(line) = std::str::from_utf8(&raw) else {
                    let resp = Response::Error { message: "request is not valid UTF-8".into() };
                    let ok = writer
                        .write_all(format!("{}\n", encode(&resp)).as_bytes())
                        .and_then(|()| writer.flush())
                        .is_ok();
                    if !ok {
                        break;
                    }
                    continue;
                };
                if line.trim().is_empty() {
                    continue;
                }
                let (response, stop) = dispatch(&runtime, sim.as_deref(), &shutdown, line);
                let ok = writer
                    .write_all(format!("{}\n", encode(&response)).as_bytes())
                    .and_then(|()| writer.flush())
                    .is_ok();
                if stop {
                    // Unblock the accept loop so it observes the flag; the
                    // handler's local address *is* the server's bound
                    // address.
                    if let Ok(addr) = writer.local_addr() {
                        let _ = TcpStream::connect(addr);
                    }
                }
                if !ok || stop {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Timeout poll: partial bytes are already in `pending`.
            }
            Err(_) => break,
        }
    }
}

/// Executes one request; the bool asks the handler (and, transitively, the
/// whole server) to stop.
fn dispatch(
    runtime: &ControllerRuntime,
    sim: Option<&SimClock>,
    shutdown: &AtomicBool,
    line: &str,
) -> (Response, bool) {
    let request: Request = match decode(line) {
        Ok(r) => r,
        Err(e) => return (Response::Error { message: format!("bad request: {e}") }, false),
    };
    let fail = |e: crate::runtime::RuntimeError| Response::Error { message: e.to_string() };
    let response = match request {
        Request::Hello => {
            let m = runtime.metrics();
            Response::Hello {
                proto: PROTO_VERSION,
                shards: m.shards,
                domains: m.domains,
                clock: if sim.is_some() { "sim".into() } else { "wall".into() },
            }
        }
        Request::CreateDomain { spec } => match runtime.create_domain(spec) {
            Ok(domain) => Response::Created { domain },
            Err(e) => fail(e),
        },
        Request::Ingest { domain, jobs } => match runtime.ingest(domain, jobs) {
            Ok(accepted) => Response::Ingested { domain, accepted },
            Err(e) => fail(e),
        },
        Request::Advance { domain, steps } => {
            let steps = steps.clamp(1, 10_000);
            let mut decisions = Vec::with_capacity(steps as usize);
            let mut error = None;
            for _ in 0..steps {
                match runtime.advance(domain) {
                    Ok(rec) => decisions.push(rec),
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            match error {
                Some(e) if decisions.is_empty() => fail(e),
                _ => Response::Advanced { domain, decisions },
            }
        }
        Request::AdvanceAll => Response::AdvancedAll { decisions: runtime.advance_all() },
        Request::Config { domain } => match runtime.current_config(domain) {
            Ok(config) => Response::Config { domain, config },
            Err(e) => fail(e),
        },
        Request::Metrics => Response::Metrics { metrics: runtime.metrics() },
        Request::Snapshot => Response::Snapshot { snapshot: runtime.snapshot() },
        Request::Restore { snapshot } => match runtime.restore(snapshot) {
            Ok(domains) => Response::Restored { domains },
            Err(e) => fail(e),
        },
        Request::Tick { micros } => match sim {
            Some(clock) => Response::Ticked { now: clock.advance(micros) },
            None => Response::Error { message: "Tick requires --sim-clock".into() },
        },
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            return (Response::ShuttingDown, true);
        }
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainSpec;
    use tempo_qs::{QsKind, SloSet, SloSpec};
    use tempo_sim::{ClusterSpec, RmConfig, TenantConfig};
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn spec(name: &str) -> DomainSpec {
        let slos = SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ]);
        let initial = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(2.0),
            TenantConfig::fair_default(),
        ]);
        DomainSpec::new(name, ClusterSpec::new(8, 4), slos, initial, 4 * MIN).with_probes(3)
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let writer = stream.try_clone().expect("clone stream");
            Client { reader: BufReader::new(stream), writer }
        }

        fn call(&mut self, request: &Request) -> Response {
            self.writer
                .write_all(format!("{}\n", encode(request)).as_bytes())
                .expect("send request");
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read response");
            decode(&line).expect("parse response")
        }
    }

    #[test]
    fn end_to_end_over_tcp() {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            clock: ClockMode::Sim,
        })
        .expect("start server");
        let mut client = Client::connect(server.local_addr());

        match client.call(&Request::Hello) {
            Response::Hello { proto, clock, .. } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(clock, "sim");
            }
            other => panic!("unexpected {other:?}"),
        }

        let domain = match client.call(&Request::CreateDomain { spec: spec("wire") }) {
            Response::Created { domain } => domain,
            other => panic!("unexpected {other:?}"),
        };

        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| {
                JobSpec::new(
                    0,
                    (i % 2) as u16,
                    i * 30 * SEC,
                    vec![TaskSpec::map(20 * SEC), TaskSpec::reduce(30 * SEC)],
                )
            })
            .collect();
        match client.call(&Request::Ingest { domain, jobs }) {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 4),
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Tick { micros: 2 * MIN }) {
            Response::Ticked { now } => assert_eq!(now, 2 * MIN),
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Advance { domain, steps: 2 }) {
            Response::Advanced { decisions, .. } => {
                assert_eq!(decisions.len(), 2);
                assert!(decisions.iter().all(|d| !d.skipped));
            }
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Metrics) {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.domains, 1);
                assert_eq!(metrics.total_decisions, 2);
                assert_eq!(metrics.total_ingested, 4);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Bad input degrades to an error response, not a dropped connection.
        match client.call(&Request::Advance { domain: 999, steps: 1 }) {
            Response::Error { message } => assert!(message.contains("unknown domain")),
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(client.call(&Request::Shutdown), Response::ShuttingDown);
        let runtime = server.join();
        assert_eq!(runtime.metrics().total_decisions, 2);
    }

    #[test]
    fn snapshot_restore_across_server_instances() {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            clock: ClockMode::Sim,
        })
        .expect("start server");
        let mut client = Client::connect(server.local_addr());
        let domain = match client.call(&Request::CreateDomain { spec: spec("resume") }) {
            Response::Created { domain } => domain,
            other => panic!("unexpected {other:?}"),
        };
        let jobs: Vec<JobSpec> =
            (0..3).map(|i| JobSpec::new(0, 0, i * MIN, vec![TaskSpec::map(30 * SEC)])).collect();
        client.call(&Request::Ingest { domain, jobs });
        client.call(&Request::Advance { domain, steps: 1 });
        let snapshot = match client.call(&Request::Snapshot) {
            Response::Snapshot { snapshot } => snapshot,
            other => panic!("unexpected {other:?}"),
        };
        client.call(&Request::Shutdown);
        server.join();

        // A fresh daemon restores the state and keeps counting from there.
        let server2 = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4, // shard count need not match
            clock: ClockMode::Sim,
        })
        .expect("start server 2");
        let mut client2 = Client::connect(server2.local_addr());
        match client2.call(&Request::Restore { snapshot }) {
            Response::Restored { domains } => assert_eq!(domains, vec![domain]),
            other => panic!("unexpected {other:?}"),
        }
        match client2.call(&Request::Metrics) {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.total_decisions, 1);
                assert_eq!(metrics.total_ingested, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        client2.call(&Request::Shutdown);
        server2.join();
    }
}
