//! The `tempo-serve` TCP server: negotiated JSONL or binary framing over
//! `std::net`.
//!
//! One accept thread, one handler thread per connection, all thin clients
//! of the shared [`ControllerRuntime`]. The first byte of a connection
//! picks the codec ([`codec::BINARY_PREFIX`] + version for binary frames,
//! anything else for legacy JSONL — raw `nc` sessions keep working).
//!
//! JSONL connections are strict request/response, served inline on the
//! handler thread with responses coalesced while more complete request
//! lines are already buffered. Binary connections are pipelined: the
//! handler thread decodes frames and fires domain-targeted operations at
//! the owning shards without waiting ([`ControllerRuntime::on_domain_async`]),
//! and a per-connection writer thread streams completions back tagged with
//! the request's correlation id — so responses may legally arrive out of
//! order while per-domain order is preserved.
//!
//! Graceful shutdown is cooperative: a `Shutdown` request (or
//! [`Server::request_shutdown`]) raises a flag, handler reads poll it via
//! short socket timeouts, and the accept loop is unblocked by a loopback
//! poke — every thread drains and joins before [`Server::join`] returns.

use crate::clock::{Clock, SimClock, WallClock};
use crate::codec::{self, BINARY_PREFIX, BINARY_VERSION};
use crate::domain::{Domain, IngestOutcome};
use crate::fault::{no_faults, FaultInjector};
use crate::fleet::FleetConfig;
use crate::proto::{decode, encode_line, Request, Response, PROTO_VERSION};
use crate::runtime::{push_trace, ControllerRuntime, DecisionTrace, RuntimeError};
use crate::wal::{self, Journal, JournalOp, JournalRecord};
use bytes::BytesMut;
use crossbeam::channel::{self, Receiver, Sender};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tempo_obs::TraceRing;
use tempo_workload::time::Time;
use tempo_workload::JobSpec;

/// Step-count clamp for `Advance`/`IngestAdvance` requests.
const MAX_STEPS: u64 = 10_000;

mod obs {
    /// Wire latency histogram for one `(codec, op)` pair — dynamic labels,
    /// so this goes through the registry rather than the call-site-cached
    /// macro.
    pub(super) fn request_micros(codec: &'static str, op: &str) -> &'static tempo_obs::Histogram {
        tempo_obs::histogram(
            "tempo_request_duration_micros",
            "Wire request service time by codec and op",
            &[("codec", codec), ("op", op)],
        )
    }

    pub(super) fn conn_faults(kind: &'static str) -> &'static tempo_obs::Counter {
        tempo_obs::counter(
            "tempo_fault_injections_total",
            "Deterministic fault-injector firings by kind",
            &[("kind", kind)],
        )
    }
}

/// Stable label value for the request-latency histogram.
fn request_op_name(request: &Request) -> &'static str {
    match request {
        Request::Hello => "hello",
        Request::CreateDomain { .. } => "create_domain",
        Request::Ingest { .. } => "ingest",
        Request::Advance { .. } => "advance",
        Request::IngestAdvance { .. } => "ingest_advance",
        Request::AdvanceAll => "advance_all",
        Request::Config { .. } => "config",
        Request::Metrics => "metrics",
        Request::Snapshot => "snapshot",
        Request::Restore { .. } => "restore",
        Request::Tick { .. } => "tick",
        Request::Hibernate { .. } => "hibernate",
        Request::Migrate { .. } => "migrate",
        Request::Rebalance => "rebalance",
        Request::Telemetry => "telemetry",
        Request::TraceQuery { .. } => "trace_query",
        Request::Shutdown => "shutdown",
    }
}

/// How the server's runtime reads time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Real time ([`WallClock`]).
    Wall,
    /// Simulated time, driven by `Tick` requests ([`SimClock`]) —
    /// deterministic replay mode.
    Sim,
}

/// Server settings.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Shard worker threads.
    pub shards: usize,
    pub clock: ClockMode,
    /// Fleet-management policy (hibernation watermark, idle ticks,
    /// rebalance factor).
    pub fleet: FleetConfig,
    /// Directory for the durable operations journal. `None` = the
    /// pre-crash-only behavior: nothing survives a kill.
    pub journal_dir: Option<PathBuf>,
    /// Checkpoint (and truncate the journal) every this many journaled ops.
    pub checkpoint_every: u64,
    /// Fault injector threaded through the runtime's shard workers, the
    /// journal's appends, and the accept loop's connections.
    pub faults: Arc<dyn FaultInjector>,
    /// Bind address for the Prometheus exposition HTTP endpoint
    /// (`--metrics-port`); `None` disables it. Port 0 picks an ephemeral
    /// port (read it back from [`Server::metrics_addr`]).
    pub metrics_addr: Option<String>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("addr", &self.addr)
            .field("shards", &self.shards)
            .field("clock", &self.clock)
            .field("fleet", &self.fleet)
            .field("journal_dir", &self.journal_dir)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("metrics_addr", &self.metrics_addr)
            .finish_non_exhaustive()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".into(),
            shards: default_shards(),
            clock: ClockMode::Wall,
            fleet: FleetConfig::default(),
            journal_dir: None,
            checkpoint_every: 1024,
            faults: no_faults(),
            metrics_addr: None,
        }
    }
}

/// Default shard count: the machine's parallelism.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A running server. Dropping it without [`Server::join`] aborts less
/// gracefully (threads are detached); prefer `join`.
pub struct Server {
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    journal: Option<Arc<Journal>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics: Option<tempo_obs::MetricsServer>,
}

impl Server {
    /// Binds and starts serving in background threads.
    ///
    /// With a journal directory configured, recovery runs here — before the
    /// accept thread exists, so no request can observe a half-recovered
    /// runtime: the latest checkpoint is restored, a torn journal tail is
    /// truncated, and the surviving records replay at their recorded clock
    /// readings. Unrecoverable journal state (corrupt checkpoint, future
    /// format version) fails the start rather than serving wrong state.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = match &config.metrics_addr {
            Some(addr) => {
                let addr: SocketAddr = addr.parse().map_err(|e| {
                    std::io::Error::new(
                        ErrorKind::InvalidInput,
                        format!("bad metrics address {addr}: {e}"),
                    )
                })?;
                Some(tempo_obs::MetricsServer::start(addr)?)
            }
            None => None,
        };
        let fleet = config.fleet;
        let faults = Arc::clone(&config.faults);
        let (runtime, sim) = match config.clock {
            ClockMode::Wall => {
                let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
                (
                    ControllerRuntime::with_fleet_faults(
                        config.shards,
                        clock,
                        fleet,
                        Arc::clone(&faults),
                    ),
                    None,
                )
            }
            ClockMode::Sim => {
                let sim = Arc::new(SimClock::new());
                let clock: Arc<dyn Clock> = Arc::<SimClock>::clone(&sim);
                (
                    ControllerRuntime::with_fleet_faults(
                        config.shards,
                        clock,
                        fleet,
                        Arc::clone(&faults),
                    ),
                    Some(sim),
                )
            }
        };
        let runtime = Arc::new(runtime);
        let shutdown = Arc::new(AtomicBool::new(false));

        let corrupt = |e: String| std::io::Error::new(ErrorKind::InvalidData, e);
        let journal = match &config.journal_dir {
            Some(dir) => {
                let (journal, recovered) =
                    Journal::open(dir, config.checkpoint_every, Arc::clone(&faults))
                        .map_err(corrupt)?;
                let report = wal::replay(&runtime, sim.as_deref(), recovered).map_err(corrupt)?;
                if report.checkpoint_domains > 0
                    || report.replayed > 0
                    || report.truncated_bytes > 0
                {
                    eprintln!(
                        "tempo-serve: recovered {} checkpoint domain(s) + {} journal record(s) \
                         ({} torn byte(s) truncated{})",
                        report.checkpoint_domains,
                        report.replayed,
                        report.truncated_bytes,
                        if report.discarded_stale_journal {
                            ", stale journal discarded"
                        } else {
                            ""
                        }
                    );
                }
                Some(Arc::new(journal))
            }
            None => None,
        };

        let accept_runtime = Arc::clone(&runtime);
        let accept_sim = sim.clone();
        let accept_journal = journal.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("tempo-serve-accept".into())
            .spawn(move || {
                accept_loop(
                    listener,
                    accept_runtime,
                    accept_sim,
                    accept_journal,
                    faults,
                    accept_shutdown,
                );
            })
            .expect("spawn accept thread");

        Ok(Server {
            runtime,
            sim,
            journal,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            metrics,
        })
    }

    /// The operations journal, when one is configured. The daemon uses this
    /// to write a final checkpoint on graceful exit.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of the Prometheus exposition endpoint, when one is
    /// configured (resolves ephemeral ports).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.addr())
    }

    /// The hosted runtime (embedded callers can bypass the socket).
    pub fn runtime(&self) -> &Arc<ControllerRuntime> {
        &self.runtime
    }

    /// The simulated clock, in [`ClockMode::Sim`].
    pub fn sim_clock(&self) -> Option<&Arc<SimClock>> {
        self.sim.as_ref()
    }

    /// Raises the shutdown flag and unblocks the accept loop. Returns
    /// immediately; use [`Server::join`] to wait for drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Whether a shutdown has been requested (by a client or locally).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has fully drained (accept loop exited, every
    /// connection handler joined), then returns the runtime so the caller
    /// can snapshot it before dropping (which joins the shard workers).
    pub fn join(mut self) -> Arc<ControllerRuntime> {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        Arc::clone(&self.runtime)
    }
}

fn accept_loop(
    listener: TcpListener,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    journal: Option<Arc<Journal>>,
    faults: Arc<dyn FaultInjector>,
    shutdown: Arc<AtomicBool>,
) {
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut conn_index = 0u64;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        conn_index += 1;
        let index = conn_index;
        let runtime = Arc::clone(&runtime);
        let sim = sim.clone();
        let journal = journal.clone();
        let faults = Arc::clone(&faults);
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("tempo-serve-conn".into())
            .spawn(move || {
                // Connection faults fire before the handshake, so a dropped
                // connection never half-executed anything: a retrying client
                // reconnects and resends without double-execution.
                if faults.drop_connection(index) {
                    obs::conn_faults("conn_drop").inc();
                    drop(stream);
                    return;
                }
                if let Some(stall) = faults.stall_connection(index) {
                    obs::conn_faults("conn_stall").inc();
                    std::thread::sleep(stall);
                }
                handle_connection(stream, runtime, sim, journal, flag)
            })
            .expect("spawn connection handler");
        let mut list = handlers.lock().expect("handler list");
        // Reap finished handlers so a long-lived daemon serving many
        // short-lived connections doesn't accumulate join state forever.
        list.retain(|h| !h.is_finished());
        list.push(handle);
    }
    for handle in handlers.lock().expect("handler list").drain(..) {
        let _ = handle.join();
    }
}

/// Reads one byte, riding out the shutdown-poll timeouts. `None` means the
/// connection closed, errored, or the server is shutting down.
fn read_negotiation_byte(mut stream: &TcpStream, shutdown: &AtomicBool) -> Option<u8> {
    let mut byte = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) => return Some(byte[0]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    journal: Option<Arc<Journal>>,
    shutdown: Arc<AtomicBool>,
) {
    // Short read timeouts keep handlers responsive to the shutdown flag
    // without busy-waiting.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    // The first byte negotiates the codec.
    let Some(first) = read_negotiation_byte(&stream, &shutdown) else { return };
    match first {
        BINARY_PREFIX => {
            let Some(version) = read_negotiation_byte(&stream, &shutdown) else { return };
            if version != BINARY_VERSION {
                let mut buf = BytesMut::new();
                let resp = Response::Error {
                    message: format!(
                        "unsupported binary version {version} (server speaks {BINARY_VERSION})"
                    ),
                };
                codec::encode_frame(0, &resp, &mut buf);
                let mut writer = &stream;
                let _ = writer.write_all(&buf);
                return;
            }
            handle_binary(stream, runtime, sim, journal, shutdown);
        }
        codec::JSONL_PREFIX => handle_jsonl(stream, runtime, sim, journal, shutdown, Vec::new()),
        // Anything else is the first byte of a bare JSONL session (`nc`
        // with no explicit prefix): keep it as part of the stream.
        other => handle_jsonl(stream, runtime, sim, journal, shutdown, vec![other]),
    }
}

/// Pokes the server's own accept loop so it observes the shutdown flag; the
/// connection's local address *is* the server's bound address.
fn poke_accept_loop(stream: &TcpStream) {
    if let Ok(addr) = stream.local_addr() {
        let _ = TcpStream::connect(addr);
    }
}

// ------------------------------------------------------------------- JSONL

fn handle_jsonl(
    stream: TcpStream,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    journal: Option<Arc<Journal>>,
    shutdown: Arc<AtomicBool>,
    mut pending: Vec<u8>,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Reusable line buffer: responses accumulate here and go out in one
    // write+flush only once no further complete request line is already
    // buffered — pipelined JSONL clients get coalesced replies instead of
    // a syscall pair per message.
    let mut out = String::new();
    // Frame lines at the byte level: `read_line` would *discard* a partial
    // read whose accumulated bytes aren't yet valid UTF-8 (a timeout firing
    // mid-way through a multibyte character), silently corrupting the
    // stream. `read_until` keeps every byte across timeouts.
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_until(b'\n', &mut pending) {
            Ok(0) => break, // client closed
            Ok(_) => {
                if pending.last() != Some(&b'\n') {
                    continue; // EOF without newline; next read returns 0
                }
                let raw = std::mem::take(&mut pending);
                let mut stop = false;
                match std::str::from_utf8(&raw) {
                    Err(_) => encode_line(
                        &Response::Error { message: "request is not valid UTF-8".into() },
                        &mut out,
                    ),
                    Ok(line) if line.trim().is_empty() => {}
                    Ok(line) => {
                        let (response, requested_stop) = dispatch_line(
                            &runtime,
                            sim.as_deref(),
                            journal.as_ref(),
                            &shutdown,
                            line,
                        );
                        encode_line(&response, &mut out);
                        stop = requested_stop;
                    }
                }
                // Coalesce: hold the flush while complete request lines are
                // already sitting in the read buffer.
                let more_buffered = !stop && reader.buffer().contains(&b'\n');
                let mut ok = true;
                if !out.is_empty() && !more_buffered {
                    ok = writer.write_all(out.as_bytes()).and_then(|()| writer.flush()).is_ok();
                    out.clear();
                    // Journal upkeep between rounds, off the shard threads:
                    // due checkpoints and degraded-domain repair. With no
                    // journal, degraded domains respawn fresh from their
                    // retained specs instead.
                    if let Some(journal) = &journal {
                        wal::run_maintenance(journal, &runtime);
                    } else {
                        runtime.respawn_degraded();
                    }
                }
                if stop {
                    poke_accept_loop(&writer);
                }
                if !ok || stop {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Timeout poll: partial bytes are already in `pending`.
            }
            Err(_) => break,
        }
    }
}

/// Decodes and executes one JSONL request; the bool asks the handler (and,
/// transitively, the whole server) to stop.
fn dispatch_line(
    runtime: &ControllerRuntime,
    sim: Option<&SimClock>,
    journal: Option<&Arc<Journal>>,
    shutdown: &AtomicBool,
    line: &str,
) -> (Response, bool) {
    match decode(line) {
        Ok(request) => {
            let watch = tempo_obs::Stopwatch::start();
            let op_name = request_op_name(&request);
            let result = dispatch(runtime, sim, journal, shutdown, request);
            watch.observe_into(|| obs::request_micros("jsonl", op_name));
            result
        }
        Err(e) => (Response::Error { message: format!("bad request: {e}") }, false),
    }
}

/// Executes one request synchronously; the bool asks the handler to stop.
///
/// Journaling is write-behind: every state-mutating operation is appended
/// to the journal *after* it executed (and only when it executed — errors
/// and read-only requests are never logged). The crash-only contract: an op
/// whose response never reached the client may or may not survive a crash;
/// an op journaled before the crash always replays.
fn dispatch(
    runtime: &ControllerRuntime,
    sim: Option<&SimClock>,
    journal: Option<&Arc<Journal>>,
    shutdown: &AtomicBool,
    request: Request,
) -> (Response, bool) {
    let fail = |e: RuntimeError| Response::Error { message: e.to_string() };
    // Domain-targeted requests share one execution path with the binary
    // pipeline: a single clock reading at dispatch covers the whole op, and
    // the journal append runs inside the shard callback, right after
    // execution — per-domain journal order equals execution order even when
    // concurrent connections hit the same domain.
    let request = match split_domain_op(request) {
        Ok((domain, op)) => {
            let now = runtime.clock().now();
            let logged = journal.and_then(|_| journal_op(domain, &op));
            let journal = journal.map(Arc::clone);
            let traces = Arc::clone(runtime.traces());
            let response = match runtime.on_domain(domain, move |d| {
                let response = run_domain_op(domain, d, now, op, &traces);
                if let (Some(journal), Some(op)) = (journal, logged) {
                    journal.append_logged(&JournalRecord { now, op });
                }
                response
            }) {
                Ok(response) => response,
                Err(e) => fail(e),
            };
            return (response, false);
        }
        Err(request) => request,
    };
    let response = match request {
        Request::Hello => {
            let m = runtime.metrics();
            Response::Hello {
                proto: PROTO_VERSION,
                shards: m.shards,
                domains: m.domains,
                clock: if sim.is_some() { "sim".into() } else { "wall".into() },
            }
        }
        Request::CreateDomain { spec } => {
            let logged = journal.map(|_| spec.clone());
            match runtime.create_domain(spec) {
                Ok(domain) => {
                    if let (Some(journal), Some(spec)) = (journal, logged) {
                        journal.append_logged(&JournalRecord {
                            now: runtime.clock().now(),
                            op: JournalOp::CreateDomain { id: domain, spec },
                        });
                    }
                    Response::Created { domain }
                }
                Err(e) => fail(e),
            }
        }
        Request::AdvanceAll => {
            let now = runtime.clock().now();
            // Journaled per-shard, from each shard's own worker right after
            // its domains advanced: the sweep's records interleave with
            // concurrent per-domain ops in true execution order, which a
            // single post-hoc record from this thread could not guarantee.
            let decisions = match journal {
                Some(journal) => {
                    let journal = Arc::clone(journal);
                    runtime.advance_all_at_with(now, move |ids| {
                        if ids.is_empty() {
                            return;
                        }
                        journal.append_logged(&JournalRecord {
                            now,
                            op: JournalOp::AdvanceAll { domains: ids.to_vec() },
                        });
                    })
                }
                None => runtime.advance_all_at(now),
            };
            Response::AdvancedAll { decisions }
        }
        Request::Metrics => Response::Metrics { metrics: runtime.metrics() },
        Request::Snapshot => Response::Snapshot { snapshot: runtime.snapshot() },
        Request::Restore { snapshot } => {
            let logged = journal.map(|_| snapshot.clone());
            match runtime.restore(snapshot) {
                Ok(domains) => {
                    if let (Some(journal), Some(snapshot)) = (journal, logged) {
                        journal.append_logged(&JournalRecord {
                            now: runtime.clock().now(),
                            op: JournalOp::Restore { snapshot },
                        });
                    }
                    Response::Restored { domains }
                }
                Err(e) => fail(e),
            }
        }
        Request::Tick { micros } => match sim {
            Some(clock) => {
                let now = clock.advance(micros);
                // Ticks double as the fleet's maintenance heartbeat:
                // watermark enforcement and idle-tick hibernation run here.
                runtime.maintain();
                if let Some(journal) = journal {
                    // The record carries the post-advance reading; replay
                    // restores it with an idempotent monotonic set, never by
                    // re-advancing (a record that straddles a checkpoint cut
                    // must not apply the delta twice).
                    journal.append_logged(&JournalRecord { now, op: JournalOp::Tick { micros } });
                }
                Response::Ticked { now }
            }
            None => Response::Error { message: "Tick requires --sim-clock".into() },
        },
        Request::Hibernate { domain } => match runtime.hibernate(domain) {
            Ok(was_resident) => {
                // Only a hibernation that did something is journaled
                // (replay tolerates it no-oping anyway).
                if was_resident {
                    if let Some(journal) = journal {
                        journal.append_logged(&JournalRecord {
                            now: runtime.clock().now(),
                            op: JournalOp::Hibernate { domain },
                        });
                    }
                }
                Response::Hibernated { domain, was_resident }
            }
            Err(e) => fail(e),
        },
        Request::Migrate { domain, shard } => match runtime.migrate(domain, shard as usize) {
            Ok(moved) => {
                if moved {
                    if let Some(journal) = journal {
                        journal.append_logged(&JournalRecord {
                            now: runtime.clock().now(),
                            op: JournalOp::Migrate { domain, shard },
                        });
                    }
                }
                Response::Migrated { domain, shard, moved }
            }
            Err(e) => fail(e),
        },
        Request::Rebalance => {
            let moves = runtime.rebalance();
            // Journaled even when no move happened: rebalance resets the
            // per-shard load window, which shapes later rebalances.
            if let Some(journal) = journal {
                journal.append_logged(&JournalRecord {
                    now: runtime.clock().now(),
                    op: JournalOp::Rebalance,
                });
            }
            Response::Rebalanced { moves }
        }
        Request::Telemetry => Response::Telemetry { text: tempo_obs::render() },
        Request::TraceQuery { limit, domain } => {
            Response::Traces { traces: runtime.recent_traces(limit, domain) }
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            return (Response::ShuttingDown, true);
        }
        // Handled by split_domain_op above.
        Request::Ingest { .. }
        | Request::Advance { .. }
        | Request::IngestAdvance { .. }
        | Request::Config { .. } => unreachable!("domain ops split before the match"),
    };
    (response, false)
}

// ------------------------------------------------------------------ binary

/// The domain-targeted subset of [`Request`], runnable on the owning shard
/// without blocking the connection's reader.
enum DomainOp {
    Ingest { jobs: Vec<JobSpec> },
    Advance { steps: u64 },
    IngestAdvance { jobs: Vec<JobSpec>, steps: u64 },
    Config,
}

/// Splits a request into its async-dispatchable form, or hands it back for
/// synchronous (global) execution.
#[allow(clippy::result_large_err)] // Err is the ownership hand-back, not an error path
fn split_domain_op(request: Request) -> Result<(u64, DomainOp), Request> {
    match request {
        Request::Ingest { domain, jobs } => Ok((domain, DomainOp::Ingest { jobs })),
        Request::Advance { domain, steps } => Ok((domain, DomainOp::Advance { steps })),
        Request::IngestAdvance { domain, jobs, steps } => {
            Ok((domain, DomainOp::IngestAdvance { jobs, steps }))
        }
        Request::Config { domain } => Ok((domain, DomainOp::Config)),
        other => Err(other),
    }
}

fn ingest_response(domain: u64, outcome: IngestOutcome) -> Response {
    match outcome {
        IngestOutcome::Accepted { accepted } => Response::Ingested { domain, accepted },
        IngestOutcome::Busy { retry_after_micros } => Response::Busy { domain, retry_after_micros },
    }
}

/// The journal image of a domain op, `None` for read-only ops. `Busy`
/// outcomes are journaled too: refilling the ingest budget's token bucket
/// mutated domain state, and replaying the op reproduces it exactly.
fn journal_op(domain: u64, op: &DomainOp) -> Option<JournalOp> {
    match op {
        DomainOp::Ingest { jobs } => Some(JournalOp::Ingest { domain, jobs: jobs.clone() }),
        DomainOp::Advance { steps } => {
            Some(JournalOp::Advance { domain, steps: (*steps).clamp(1, MAX_STEPS) })
        }
        DomainOp::IngestAdvance { jobs, steps } => Some(JournalOp::IngestAdvance {
            domain,
            jobs: jobs.clone(),
            steps: (*steps).clamp(1, MAX_STEPS),
        }),
        DomainOp::Config => None,
    }
}

/// Executes one domain-targeted operation directly against the domain, on
/// its owning shard, against the clock reading taken at dispatch. Control
/// decisions land in the runtime's trace ring (same path as embedded
/// advances).
fn run_domain_op(
    domain: u64,
    d: &mut Domain,
    now: Time,
    op: DomainOp,
    traces: &TraceRing<DecisionTrace>,
) -> Response {
    let advance = |d: &mut Domain| {
        let rec = d.advance(now);
        push_trace(traces, domain, &rec, d.last_provenance());
        rec
    };
    match op {
        DomainOp::Ingest { jobs } => ingest_response(domain, d.ingest(now, jobs)),
        DomainOp::Advance { steps } => {
            let steps = steps.clamp(1, MAX_STEPS);
            let decisions = (0..steps).map(|_| advance(d)).collect();
            Response::Advanced { domain, decisions }
        }
        DomainOp::IngestAdvance { jobs, steps } => {
            let (accepted, retry_after_micros) = match d.ingest(now, jobs) {
                IngestOutcome::Accepted { accepted } => (accepted, None),
                IngestOutcome::Busy { retry_after_micros } => (0, Some(retry_after_micros)),
            };
            let steps = steps.clamp(1, MAX_STEPS);
            let decisions = (0..steps).map(|_| advance(d)).collect();
            Response::IngestAdvanced { domain, accepted, retry_after_micros, decisions }
        }
        DomainOp::Config => Response::Config { domain, config: d.current_config() },
    }
}

fn handle_binary(
    stream: TcpStream,
    runtime: Arc<ControllerRuntime>,
    sim: Option<Arc<SimClock>>,
    journal: Option<Arc<Journal>>,
    shutdown: Arc<AtomicBool>,
) {
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Completions flow to a dedicated writer thread, which is what lets the
    // reader keep dispatching while earlier requests are still running.
    let (resp_tx, resp_rx) = channel::unbounded::<(u64, Response)>();
    let writer_thread = std::thread::Builder::new()
        .name("tempo-serve-conn-writer".into())
        .spawn(move || binary_writer_loop(writer, resp_rx))
        .expect("spawn connection writer");

    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'conn: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Drain every complete frame already buffered before reading more.
        loop {
            match codec::take_frame(&mut pending) {
                Ok(None) => break,
                Ok(Some((corr, body))) => {
                    if !dispatch_frame(
                        &runtime,
                        sim.as_deref(),
                        journal.as_ref(),
                        &shutdown,
                        corr,
                        &body,
                        &resp_tx,
                    ) {
                        poke_accept_loop(&reader);
                        break 'conn;
                    }
                }
                Err(e) => {
                    // Framing is unrecoverable: report and drop the
                    // connection (there is no resync point in the stream).
                    let _ = resp_tx.send((0, Response::Error { message: e }));
                    break 'conn;
                }
            }
        }
        // Journal upkeep runs on this connection thread, never a shard
        // worker (a checkpoint sweeps every shard and would self-deadlock
        // from one). With no journal, degraded domains respawn fresh from
        // their retained specs instead.
        if let Some(journal) = &journal {
            wal::run_maintenance(journal, &runtime);
        } else {
            runtime.respawn_degraded();
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    // Shard-queued completions still hold sender clones; the writer drains
    // them all and exits once the last one is gone.
    drop(resp_tx);
    let _ = writer_thread.join();
}

/// Decodes and routes one binary frame. Returns `false` when the connection
/// should stop (shutdown requested).
fn dispatch_frame(
    runtime: &Arc<ControllerRuntime>,
    sim: Option<&SimClock>,
    journal: Option<&Arc<Journal>>,
    shutdown: &AtomicBool,
    corr: u64,
    body: &[u8],
    resp_tx: &Sender<(u64, Response)>,
) -> bool {
    let request: Request = match codec::decode_binary(body) {
        Ok(r) => r,
        Err(e) => {
            let _ = resp_tx.send((corr, Response::Error { message: format!("bad request: {e}") }));
            return true;
        }
    };
    let watch = tempo_obs::Stopwatch::start();
    let op_name = request_op_name(&request);
    match split_domain_op(request) {
        Ok((domain, op)) => {
            // Clock is read at dispatch, not execution: a pipelined window
            // of operations shares the submission-time view of now.
            let now = runtime.clock().now();
            // Journaled from the shard callback, right after execution —
            // per-domain journal order therefore equals execution order,
            // which is what replay reproduces. An op that never executes
            // (shard panic, unknown domain) is never journaled.
            let logged = journal.and_then(|_| journal_op(domain, &op));
            let journal = journal.cloned();
            let tx = resp_tx.clone();
            let traces = Arc::clone(runtime.traces());
            let dispatched = runtime.on_domain_async(domain, move |d| {
                let response = match d {
                    Ok(d) => {
                        let response = run_domain_op(domain, d, now, op, &traces);
                        if let (Some(journal), Some(op)) = (journal.as_deref(), logged) {
                            journal.append_logged(&JournalRecord { now, op });
                        }
                        response
                    }
                    Err(e) => Response::Error { message: e.to_string() },
                };
                // Completion-time reading: the histogram sees the full
                // pipelined latency (queue wait included), not just decode.
                watch.observe_into(|| obs::request_micros("binary", op_name));
                let _ = tx.send((corr, response));
            });
            if let Err(e) = dispatched {
                let _ = resp_tx.send((corr, Response::Error { message: e.to_string() }));
            }
            true
        }
        Err(request) => {
            // Global requests run inline; their shard-fanning operations
            // queue behind already-dispatched domain ops, so a pipelined
            // `Metrics` still observes every earlier completion.
            let (response, stop) = dispatch(runtime, sim, journal, shutdown, request);
            watch.observe_into(|| obs::request_micros("binary", op_name));
            let _ = resp_tx.send((corr, response));
            !stop
        }
    }
}

/// Streams completion frames back to the client, coalescing everything
/// already queued into one write+flush.
fn binary_writer_loop(mut writer: TcpStream, resp_rx: Receiver<(u64, Response)>) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    while let Ok((corr, response)) = resp_rx.recv() {
        buf.clear();
        codec::encode_frame(corr, &response, &mut buf);
        while let Ok((corr, response)) = resp_rx.try_recv() {
            codec::encode_frame(corr, &response, &mut buf);
        }
        if writer.write_all(&buf).and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, Proto};
    use crate::domain::{DomainSpec, IngestBudget};
    use tempo_qs::{QsKind, SloSet, SloSpec};
    use tempo_sim::{ClusterSpec, RmConfig, TenantConfig};
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn spec(name: &str) -> DomainSpec {
        let slos = SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ]);
        let initial = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(2.0),
            TenantConfig::fair_default(),
        ]);
        DomainSpec::new(name, ClusterSpec::new(8, 4), slos, initial, 4 * MIN).with_probes(3)
    }

    fn start_sim_server(shards: usize) -> Server {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            clock: ClockMode::Sim,
            ..ServerConfig::default()
        })
        .expect("start server")
    }

    fn wire_jobs(count: u64) -> Vec<JobSpec> {
        (0..count)
            .map(|i| {
                JobSpec::new(
                    0,
                    (i % 2) as u16,
                    i * 30 * SEC,
                    vec![TaskSpec::map(20 * SEC), TaskSpec::reduce(30 * SEC)],
                )
            })
            .collect()
    }

    fn end_to_end(proto: Proto) {
        let server = start_sim_server(2);
        let mut client = Client::connect(server.local_addr(), proto).expect("connect");

        match client.call(&Request::Hello).unwrap() {
            Response::Hello { proto, clock, .. } => {
                assert_eq!(proto, PROTO_VERSION);
                assert_eq!(clock, "sim");
            }
            other => panic!("unexpected {other:?}"),
        }

        let domain = match client.call(&Request::CreateDomain { spec: spec("wire") }).unwrap() {
            Response::Created { domain } => domain,
            other => panic!("unexpected {other:?}"),
        };

        match client.call(&Request::Ingest { domain, jobs: wire_jobs(4) }).unwrap() {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 4),
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Tick { micros: 2 * MIN }).unwrap() {
            Response::Ticked { now } => assert_eq!(now, 2 * MIN),
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Advance { domain, steps: 2 }).unwrap() {
            Response::Advanced { decisions, .. } => {
                assert_eq!(decisions.len(), 2);
                assert!(decisions.iter().all(|d| !d.skipped));
            }
            other => panic!("unexpected {other:?}"),
        }

        match client.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.domains, 1);
                assert_eq!(metrics.total_decisions, 2);
                assert_eq!(metrics.total_ingested, 4);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Bad input degrades to an error response, not a dropped connection.
        match client.call(&Request::Advance { domain: 999, steps: 1 }).unwrap() {
            Response::Error { message } => assert!(message.contains("unknown domain")),
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(client.call(&Request::Shutdown).unwrap(), Response::ShuttingDown);
        let runtime = server.join();
        assert_eq!(runtime.metrics().total_decisions, 2);
    }

    #[test]
    fn end_to_end_over_tcp_jsonl() {
        end_to_end(Proto::Jsonl);
    }

    #[test]
    fn end_to_end_over_tcp_binary() {
        end_to_end(Proto::Binary);
    }

    #[test]
    fn binary_pipelining_matches_request_order_across_domains() {
        let server = start_sim_server(2);
        let mut client = Client::connect(server.local_addr(), Proto::Binary).expect("connect");
        let mut domains = Vec::new();
        for i in 0..4 {
            match client.call(&Request::CreateDomain { spec: spec(&format!("d{i}")) }).unwrap() {
                Response::Created { domain } => domains.push(domain),
                other => panic!("unexpected {other:?}"),
            }
        }
        // A whole window of batched ingest+advance rounds in flight at once,
        // interleaved across domains that live on different shards.
        let requests: Vec<Request> = (0..16)
            .map(|i| Request::IngestAdvance {
                domain: domains[i % domains.len()],
                jobs: wire_jobs(2),
                steps: 1,
            })
            .collect();
        let responses = client.call_pipelined(&requests, 8).unwrap();
        assert_eq!(responses.len(), 16);
        for (req, resp) in requests.iter().zip(&responses) {
            let Request::IngestAdvance { domain, .. } = req else { unreachable!() };
            match resp {
                Response::IngestAdvanced { domain: d, accepted, decisions, .. } => {
                    assert_eq!(d, domain, "responses matched to their requests");
                    assert_eq!(*accepted, 2);
                    assert_eq!(decisions.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // A trailing Metrics observes every pipelined completion.
        match client.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.total_ingested, 32);
                assert_eq!(
                    metrics.total_decisions
                        + metrics.per_domain.iter().map(|d| d.skipped).sum::<u64>(),
                    16
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        client.call(&Request::Shutdown).unwrap();
        server.join();
    }

    #[test]
    fn busy_tenants_surface_backpressure_on_the_wire() {
        let server = start_sim_server(1);
        let mut client = Client::connect(server.local_addr(), Proto::Binary).expect("connect");
        let spec = spec("greedy").with_ingest_budget(IngestBudget::delay(4));
        let domain = match client.call(&Request::CreateDomain { spec }).unwrap() {
            Response::Created { domain } => domain,
            other => panic!("unexpected {other:?}"),
        };
        match client.call(&Request::Ingest { domain, jobs: wire_jobs(4) }).unwrap() {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 4),
            other => panic!("unexpected {other:?}"),
        }
        match client.call(&Request::Ingest { domain, jobs: wire_jobs(4) }).unwrap() {
            Response::Busy { domain: d, retry_after_micros } => {
                assert_eq!(d, domain);
                assert!(retry_after_micros > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match client.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => assert_eq!(metrics.total_delayed, 4),
            other => panic!("unexpected {other:?}"),
        }
        client.call(&Request::Shutdown).unwrap();
        server.join();
    }

    #[test]
    fn bare_jsonl_without_negotiation_prefix_still_works() {
        // A raw `nc`-style session: first byte is `{`, not a prefix.
        let server = start_sim_server(1);
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"\"Hello\"\n").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        match decode::<Response>(&line).expect("parse") {
            Response::Hello { proto, .. } => assert_eq!(proto, PROTO_VERSION),
            other => panic!("unexpected {other:?}"),
        }
        writer.write_all(b"\"Shutdown\"\n").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("read");
        server.join();
    }

    #[test]
    fn unsupported_binary_version_is_rejected_with_an_error_frame() {
        let server = start_sim_server(1);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&[BINARY_PREFIX, 99]).expect("send");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        let (corr, body) = codec::take_frame(&mut raw).expect("frame").expect("complete");
        assert_eq!(corr, 0);
        match codec::decode_binary::<Response>(&body).expect("decode") {
            Response::Error { message } => assert!(message.contains("version")),
            other => panic!("unexpected {other:?}"),
        }
        server.request_shutdown();
        server.join();
    }

    #[test]
    fn fleet_requests_work_over_the_wire() {
        // A deliberately tiny watermark forces hibernation churn under a
        // handful of domains; ticks run the maintenance sweep.
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            clock: ClockMode::Sim,
            fleet: FleetConfig::default().with_watermark(6 * 1024),
            ..ServerConfig::default()
        })
        .expect("start server");
        let mut client = Client::connect(server.local_addr(), Proto::Binary).expect("connect");
        let mut domains = Vec::new();
        for i in 0..3 {
            match client.call(&Request::CreateDomain { spec: spec(&format!("f{i}")) }).unwrap() {
                Response::Created { domain } => domains.push(domain),
                other => panic!("unexpected {other:?}"),
            }
        }
        client.call(&Request::Tick { micros: MIN }).unwrap();
        match client.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.domains, 3);
                assert!(metrics.resident_domains < 3, "watermark hibernated cold domains");
                assert!(metrics.total_hibernations >= 1);
                assert!(metrics.per_domain.iter().any(|d| !d.resident));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Explicit hibernate, then a touch wakes the domain transparently.
        match client.call(&Request::Hibernate { domain: domains[0] }).unwrap() {
            Response::Hibernated { domain, .. } => assert_eq!(domain, domains[0]),
            other => panic!("unexpected {other:?}"),
        }
        match client.call(&Request::Ingest { domain: domains[0], jobs: wire_jobs(2) }).unwrap() {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Migrate to the other shard; bad targets error without dropping
        // the connection.
        let shard = match client.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => {
                metrics.per_domain.iter().find(|d| d.id == domains[0]).unwrap().shard
            }
            other => panic!("unexpected {other:?}"),
        };
        match client.call(&Request::Migrate { domain: domains[0], shard: 1 - shard }).unwrap() {
            Response::Migrated { moved, .. } => assert!(moved),
            other => panic!("unexpected {other:?}"),
        }
        match client.call(&Request::Migrate { domain: domains[0], shard: 99 }).unwrap() {
            Response::Error { message } => assert!(message.contains("out of range")),
            other => panic!("unexpected {other:?}"),
        }
        match client.call(&Request::Rebalance).unwrap() {
            Response::Rebalanced { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        // The migrated domain still answers with its state intact.
        match client.call(&Request::Advance { domain: domains[0], steps: 1 }).unwrap() {
            Response::Advanced { decisions, .. } => assert_eq!(decisions.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        client.call(&Request::Shutdown).unwrap();
        server.join();
    }

    #[test]
    fn snapshot_restore_across_server_instances() {
        let server = start_sim_server(2);
        let mut client = Client::connect(server.local_addr(), Proto::Jsonl).expect("connect");
        let domain = match client.call(&Request::CreateDomain { spec: spec("resume") }).unwrap() {
            Response::Created { domain } => domain,
            other => panic!("unexpected {other:?}"),
        };
        let jobs: Vec<JobSpec> =
            (0..3).map(|i| JobSpec::new(0, 0, i * MIN, vec![TaskSpec::map(30 * SEC)])).collect();
        client.call(&Request::Ingest { domain, jobs }).unwrap();
        client.call(&Request::Advance { domain, steps: 1 }).unwrap();
        let snapshot = match client.call(&Request::Snapshot).unwrap() {
            Response::Snapshot { snapshot } => snapshot,
            other => panic!("unexpected {other:?}"),
        };
        client.call(&Request::Shutdown).unwrap();
        server.join();

        // A fresh daemon restores the state and keeps counting from there —
        // over the binary codec this time.
        let server2 = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4, // shard count need not match
            clock: ClockMode::Sim,
            ..ServerConfig::default()
        })
        .expect("start server 2");
        let mut client2 = Client::connect(server2.local_addr(), Proto::Binary).expect("connect");
        match client2.call(&Request::Restore { snapshot }).unwrap() {
            Response::Restored { domains } => assert_eq!(domains, vec![domain]),
            other => panic!("unexpected {other:?}"),
        }
        match client2.call(&Request::Metrics).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.total_decisions, 1);
                assert_eq!(metrics.total_ingested, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        client2.call(&Request::Shutdown).unwrap();
        server2.join();
    }
}
