//! TCP client for the serve wire protocol, speaking either codec.
//!
//! [`Client::call`] is the classic synchronous request/response round.
//! [`Client::call_pipelined`] keeps a window of requests in flight: over the
//! binary codec responses are matched by correlation id (the server may
//! complete them out of order), over JSONL the client simply writes ahead
//! and relies on the server's in-order replies. Either way the writes for a
//! full window are coalesced into one syscall.

use crate::codec::{self, BINARY_PREFIX, BINARY_VERSION, JSONL_PREFIX, MAX_FRAME_LEN};
use crate::proto::{decode, encode_line, Request, Response};
use bytes::BytesMut;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Which wire codec a [`Client`] negotiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Line-delimited JSON (the legacy, `nc`-friendly codec).
    Jsonl,
    /// Length-prefixed binary frames with correlation ids.
    Binary,
}

impl Proto {
    /// Parses a `--proto` flag value.
    pub fn parse(s: &str) -> Result<Proto, String> {
        match s {
            "jsonl" => Ok(Proto::Jsonl),
            "binary" => Ok(Proto::Binary),
            other => Err(format!("unknown proto {other:?} (expected jsonl|binary)")),
        }
    }
}

/// A connected wire-protocol client with reusable encode/decode buffers.
pub struct Client {
    proto: Proto,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reusable JSONL line buffers (encode side / decode side).
    line_out: String,
    line_in: String,
    /// Reusable binary frame encode buffer.
    frame_out: BytesMut,
    /// Next correlation id to assign (binary only).
    next_corr: u64,
}

fn bad_data(e: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.into())
}

impl Client {
    /// Connects and sends the negotiation prefix for `proto`.
    pub fn connect(addr: impl ToSocketAddrs, proto: Proto) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        match proto {
            Proto::Jsonl => writer.write_all(&[JSONL_PREFIX])?,
            Proto::Binary => writer.write_all(&[BINARY_PREFIX, BINARY_VERSION])?,
        }
        Ok(Client {
            proto,
            reader: BufReader::new(stream),
            writer,
            line_out: String::new(),
            line_in: String::new(),
            frame_out: BytesMut::with_capacity(4096),
            next_corr: 0,
        })
    }

    /// The negotiated codec.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// One synchronous request/response round.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let mut responses = self.call_pipelined(std::slice::from_ref(request), 1)?;
        Ok(responses.pop().expect("one response per request"))
    }

    /// Issues `requests` with up to `window` in flight at once; returns the
    /// responses in request order.
    pub fn call_pipelined(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let window = window.max(1);
        match self.proto {
            Proto::Jsonl => self.pipelined_jsonl(requests, window),
            Proto::Binary => self.pipelined_binary(requests, window),
        }
    }

    fn pipelined_jsonl(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(requests.len());
        let mut sent = 0;
        while responses.len() < requests.len() {
            // Top the window off, all queued lines in one write.
            if sent < requests.len() && sent - responses.len() < window {
                self.line_out.clear();
                while sent < requests.len() && sent - responses.len() < window {
                    encode_line(&requests[sent], &mut self.line_out);
                    sent += 1;
                }
                self.writer.write_all(self.line_out.as_bytes())?;
                self.writer.flush()?;
            }
            self.line_in.clear();
            if self.reader.read_line(&mut self.line_in)? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            responses.push(decode(&self.line_in).map_err(bad_data)?);
        }
        Ok(responses)
    }

    fn pipelined_binary(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let base = self.next_corr;
        self.next_corr += requests.len() as u64;
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        let mut sent = 0;
        let mut received = 0;
        while received < requests.len() {
            if sent < requests.len() && sent - received < window {
                self.frame_out.clear();
                while sent < requests.len() && sent - received < window {
                    codec::encode_frame(base + sent as u64, &requests[sent], &mut self.frame_out);
                    sent += 1;
                }
                self.writer.write_all(&self.frame_out)?;
                self.writer.flush()?;
            }
            let (corr, body) = self.read_frame()?;
            let idx =
                corr.checked_sub(base).filter(|&i| (i as usize) < requests.len()).ok_or_else(
                    || bad_data(format!("response for unknown correlation id {corr}")),
                )? as usize;
            if responses[idx].replace(codec::decode_binary(&body).map_err(bad_data)?).is_some() {
                return Err(bad_data(format!("duplicate response for correlation id {corr}")));
            }
            received += 1;
        }
        Ok(responses.into_iter().map(|r| r.expect("all received")).collect())
    }

    fn read_frame(&mut self) -> io::Result<(u64, Vec<u8>)> {
        let mut len = [0u8; 4];
        self.reader.read_exact(&mut len)?;
        let body_len = u32::from_le_bytes(len) as usize;
        if !(8..=MAX_FRAME_LEN).contains(&body_len) {
            return Err(bad_data(format!("bad frame length {body_len}")));
        }
        let mut corr = [0u8; 8];
        self.reader.read_exact(&mut corr)?;
        let mut body = vec![0u8; body_len - 8];
        self.reader.read_exact(&mut body)?;
        Ok((u64::from_le_bytes(corr), body))
    }
}
