//! TCP client for the serve wire protocol, speaking either codec.
//!
//! [`Client::call`] is the classic synchronous request/response round.
//! [`Client::call_pipelined`] keeps a window of requests in flight: over the
//! binary codec responses are matched by correlation id (the server may
//! complete them out of order), over JSONL the client simply writes ahead
//! and relies on the server's in-order replies. Either way the writes for a
//! full window are coalesced into one syscall.

use crate::codec::{self, BINARY_PREFIX, BINARY_VERSION, JSONL_PREFIX, MAX_FRAME_LEN};
use crate::fault::splitmix64;
use crate::proto::{decode, encode_line, Request, Response};
use bytes::BytesMut;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Which wire codec a [`Client`] negotiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Line-delimited JSON (the legacy, `nc`-friendly codec).
    Jsonl,
    /// Length-prefixed binary frames with correlation ids.
    Binary,
}

impl Proto {
    /// Parses a `--proto` flag value.
    pub fn parse(s: &str) -> Result<Proto, String> {
        match s {
            "jsonl" => Ok(Proto::Jsonl),
            "binary" => Ok(Proto::Binary),
            other => Err(format!("unknown proto {other:?} (expected jsonl|binary)")),
        }
    }
}

/// How [`Client::call`] retries: bounded attempts with exponential backoff
/// and deterministic jitter, transparent reconnect + renegotiation after a
/// dropped connection, and (optionally) honoring the server's
/// [`Response::Busy`] `retry_after_micros` hint.
///
/// Retry makes `call` at-least-once, not exactly-once: a connection that
/// dies after the server executed a request but before the response arrived
/// is retried, re-executing the request. Fine for idempotent reads and for
/// workloads that tolerate re-ingest; callers needing exactly-once must
/// keep `Client` retry off and deduplicate themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per `call` (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff × 2^(n-1)`, capped at
    /// `max_backoff`, scaled by jitter in `[0.5, 1.0)`.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Read timeout applied to the socket (`None` = block forever). A
    /// timed-out read counts as a transient failure and is retried.
    pub timeout: Option<Duration>,
    /// Treat `Busy { retry_after_micros }` as retryable: sleep the server's
    /// hint (capped at `max_backoff`) and resend. When attempts run out the
    /// `Busy` is returned to the caller, never an error.
    pub honor_busy: bool,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            timeout: None,
            honor_busy: true,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered backoff before retry attempt `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        self.base_backoff.saturating_mul(1 << shift).min(self.max_backoff)
    }
}

/// Counters for what the retry machinery has done on this client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests handed to the wire (includes every retry resend).
    pub attempts: u64,
    /// Resends after a transient I/O failure.
    pub retries: u64,
    /// Successful reconnect + renegotiations.
    pub reconnects: u64,
    /// Resends after a `Busy` backpressure response.
    pub busy_retries: u64,
    /// Calls that exhausted `max_attempts` and surfaced an error.
    pub exhausted: u64,
}

/// A connected wire-protocol client with reusable encode/decode buffers.
pub struct Client {
    proto: Proto,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The peer address, kept for reconnects.
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
    stats: ClientStats,
    /// Jitter stream state (SplitMix64 counter).
    jitter: u64,
    /// Reusable JSONL line buffers (encode side / decode side).
    line_out: String,
    line_in: String,
    /// Reusable binary frame encode buffer.
    frame_out: BytesMut,
    /// Next correlation id to assign (binary only).
    next_corr: u64,
}

fn bad_data(e: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.into())
}

/// Errors worth a reconnect-and-resend: the connection died (dropped by a
/// fault, a crashed server, a mid-restart window) or a read timed out.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

impl Client {
    /// Connects and sends the negotiation prefix for `proto`.
    pub fn connect(addr: impl ToSocketAddrs, proto: Proto) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        let mut writer = stream.try_clone()?;
        match proto {
            Proto::Jsonl => writer.write_all(&[JSONL_PREFIX])?,
            Proto::Binary => writer.write_all(&[BINARY_PREFIX, BINARY_VERSION])?,
        }
        Ok(Client {
            proto,
            reader: BufReader::new(stream),
            writer,
            addr,
            retry: None,
            stats: ClientStats::default(),
            jitter: 0,
            line_out: String::new(),
            line_in: String::new(),
            frame_out: BytesMut::with_capacity(4096),
            next_corr: 0,
        })
    }

    /// Connects with a retry policy already installed (and its read timeout
    /// applied).
    pub fn connect_retry(
        addr: impl ToSocketAddrs,
        proto: Proto,
        policy: RetryPolicy,
    ) -> io::Result<Client> {
        let mut client = Client::connect(addr, proto)?;
        client.set_retry(policy)?;
        Ok(client)
    }

    /// Installs (or replaces) the retry policy on a live client, applying
    /// its read timeout to the socket.
    pub fn set_retry(&mut self, policy: RetryPolicy) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(policy.timeout)?;
        self.jitter = policy.jitter_seed;
        self.retry = Some(policy);
        Ok(())
    }

    /// What the retry machinery has done so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The negotiated codec.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// One synchronous request/response round. With a [`RetryPolicy`]
    /// installed, transient failures reconnect + renegotiate and resend,
    /// and `Busy` responses are waited out and resent (see the policy docs
    /// for the at-least-once caveat).
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let Some(policy) = self.retry else { return self.call_once(request) };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            match self.call_once(request) {
                Ok(Response::Busy { domain, retry_after_micros })
                    if policy.honor_busy && attempt < policy.max_attempts =>
                {
                    self.stats.busy_retries += 1;
                    let hint = Duration::from_micros(retry_after_micros).min(policy.max_backoff);
                    std::thread::sleep(self.jittered(hint));
                    let _ = domain;
                }
                Ok(response) => return Ok(response),
                Err(e) if attempt < policy.max_attempts && is_transient(&e) => {
                    self.stats.retries += 1;
                    std::thread::sleep(self.jittered(policy.backoff(attempt)));
                    // A failed reconnect leaves the dead streams in place:
                    // the next call_once fails fast as transient and the
                    // loop backs off toward another reconnect, until
                    // attempts run out.
                    if self.reconnect().is_ok() {
                        self.stats.reconnects += 1;
                    }
                }
                Err(e) => {
                    self.stats.exhausted += 1;
                    return Err(e);
                }
            }
        }
    }

    /// One request/response round with no retry.
    fn call_once(&mut self, request: &Request) -> io::Result<Response> {
        let mut responses = self.call_pipelined(std::slice::from_ref(request), 1)?;
        Ok(responses.pop().expect("one response per request"))
    }

    /// Re-establishes the connection and renegotiates the codec. Buffered
    /// partial responses from the dead connection are discarded with it.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        if let Some(policy) = &self.retry {
            stream.set_read_timeout(policy.timeout)?;
        }
        let mut writer = stream.try_clone()?;
        match self.proto {
            Proto::Jsonl => writer.write_all(&[JSONL_PREFIX])?,
            Proto::Binary => writer.write_all(&[BINARY_PREFIX, BINARY_VERSION])?,
        }
        self.reader = BufReader::new(stream);
        self.writer = writer;
        Ok(())
    }

    /// Scales `d` by a deterministic factor in `[0.5, 1.0)` — spreads
    /// synchronized retry herds without an RNG dependency.
    fn jittered(&mut self, d: Duration) -> Duration {
        self.jitter = self.jitter.wrapping_add(1);
        let h = splitmix64(self.jitter);
        let frac = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        d.mul_f64(frac)
    }

    /// Issues `requests` with up to `window` in flight at once; returns the
    /// responses in request order.
    pub fn call_pipelined(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let window = window.max(1);
        match self.proto {
            Proto::Jsonl => self.pipelined_jsonl(requests, window),
            Proto::Binary => self.pipelined_binary(requests, window),
        }
    }

    fn pipelined_jsonl(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(requests.len());
        let mut sent = 0;
        while responses.len() < requests.len() {
            // Top the window off, all queued lines in one write.
            if sent < requests.len() && sent - responses.len() < window {
                self.line_out.clear();
                while sent < requests.len() && sent - responses.len() < window {
                    encode_line(&requests[sent], &mut self.line_out);
                    sent += 1;
                }
                self.writer.write_all(self.line_out.as_bytes())?;
                self.writer.flush()?;
            }
            self.line_in.clear();
            if self.reader.read_line(&mut self.line_in)? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            responses.push(decode(&self.line_in).map_err(bad_data)?);
        }
        Ok(responses)
    }

    fn pipelined_binary(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let base = self.next_corr;
        self.next_corr += requests.len() as u64;
        let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
        let mut sent = 0;
        let mut received = 0;
        while received < requests.len() {
            if sent < requests.len() && sent - received < window {
                self.frame_out.clear();
                while sent < requests.len() && sent - received < window {
                    codec::encode_frame(base + sent as u64, &requests[sent], &mut self.frame_out);
                    sent += 1;
                }
                self.writer.write_all(&self.frame_out)?;
                self.writer.flush()?;
            }
            let (corr, body) = self.read_frame()?;
            let idx =
                corr.checked_sub(base).filter(|&i| (i as usize) < requests.len()).ok_or_else(
                    || bad_data(format!("response for unknown correlation id {corr}")),
                )? as usize;
            if responses[idx].replace(codec::decode_binary(&body).map_err(bad_data)?).is_some() {
                return Err(bad_data(format!("duplicate response for correlation id {corr}")));
            }
            received += 1;
        }
        Ok(responses.into_iter().map(|r| r.expect("all received")).collect())
    }

    fn read_frame(&mut self) -> io::Result<(u64, Vec<u8>)> {
        let mut len = [0u8; 4];
        self.reader.read_exact(&mut len)?;
        let body_len = u32::from_le_bytes(len) as usize;
        if !(8..=MAX_FRAME_LEN).contains(&body_len) {
            return Err(bad_data(format!("bad frame length {body_len}")));
        }
        let mut corr = [0u8; 8];
        self.reader.read_exact(&mut corr)?;
        let mut body = vec![0u8; body_len - 8];
        self.reader.read_exact(&mut body)?;
        Ok((u64::from_le_bytes(corr), body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(4), Duration::from_millis(80));
        assert_eq!(policy.backoff(5), Duration::from_millis(100), "capped");
        assert_eq!(policy.backoff(40), Duration::from_millis(100), "shift saturates");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_in_range() {
        let stream = |seed: u64| -> Vec<u64> {
            let mut state = seed;
            (0..64)
                .map(|_| {
                    state = state.wrapping_add(1);
                    let h = splitmix64(state);
                    let frac = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
                    assert!((0.5..1.0).contains(&frac), "jitter factor {frac} out of range");
                    Duration::from_millis(100).mul_f64(frac).as_micros() as u64
                })
                .collect()
        };
        assert_eq!(stream(7), stream(7), "same seed, same jitter");
        assert_ne!(stream(7), stream(8), "different seeds diverge");
    }

    #[test]
    fn transient_errors_are_classified() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert!(is_transient(&io::Error::from(kind)), "{kind:?} should be transient");
        }
        assert!(!is_transient(&io::Error::from(io::ErrorKind::InvalidData)));
        assert!(!is_transient(&io::Error::from(io::ErrorKind::PermissionDenied)));
    }
}
