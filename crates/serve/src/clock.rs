//! Pluggable time for the serving runtime.
//!
//! Everything in `tempo-serve` that asks "what time is it" goes through the
//! [`Clock`] trait. Production daemons use [`WallClock`]; tests, the parity
//! suite, and deterministic replay use [`SimClock`], which only moves when
//! told to — making an entire multi-domain runtime a pure function of its
//! inputs (ingested jobs, advance calls, tick calls).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use tempo_workload::time::Time;

/// A monotonic microsecond clock on the runtime's own epoch (time 0 is
/// "when the runtime started", matching the simulated-time axis of
/// `tempo_workload::time`).
pub trait Clock: Send + Sync {
    fn now(&self) -> Time;
}

/// Real time: microseconds elapsed since construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        self.start.elapsed().as_micros() as Time
    }
}

/// Simulated time: moves only via [`SimClock::advance`]/[`SimClock::set`].
#[derive(Debug, Default)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock already at `t`.
    pub fn at(t: Time) -> Self {
        Self { now: AtomicU64::new(t) }
    }

    /// Moves time forward by `dt`; returns the new now.
    pub fn advance(&self, dt: Time) -> Time {
        self.now.fetch_add(dt, Ordering::SeqCst) + dt
    }

    /// Jumps to an absolute time. Saturating to monotonic: setting the clock
    /// backwards is a no-op (windows must never regress).
    pub fn set(&self, t: Time) -> Time {
        self.now.fetch_max(t, Ordering::SeqCst).max(t)
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_moves_only_when_told() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.now(), 10);
        assert_eq!(c.set(5), 10, "never regresses");
        assert_eq!(c.set(25), 25);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
