//! Zero-dependency observability for the Tempo workspace.
//!
//! crates.io is unreachable in this build environment, so — like the
//! dependency shims — the telemetry substrate is hand-rolled: lock-free
//! atomic [`Counter`]s and [`Gauge`]s, log-bucketed (power-of-2, HDR-style)
//! [`Histogram`]s with p50/p95/p99 extraction, and a bounded [`TraceRing`]
//! for typed decision/event traces. A process-global registry renders
//! everything as Prometheus-style text exposition ([`render`]), and
//! [`Exposition::parse`] reads that format back for digests and tests.
//!
//! # The no-op mode contract
//!
//! Telemetry is **off by default**. Every mutation — `Counter::add`,
//! `Gauge::set`, `Histogram::observe` — starts with one relaxed load of a
//! global flag and returns immediately when it is clear, so a fully
//! instrumented hot path costs a predictable handful of cycles per probe
//! when nobody is scraping. Binaries that serve telemetry (the daemon, the
//! benches) opt in with [`set_enabled`]; libraries never flip the flag.
//! Wall-clock reads follow the same discipline through [`Stopwatch`]:
//! disabled telemetry reads no clocks at all.
//!
//! # Determinism
//!
//! Instruments are strictly write-only from the measured code's point of
//! view: nothing ever reads a counter to make a control decision, so
//! telemetry-on and telemetry-off runs produce bit-identical results by
//! construction. Deterministic simulation paths may bump counters (pure
//! data, no clocks); only serve-layer code — whose timings never feed back
//! into results — uses `Stopwatch`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry collection on or off process-wide. Off is the default;
/// binaries that expose an exposition endpoint call `set_enabled(true)` at
/// startup. Libraries must never call this.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotone event counter. `add` is a no-op while telemetry is disabled.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depths, resident counts). Mutations are
/// no-ops while telemetry is disabled.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets a histogram carries. Bucket 0 holds exact zeros;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so the top bucket's
/// upper bound exceeds u64 range and nothing overflows out.
pub const HIST_BUCKETS: usize = 64;

/// Log-bucketed (power-of-2, HDR-style) histogram of non-negative integer
/// observations — latencies in microseconds, sizes in bytes.
///
/// Scrapes are designed to never look torn: the rendered `_count` is
/// derived from the bucket array itself (not a separately raced atomic), so
/// `_count == Σ buckets` holds in every scrape by construction, and each
/// bucket is individually monotone.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of observed values (approximately consistent with the buckets;
    /// exact once writers quiesce).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// Bucket index for a value: 0 for 0, else `1 + floor(log2(v))`, capped at
/// the top bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Records an elapsed [`Stopwatch`] in whole microseconds, if the watch
    /// was live (i.e. telemetry was enabled when it started).
    #[inline]
    pub fn observe_since(&self, sw: Stopwatch) {
        if let Some(start) = sw.0 {
            self.observe(start.elapsed().as_micros() as u64);
        }
    }

    /// Total observations (sum of the bucket array).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative bucket snapshot.
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Linear-interpolated quantile estimate (`q` in `[0, 1]`) over the log
    /// buckets; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.snapshot(), q)
    }
}

/// Quantile over a non-cumulative 64-bucket snapshot with the bucket
/// boundaries above; shared by live histograms and parsed expositions.
fn quantile_from_buckets(buckets: &[u64; HIST_BUCKETS], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = cum;
        cum += n;
        if (cum as f64) >= target {
            let lo = if i <= 1 { i as f64 } else { (1u64 << (i - 1)) as f64 };
            let hi = bucket_bound(i) as f64;
            let frac = (target - before as f64) / n as f64;
            return Some(lo + frac * (hi - lo).max(0.0));
        }
    }
    Some(bucket_bound(HIST_BUCKETS - 1) as f64)
}

/// A wall-clock span that only reads the clock when telemetry is enabled.
/// `Stopwatch::start()` in no-op mode costs one relaxed load.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch(if enabled() { Some(Instant::now()) } else { None })
    }

    /// Whether the watch is live (telemetry was enabled at start).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Elapsed microseconds, if live.
    pub fn elapsed_micros(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_micros() as u64)
    }

    /// Observes the elapsed span into a lazily-resolved histogram — the
    /// lookup closure runs only when the watch is live, so disabled
    /// telemetry pays neither the clock read nor the registry access.
    pub fn observe_into<F>(self, hist: F)
    where
        F: FnOnce() -> &'static Histogram,
    {
        if let Some(start) = self.0 {
            hist().observe(start.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry + exposition
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Holds only leaked `&'static` instruments, so it is `Copy` and can be
/// returned out of the registry lock by value.
#[derive(Clone, Copy)]
enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

fn registry() -> &'static Mutex<BTreeMap<String, Family>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Family>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn register(name: &str, help: &str, labels: &[(&str, &str)], kind: Kind) -> Instrument {
    let labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    let mut reg = registry().lock().expect("obs registry poisoned");
    let family = reg.entry(name.to_string()).or_insert_with(|| Family {
        help: help.to_string(),
        kind,
        series: Vec::new(),
    });
    assert!(
        family.kind == kind,
        "metric family {name:?} registered as {} and requested as {}",
        family.kind.as_str(),
        kind.as_str(),
    );
    if let Some(s) = family.series.iter().find(|s| s.labels == labels) {
        return s.instrument;
    }
    let instrument = match kind {
        Kind::Counter => Instrument::Counter(Box::leak(Box::new(Counter::new()))),
        Kind::Gauge => Instrument::Gauge(Box::leak(Box::new(Gauge::new()))),
        Kind::Histogram => Instrument::Histogram(Box::leak(Box::new(Histogram::new()))),
    };
    family.series.push(Series { labels, instrument });
    instrument
}

/// Registers (or fetches) the counter `name` with the given label set.
/// Call-site caching via the [`counter!`] macro avoids the registry lock on
/// hot paths.
pub fn counter(name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Counter {
    match register(name, help, labels, Kind::Counter) {
        Instrument::Counter(c) => c,
        _ => unreachable!("kind checked in register"),
    }
}

/// Registers (or fetches) the gauge `name` with the given label set.
pub fn gauge(name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Gauge {
    match register(name, help, labels, Kind::Gauge) {
        Instrument::Gauge(g) => g,
        _ => unreachable!("kind checked in register"),
    }
}

/// Registers (or fetches) the histogram `name` with the given label set.
pub fn histogram(name: &str, help: &str, labels: &[(&str, &str)]) -> &'static Histogram {
    match register(name, help, labels, Kind::Histogram) {
        Instrument::Histogram(h) => h,
        _ => unreachable!("kind checked in register"),
    }
}

/// Call-site-cached [`counter`]: resolves the registry entry once per call
/// site and reuses the `&'static Counter` thereafter. Labels must be
/// constant at the call site; dynamic label values go through [`counter`].
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name, $help, &[$(($lk, $lv)),*]))
    }};
}

/// Call-site-cached [`gauge`]; see [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name, $help, &[$(($lk, $lv)),*]))
    }};
}

/// Call-site-cached [`histogram`]; see [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr $(, $lk:expr => $lv:expr)* $(,)?) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::histogram($name, $help, &[$(($lk, $lv)),*]))
    }};
}

fn escape_label(v: &str, out: &mut String) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Renders every registered instrument as Prometheus text exposition
/// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=...}` + `_sum` +
/// `_count` for histograms). Stable family and series order.
pub fn render() -> String {
    use std::fmt::Write;
    let reg = registry().lock().expect("obs registry poisoned");
    let mut out = String::with_capacity(4096);
    for (name, family) in reg.iter() {
        let _ = writeln!(out, "# HELP {name} {}", family.help);
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for series in &family.series {
            match &series.instrument {
                Instrument::Counter(c) => {
                    out.push_str(name);
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {}", c.get());
                }
                Instrument::Gauge(g) => {
                    out.push_str(name);
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {}", g.get());
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let top = snap.iter().rposition(|&n| n > 0).unwrap_or(0);
                    let mut cum = 0u64;
                    for (i, &n) in snap.iter().enumerate().take(top + 1) {
                        cum += n;
                        let _ = write!(out, "{name}_bucket");
                        let le = bucket_bound(i).to_string();
                        write_labels(&mut out, &series.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{name}_bucket");
                    write_labels(&mut out, &series.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {cum}");
                    let _ = write!(out, "{name}_sum");
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {}", h.sum());
                    let _ = write!(out, "{name}_count");
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {cum}");
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition parsing (for digests and tests)
// ---------------------------------------------------------------------------

/// One sample line of a parsed exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name, including `_bucket`/`_sum`/`_count` suffixes.
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether this sample carries every `(key, value)` pair in `subset`.
    pub fn matches(&self, subset: &[(&str, &str)]) -> bool {
        subset.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

/// A parsed Prometheus text exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Parses Prometheus text exposition (the subset [`render`] emits:
    /// `# HELP`/`# TYPE` comments and `name{labels} value` samples).
    pub fn parse(text: &str) -> Result<Exposition, String> {
        let mut samples = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
            let (name, labels, value_part) = match line.find('{') {
                Some(brace) => {
                    let close = line.rfind('}').ok_or_else(|| err("unclosed label block"))?;
                    (
                        line[..brace].to_string(),
                        parse_labels(&line[brace + 1..close], &err)?,
                        line[close + 1..].trim(),
                    )
                }
                None => {
                    let sp = line.find(' ').ok_or_else(|| err("missing value"))?;
                    (line[..sp].to_string(), Vec::new(), line[sp..].trim())
                }
            };
            let value: f64 = match value_part {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                "NaN" => f64::NAN,
                v => v.parse().map_err(|_| err("bad sample value"))?,
            };
            samples.push(Sample { name, labels, value });
        }
        Ok(Exposition { samples })
    }

    /// Every sample named `name` whose labels contain `subset`.
    pub fn find(&self, name: &str, subset: &[(&str, &str)]) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name && s.matches(subset)).collect()
    }

    /// The single sample named `name` matching `subset`, if any.
    pub fn value(&self, name: &str, subset: &[(&str, &str)]) -> Option<f64> {
        self.find(name, subset).first().map(|s| s.value)
    }

    /// Sum of every series of `name` matching `subset` — collapses a
    /// labelled family into one number.
    pub fn sum(&self, name: &str, subset: &[(&str, &str)]) -> f64 {
        // `+ 0.0` normalizes the empty sum: f64's `Sum` identity is `-0.0`,
        // which would print as "-0" in reports.
        self.find(name, subset).iter().map(|s| s.value).sum::<f64>() + 0.0
    }

    /// Quantile estimate from a rendered histogram's `_bucket` samples
    /// matching `subset`. `None` when the histogram is absent or empty.
    pub fn histogram_quantile(&self, name: &str, subset: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut seen = false;
        for s in self.samples.iter().filter(|s| s.name == bucket_name && s.matches(subset)) {
            let le = s.label("le")?;
            seen = true;
            if le == "+Inf" {
                continue;
            }
            let bound: u64 = le.parse().ok()?;
            let idx = if bound == 0 { 0 } else { bucket_index(bound) };
            // Cumulative → non-cumulative happens below; store cumulative.
            buckets[idx] = s.value as u64;
        }
        if !seen {
            return None;
        }
        // De-cumulate in place.
        let mut prev = 0u64;
        for b in buckets.iter_mut() {
            let cur = (*b).max(prev);
            *b = cur - prev;
            prev = cur;
        }
        quantile_from_buckets(&buckets, q)
    }

    /// Distinct family names present (sample names with histogram suffixes
    /// stripped).
    pub fn families(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .samples
            .iter()
            .map(|s| {
                s.name
                    .strip_suffix("_bucket")
                    .or_else(|| s.name.strip_suffix("_sum"))
                    .or_else(|| s.name.strip_suffix("_count"))
                    .unwrap_or(&s.name)
                    .to_string()
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

fn parse_labels(body: &str, err: &dyn Fn(&str) -> String) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| err("label missing ="))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(err("label value not quoted")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, ch) in chars {
            if escaped {
                match ch {
                    'n' => value.push('\n'),
                    c => value.push(c),
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                end = Some(i);
                break;
            } else {
                value.push(ch);
            }
        }
        let end = end.ok_or_else(|| err("unterminated label value"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start().trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// A bounded ring buffer of typed trace events (control-loop decisions,
/// fault firings). Pushes are cheap (one short mutex hold) and never block
/// readers for long; when full, the oldest event is dropped.
///
/// Unlike the numeric instruments, trace pushes are *not* gated on the
/// global enable flag: the decision trail answers "why did the controller
/// pick this config" and must be queryable even when nobody scrapes
/// metrics. Pushers sit on millisecond-scale control paths where one
/// mutex hold is noise.
#[derive(Debug)]
pub struct TraceRing<T> {
    capacity: usize,
    inner: Mutex<RingInner<T>>,
}

#[derive(Debug)]
struct RingInner<T> {
    items: VecDeque<T>,
    pushed: u64,
}

impl<T: Clone> TraceRing<T> {
    pub fn new(capacity: usize) -> TraceRing<T> {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner { items: VecDeque::new(), pushed: 0 }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.items.len() == self.capacity {
            inner.items.pop_front();
        }
        inner.items.push_back(item);
        inner.pushed += 1;
    }

    /// The most recent `n` events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<T> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let skip = inner.items.len().saturating_sub(n);
        inner.items.iter().skip(skip).cloned().collect()
    }

    /// The most recent `n` events satisfying `keep`, oldest first.
    pub fn recent_filtered<F>(&self, n: usize, keep: F) -> Vec<T>
    where
        F: Fn(&T) -> bool,
    {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let mut out: Vec<T> =
            inner.items.iter().rev().filter(|t| keep(t)).take(n).cloned().collect();
        out.reverse();
        out
    }

    /// Total events ever pushed (monotone; not capped by capacity).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").pushed
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace ring poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Metrics HTTP endpoint
// ---------------------------------------------------------------------------

/// A minimal HTTP/1.1 exposition endpoint: every GET (any path) answers
/// `200 text/plain; version=0.0.4` with [`render`]'s output. One thread,
/// one connection at a time — scrape traffic, not serving traffic.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts answering
    /// scrapes on a background thread.
    pub fn start(addr: SocketAddr) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tempo-metrics".to_string())
            .spawn(move || scrape_loop(listener, thread_stop))
            .expect("spawn metrics thread");
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the scrape thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn scrape_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        // Read (and discard) the request head; curl won't send a body.
        let mut buf = [0u8; 4096];
        let mut head = Vec::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 64 * 1024 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let body = render();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global flag or read global counters.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn counters_noop_when_disabled() {
        let _g = flag_lock();
        set_enabled(false);
        let c = Counter::new();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = flag_lock();
        set_enabled(true);
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1126);
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..=4.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((512.0..=1023.0).contains(&p99), "p99 {p99}");
        set_enabled(false);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(3), 7);
    }

    #[test]
    fn stopwatch_reads_no_clock_when_disabled() {
        let _g = flag_lock();
        set_enabled(false);
        let sw = Stopwatch::start();
        assert!(!sw.is_live());
        assert_eq!(sw.elapsed_micros(), None);
        set_enabled(true);
        assert!(Stopwatch::start().is_live());
        set_enabled(false);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let _g = flag_lock();
        set_enabled(true);
        counter("tempo_obs_test_total", "test counter", &[("shard", "0")]).add(7);
        counter("tempo_obs_test_total", "test counter", &[("shard", "1")]).add(3);
        gauge("tempo_obs_test_depth", "test gauge", &[]).set(-4);
        let h = histogram("tempo_obs_test_micros", "test histogram", &[("op", "x")]);
        for v in [1u64, 2, 2, 900] {
            h.observe(v);
        }
        set_enabled(false);

        let text = render();
        assert!(text.contains("# TYPE tempo_obs_test_total counter"));
        assert!(text.contains("# TYPE tempo_obs_test_micros histogram"));
        let exp = Exposition::parse(&text).unwrap();
        assert_eq!(exp.value("tempo_obs_test_total", &[("shard", "0")]), Some(7.0));
        assert_eq!(exp.sum("tempo_obs_test_total", &[]), 10.0);
        assert_eq!(exp.value("tempo_obs_test_depth", &[]), Some(-4.0));
        assert_eq!(exp.value("tempo_obs_test_micros_count", &[("op", "x")]), Some(4.0));
        assert_eq!(exp.value("tempo_obs_test_micros_sum", &[("op", "x")]), Some(905.0));
        let q = exp.histogram_quantile("tempo_obs_test_micros", &[("op", "x")], 0.5).unwrap();
        assert!((1.0..=3.0).contains(&q), "median {q}");
        assert!(exp.families().contains(&"tempo_obs_test_micros".to_string()));
    }

    #[test]
    fn rendered_histogram_count_equals_bucket_sum() {
        let _g = flag_lock();
        set_enabled(true);
        let h = histogram("tempo_obs_torn_micros", "torn-read check", &[]);
        for v in 0..50u64 {
            h.observe(v * 13);
        }
        set_enabled(false);
        let exp = Exposition::parse(&render()).unwrap();
        let count = exp.value("tempo_obs_torn_micros_count", &[]).unwrap();
        let inf = exp
            .find("tempo_obs_torn_micros_bucket", &[("le", "+Inf")])
            .first()
            .map(|s| s.value)
            .unwrap();
        assert_eq!(count, inf, "_count must equal the +Inf cumulative bucket");
        // Cumulative buckets are non-decreasing in le order.
        let buckets = exp.find("tempo_obs_torn_micros_bucket", &[]);
        let mut bounds: Vec<(f64, f64)> = buckets
            .iter()
            .map(|s| {
                let le = s.label("le").unwrap();
                let b = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                (b, s.value)
            })
            .collect();
        bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in bounds.windows(2) {
            assert!(w[1].1 >= w[0].1, "cumulative buckets must be monotone");
        }
    }

    #[test]
    fn trace_ring_bounds_and_orders() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.recent(2), vec![8, 9]);
        assert_eq!(ring.recent(100), vec![6, 7, 8, 9]);
        assert_eq!(ring.recent_filtered(2, |&v| v % 2 == 0), vec![6, 8]);
    }

    #[test]
    fn metrics_server_answers_scrapes() {
        let _g = flag_lock();
        set_enabled(true);
        counter("tempo_obs_http_total", "http smoke", &[]).inc();
        set_enabled(false);
        let server = MetricsServer::start("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"));
        assert!(response.contains("tempo_obs_http_total"));
        server.shutdown();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Exposition::parse("no_value_here").is_err());
        assert!(Exposition::parse("name{unclosed 1").is_err());
        assert!(Exposition::parse("name{k=unquoted} 1").is_err());
        // Comments and blanks are fine.
        assert!(Exposition::parse("# HELP x y\n\n").unwrap().samples.is_empty());
    }
}
