//! Property-based invariants of the RM simulator.
//!
//! These check global guarantees the fair-scheduler engine must uphold for
//! *any* workload and configuration: capacity is never exceeded, max limits
//! are never violated, schedules are causal and deterministic, preemption
//! never fires with timeouts disabled, and accounting identities hold.

use proptest::prelude::*;
use tempo_sim::{
    simulate, AttemptOutcome, ClusterSpec, NoiseModel, RmConfig, Schedule, SimOptions, TenantConfig,
};
use tempo_workload::time::{Time, SEC};
use tempo_workload::trace::{JobSpec, TaskKind, TaskSpec, Trace};

/// A compact generator of arbitrary multi-tenant traces.
fn arb_trace(max_tenants: u16) -> impl Strategy<Value = Trace> {
    let task = (0u8..2, 1u64..120).prop_map(|(kind, secs)| TaskSpec {
        kind: if kind == 0 { TaskKind::Map } else { TaskKind::Reduce },
        duration: secs * SEC,
    });
    let job = (
        0..max_tenants,
        0u64..600,
        prop::collection::vec(task, 1..12),
        prop::option::of(600u64..4000),
        0.0f64..=1.0,
    )
        .prop_map(|(tenant, submit_s, tasks, deadline_s, slowstart)| {
            let submit = submit_s * SEC;
            JobSpec {
                id: 0, // assigned below
                tenant,
                submit,
                deadline: deadline_s.map(|d| submit + d * SEC),
                slowstart,
                tasks,
            }
        });
    prop::collection::vec(job, 1..25).prop_map(|mut jobs| {
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u64;
        }
        let mut t = Trace::new(jobs);
        t.sort_by_submit();
        t
    })
}

fn arb_config(tenants: usize, caps: [u32; 2]) -> impl Strategy<Value = RmConfig> {
    let tenant =
        (0.2f64..5.0, 0u32..6, 1u32..40, prop::option::of(5u64..120), prop::option::of(5u64..120))
            .prop_map(move |(weight, min_s, max_s, fair_to, min_to)| {
                let max =
                    [max_s.max(min_s).min(caps[0].max(1)), max_s.max(min_s).min(caps[1].max(1))];
                TenantConfig {
                    weight,
                    min_share: [min_s.min(max[0]), min_s.min(max[1])],
                    max_share: max,
                    fair_timeout: fair_to.map(|s| s * SEC),
                    min_timeout: min_to.map(|s| s * SEC),
                }
            });
    prop::collection::vec(tenant, tenants..=tenants).prop_map(RmConfig::new)
}

/// Reconstructs per-pool concurrent occupancy from attempts and asserts the
/// cluster capacity and per-tenant max limits were never exceeded.
fn check_capacity_and_limits(sched: &Schedule, cluster: &ClusterSpec, config: &RmConfig) {
    for kind in TaskKind::ALL {
        // Sweep line over launch/end events.
        let mut events: Vec<(Time, i64, usize)> = Vec::new();
        for t in sched.tasks() {
            if t.kind != kind {
                continue;
            }
            for a in t.attempts {
                events.push((a.launch, 1, t.tenant as usize));
                events.push((a.end, -1, t.tenant as usize));
            }
        }
        // Ends sort before starts at the same instant (a slot freed at time t
        // can be reused at time t).
        events.sort_by_key(|&(t, delta, _)| (t, delta));
        let mut total: i64 = 0;
        let mut per_tenant = vec![0i64; config.num_tenants()];
        for (_, delta, tenant) in events {
            total += delta;
            per_tenant[tenant] += delta;
            assert!(
                total <= cluster.capacity(kind) as i64,
                "pool {kind} over capacity: {total} > {}",
                cluster.capacity(kind)
            );
            assert!(
                per_tenant[tenant] <= config.tenants[tenant].max_share[kind.index()] as i64,
                "tenant {tenant} exceeded max share in pool {kind}"
            );
            assert!(total >= 0 && per_tenant[tenant] >= 0, "negative occupancy");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_and_max_limits_hold(
        trace in arb_trace(3),
        config in arb_config(3, [6, 4]),
        noisy in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let cluster = ClusterSpec::new(6, 4);
        let noise = if noisy { NoiseModel::production() } else { NoiseModel::NONE };
        let sched = simulate(&trace, &cluster, &config, &SimOptions { horizon: None, noise, seed });
        check_capacity_and_limits(&sched, &cluster, &config);
    }

    #[test]
    fn schedules_are_causal_and_complete(
        trace in arb_trace(2),
        config in arb_config(2, [5, 3]),
    ) {
        let cluster = ClusterSpec::new(5, 3);
        let sched = simulate(&trace, &cluster, &config, &SimOptions::default());
        // Every job with at least one task eventually finishes (no horizon,
        // no noise), and no attempt precedes its task's runnable time or its
        // job's submission.
        let mut submit_by_job = std::collections::HashMap::new();
        for j in &trace.jobs {
            submit_by_job.insert(j.id, j.submit);
        }
        for j in sched.jobs() {
            prop_assert!(j.finish.is_some(), "job {} never finished", j.id);
            prop_assert!(j.finish.unwrap() >= j.submit);
        }
        for t in sched.tasks() {
            let submit = submit_by_job[&t.job];
            prop_assert!(t.runnable_at >= submit);
            let mut prev_end = 0;
            for a in t.attempts {
                prop_assert!(a.launch >= t.runnable_at, "launch before runnable");
                prop_assert!(a.launch >= prev_end, "overlapping attempts");
                prop_assert!(a.work_start >= a.launch);
                prop_assert!(a.end >= a.work_start);
                prev_end = a.end;
            }
            // Exactly one completed attempt, and it is the last one.
            let completed: Vec<_> =
                t.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Completed).collect();
            prop_assert_eq!(completed.len(), 1);
            prop_assert_eq!(
                t.attempts.last().unwrap().outcome,
                AttemptOutcome::Completed
            );
        }
    }

    #[test]
    fn completed_attempts_run_exactly_their_duration_without_noise(
        trace in arb_trace(2),
        config in arb_config(2, [5, 3]),
    ) {
        let cluster = ClusterSpec::new(5, 3);
        let sched = simulate(&trace, &cluster, &config, &SimOptions::default());
        for t in sched.tasks() {
            for a in t.attempts {
                if a.outcome == AttemptOutcome::Completed {
                    prop_assert_eq!(a.end - a.work_start, t.duration);
                }
            }
        }
    }

    #[test]
    fn no_preemption_when_timeouts_disabled(
        trace in arb_trace(3),
    ) {
        let cluster = ClusterSpec::new(4, 2);
        let config = RmConfig::fair(3);
        let sched = simulate(&trace, &cluster, &config, &SimOptions::default());
        for t in sched.tasks() {
            prop_assert!(!t.was_preempted());
        }
    }

    #[test]
    fn simulation_is_deterministic(
        trace in arb_trace(3),
        config in arb_config(3, [6, 4]),
        seed in 0u64..50,
    ) {
        let cluster = ClusterSpec::new(6, 4);
        let opts = SimOptions { horizon: None, noise: NoiseModel::production(), seed };
        let a = simulate(&trace, &cluster, &config, &opts);
        let b = simulate(&trace, &cluster, &config, &opts);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn horizon_never_increases_completions(
        trace in arb_trace(2),
        config in arb_config(2, [5, 3]),
        horizon_s in 10u64..2000,
    ) {
        let cluster = ClusterSpec::new(5, 3);
        let full = simulate(&trace, &cluster, &config, &SimOptions::default());
        let cut = simulate(
            &trace,
            &cluster,
            &config,
            &SimOptions::default().with_horizon(horizon_s * SEC),
        );
        let horizon = horizon_s * SEC;
        for (f, c) in full.jobs().zip(cut.jobs()) {
            prop_assert_eq!(f.id, c.id);
            match c.finish {
                // A job finished in the truncated run must finish at the same
                // instant in the full run (prefix property of event
                // simulation).
                Some(cf) => {
                    prop_assert!(cf <= horizon);
                    prop_assert_eq!(f.finish, Some(cf));
                }
                None => {
                    // Unfinished in the cut run: the full run can only finish
                    // it at or after... its finish may be before the horizon
                    // only if the job completed exactly at the horizon edge.
                    if let Some(ff) = f.finish {
                        prop_assert!(ff >= horizon,
                            "job finished strictly before the horizon in the full run but not in the cut run");
                    }
                }
            }
        }
    }

    #[test]
    fn work_conservation_single_tenant(
        njobs in 1usize..10,
        width in 1usize..8,
        dur_s in 5u64..50,
    ) {
        // One tenant, no limits: total completion time ≈ total work spread
        // over the pool, i.e. the pool is busy whenever work is pending.
        let jobs: Vec<JobSpec> = (0..njobs)
            .map(|i| JobSpec::new(i as u64, 0, 0, vec![TaskSpec::map(dur_s * SEC); width]))
            .collect();
        let trace = Trace::new(jobs);
        let slots = 4u32;
        let cluster = ClusterSpec::new(slots, 1);
        let sched = simulate(&trace, &cluster, &RmConfig::fair(1), &SimOptions::default());
        let total_work = (njobs * width) as u64 * dur_s * SEC;
        let makespan = sched.jobs().filter_map(|j| j.finish).max().unwrap();
        // Perfect packing bound and the list-scheduling bound.
        let lower = total_work / slots as u64;
        prop_assert!(makespan >= lower);
        prop_assert!(makespan <= lower + dur_s * SEC, "idle slots while work pending");
    }
}
