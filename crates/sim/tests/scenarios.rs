//! Scenario tests for the RM engine: hand-computed schedules for the
//! trickier interactions (two-pool coupling, failure retries, preemption of
//! barrier-waiting reduces, timeout interplay) that unit tests and property
//! tests don't pin down exactly.

use tempo_sim::{
    simulate, AttemptOutcome, ClusterSpec, NoiseModel, RmConfig, SimOptions, TenantConfig,
};
use tempo_workload::time::{Time, MIN, SEC};
use tempo_workload::trace::{JobSpec, TaskKind, TaskSpec, Trace};

fn maps(n: usize, dur: Time) -> Vec<TaskSpec> {
    vec![TaskSpec::map(dur); n]
}

/// Map-pool starvation must not trigger kills in the reduce pool: the two
/// pools have independent starvation tracking.
#[test]
fn preemption_is_per_pool() {
    let trace = Trace::new(vec![
        // A fills both pools with long tasks.
        JobSpec::new(0, 0, 0, {
            let mut t = maps(4, 10 * MIN);
            t.extend(vec![TaskSpec::reduce(10 * MIN); 4]);
            t
        }),
        // B needs only map slots.
        JobSpec::new(1, 1, 30 * SEC, maps(2, MIN)),
    ]);
    let config = RmConfig::new(vec![
        TenantConfig::fair_default(),
        TenantConfig::fair_default().with_min_share(2, 2).with_min_timeout(30 * SEC),
    ]);
    let sched = simulate(&trace, &ClusterSpec::new(4, 4), &config, &SimOptions::default());
    // Kills happen in the map pool only: B has no reduce demand, so A's
    // reduces are untouched.
    let killed_reduces =
        sched.tasks().filter(|t| t.kind == TaskKind::Reduce && t.was_preempted()).count();
    assert_eq!(killed_reduces, 0, "no reduce demand ⇒ no reduce kills");
    let killed_maps =
        sched.tasks().filter(|t| t.kind == TaskKind::Map && t.was_preempted()).count();
    assert_eq!(killed_maps, 2, "B reclaims exactly its min share of maps");
}

/// A reduce preempted while idling at the map barrier is re-queued and the
/// stale finish bookkeeping never fires.
#[test]
fn preempting_a_barrier_waiting_reduce_is_safe() {
    // Tenant 0: one job whose reduce launches early (slowstart 0) while a
    // long map holds the barrier shut. Tenant 1 arrives and preempts the
    // idle reduce via its min-share guarantee.
    let trace = Trace::new(vec![
        JobSpec::new(0, 0, 0, vec![TaskSpec::map(5 * MIN), TaskSpec::reduce(MIN)])
            .with_slowstart(0.0),
        JobSpec::new(1, 1, 10 * SEC, vec![TaskSpec::reduce(30 * SEC)]),
    ]);
    let config = RmConfig::new(vec![
        TenantConfig::fair_default(),
        TenantConfig::fair_default().with_min_share(0, 1).with_min_timeout(20 * SEC),
    ]);
    let sched = simulate(&trace, &ClusterSpec::new(1, 1), &config, &SimOptions::default());
    let reduce0 = sched
        .tasks()
        .find(|t| t.tenant == 0 && t.kind == TaskKind::Reduce)
        .expect("tenant 0 reduce");
    // First attempt: launched at t=0 (slowstart 0), idled, killed at 30s.
    assert_eq!(reduce0.attempts[0].launch, 0);
    assert_eq!(reduce0.attempts[0].outcome, AttemptOutcome::Preempted);
    assert_eq!(reduce0.attempts[0].end, 30 * SEC);
    assert_eq!(reduce0.attempts[0].useful_work(), 0, "it never started real work");
    // Tenant 1's reduce runs 30s..60s; tenant 0's reduce relaunches at 60s,
    // idles until the map barrier opens at 5min, then runs one minute.
    assert_eq!(reduce0.finish(), Some(6 * MIN));
    let reduce1 = sched.tasks().find(|t| t.tenant == 1).expect("tenant 1 reduce");
    assert_eq!(reduce1.attempts[0].launch, 30 * SEC);
    assert_eq!(reduce1.finish(), Some(60 * SEC));
}

/// Failed attempts retry from the back of the queue and eventually finish;
/// wasted time is accounted.
#[test]
fn failures_retry_and_account_waste() {
    let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(30, 20 * SEC))]);
    let noise = NoiseModel { duration_sigma: 0.0, task_failure_prob: 0.3, job_kill_prob: 0.0 };
    let sched = simulate(
        &trace,
        &ClusterSpec::new(3, 1),
        &RmConfig::fair(1),
        &SimOptions { horizon: None, noise, seed: 5 },
    );
    assert!(sched.job(0).finish.is_some(), "retries eventually complete the job");
    let failed_attempts: usize = sched
        .tasks()
        .map(|t| t.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Failed).count())
        .sum();
    assert!(failed_attempts > 0, "30% failure rate must produce failures");
    let wasted: u64 = sched.tasks().map(|t| t.wasted_time()).sum();
    assert!(wasted > 0);
    // Every failed attempt is strictly shorter than the (noise-free) task
    // duration — failures abort mid-run.
    for t in sched.tasks() {
        for a in t.attempts {
            if a.outcome == AttemptOutcome::Failed {
                assert!(a.occupancy() < t.duration, "failure at fraction < 1");
            }
        }
    }
}

/// Killed jobs (DBA intervention) never run and never finish.
#[test]
fn job_kills_drop_whole_jobs() {
    let jobs: Vec<JobSpec> =
        (0..200).map(|i| JobSpec::new(i, 0, i * SEC, maps(2, 10 * SEC))).collect();
    let trace = Trace::new(jobs);
    let noise = NoiseModel { duration_sigma: 0.0, task_failure_prob: 0.0, job_kill_prob: 0.25 };
    let sched = simulate(
        &trace,
        &ClusterSpec::new(8, 1),
        &RmConfig::fair(1),
        &SimOptions { horizon: None, noise, seed: 6 },
    );
    let unfinished = sched.jobs().filter(|j| j.finish.is_none()).count();
    assert!((20..=80).contains(&unfinished), "≈25% of 200 jobs should be killed, got {unfinished}");
    // Killed jobs' tasks never got an attempt.
    for j in sched.jobs().filter(|j| j.finish.is_none()) {
        for t in sched.tasks().filter(|t| t.job == j.id) {
            assert!(t.attempts.is_empty(), "killed job {} ran a task", j.id);
        }
    }
}

/// Fair-level and min-level timeouts coexist: the min level fires first
/// (shorter timeout) and reclaims only the minimum; the fair level follows
/// and tops the tenant up to its fair share.
#[test]
fn two_level_timeouts_escalate() {
    let trace = Trace::new(vec![
        JobSpec::new(0, 0, 0, maps(10, 20 * MIN)),
        JobSpec::new(1, 1, 10 * SEC, maps(10, 10 * MIN)),
    ]);
    let config = RmConfig::new(vec![
        TenantConfig::fair_default(),
        TenantConfig::fair_default()
            .with_min_share(2, 0)
            .with_min_timeout(30 * SEC)
            .with_fair_timeout(3 * MIN),
    ]);
    let sched = simulate(&trace, &ClusterSpec::new(10, 1), &config, &SimOptions::default());
    // Min-level kill at 10s + 30s = 40s: exactly 2 tasks die.
    let kills_at = |t: Time| -> usize {
        sched
            .tasks()
            .flat_map(|task| task.attempts.iter())
            .filter(|a| a.outcome == AttemptOutcome::Preempted && a.end == t)
            .count()
    };
    assert_eq!(kills_at(40 * SEC), 2, "min level reclaims the 2-slot guarantee");
    // Fair-level kill at 10s + 3min: water-filling grants tenant 1 its
    // 2-slot minimum *plus* half the remaining 8 slots, so its fair target
    // is 6 — the check tops it up from 2 with 4 more kills.
    assert_eq!(kills_at(10 * SEC + 3 * MIN), 4, "fair level tops up to the fair share");
}

/// Reduce-only jobs (no map stage) start work immediately.
#[test]
fn reduce_only_jobs_have_no_barrier() {
    let trace = Trace::new(vec![JobSpec::new(0, 0, 0, vec![TaskSpec::reduce(MIN); 3])]);
    let sched =
        simulate(&trace, &ClusterSpec::new(1, 3), &RmConfig::fair(1), &SimOptions::default());
    assert_eq!(sched.job(0).finish, Some(MIN));
    for t in sched.tasks() {
        assert_eq!(t.attempts[0].work_start, t.attempts[0].launch, "no shuffle wait");
    }
}

/// Weights below 1 still get service (no starvation of low-weight tenants
/// by rounding).
#[test]
fn tiny_weights_still_progress() {
    let trace = Trace::new(vec![
        JobSpec::new(0, 0, 0, maps(50, 30 * SEC)),
        JobSpec::new(1, 1, 0, maps(50, 30 * SEC)),
    ]);
    let config = RmConfig::new(vec![
        TenantConfig::fair_default().with_weight(0.05),
        TenantConfig::fair_default().with_weight(5.0),
    ]);
    let sched = simulate(&trace, &ClusterSpec::new(4, 1), &config, &SimOptions::default());
    assert!(sched.job(0).finish.is_some(), "low-weight tenant finishes eventually");
    assert!(sched.job(1).finish.is_some());
    assert!(
        sched.job(1).finish.unwrap() <= sched.job(0).finish.unwrap(),
        "high-weight tenant finishes no later"
    );
}

/// A preempted task that is the *most recent launch* of its own tenant is
/// never selected as a victim for that same tenant's starvation (no
/// self-preemption).
#[test]
fn no_self_preemption() {
    let trace = Trace::new(vec![
        JobSpec::new(0, 0, 0, maps(8, 10 * MIN)),
        JobSpec::new(1, 1, 5 * SEC, maps(8, 10 * MIN)),
    ]);
    let config = RmConfig::new(vec![
        TenantConfig::fair_default().with_min_share(4, 0).with_min_timeout(20 * SEC),
        TenantConfig::fair_default().with_min_share(4, 0).with_min_timeout(20 * SEC),
    ]);
    let sched = simulate(&trace, &ClusterSpec::new(8, 1), &config, &SimOptions::default());
    // Tenant 1 preempts tenant 0 down to its fair share; tenant 0 (still at
    // its fair share) must not then kill tenant 1's fresh tasks in a storm.
    let preempted_of =
        |tenant: u16| sched.tasks().filter(|t| t.tenant == tenant && t.was_preempted()).count();
    assert_eq!(preempted_of(0), 4, "half the pool changes hands once");
    assert_eq!(preempted_of(1), 0, "no retaliatory kills");
}
