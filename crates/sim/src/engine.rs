//! The discrete-event cluster simulator / fast Schedule Predictor.
//!
//! §7.2: "Our implementation computes the cluster resource usage at only the
//! submission time, tentative finish time, and possible preemption time of
//! each task" — the time-warp style of simulation. This engine is exactly
//! that: state is only touched at job arrivals, task finishes/failures, and
//! preemption-timeout checks; between events nothing happens. One engine
//! serves both roles in the paper's architecture:
//!
//! * with [`NoiseModel::NONE`] it is the deterministic **Schedule Predictor**
//!   the What-if Model queries;
//! * with production noise it stands in for the **observed** cluster, which
//!   is how the Table 2 prediction-error experiment gets its ground truth.
//!
//! Scheduling semantics implemented (matching §3.2):
//! * allocation targets computed by a pluggable [`SchedulerBackend`]
//!   (selected by [`RmConfig::policy`]) — the default [`FairShare`] backend
//!   is weighted max-min fair sharing per pool with min/max limits, and
//!   DRF / Capacity / FIFO backends swap in without touching the engine,
//! * work-conserving redistribution of unused quota,
//! * two-level preemption timeouts (below-fair-share and below-min-share)
//!   whose victims the backend selects (default: the *most recently
//!   launched* tasks of over-share tenants); killed tasks restart from
//!   scratch (lost work, Figure 1),
//! * map→reduce slow-start: reduces become runnable after a configurable
//!   fraction of maps complete, but only begin useful work once all maps
//!   finish — early-launched reduces idle in their containers.
//!
//! [`SchedulerBackend`]: tempo_sched::SchedulerBackend
//! [`FairShare`]: tempo_sched::FairShare

use crate::calendar::CalendarQueue;
use crate::config::{ClusterSpec, RmConfig};
use crate::noise::NoiseModel;
use crate::record::{Attempt, AttemptOutcome, JobRecord, Schedule, ScheduleColumns};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use tempo_sched::{SchedulerBackend, TenantDemand, VictimCandidate, NUM_RESOURCES};
use tempo_workload::time::Time;
use tempo_workload::{TaskKind, Trace, NUM_KINDS};

// The backends allocate over exactly the engine's container pools.
const _: () = assert!(NUM_RESOURCES == NUM_KINDS);

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Hard stop; running tasks are recorded as cut off. `None` runs until
    /// every job completes.
    pub horizon: Option<Time>,
    pub noise: NoiseModel,
    /// RNG seed for the noise stream (ignored when noise is
    /// [`NoiseModel::NONE`], which consumes no randomness).
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self { horizon: None, noise: NoiseModel::NONE, seed: 0 }
    }
}

impl SimOptions {
    /// The Schedule Predictor setting: no noise, run to completion.
    pub fn deterministic() -> Self {
        Self::default()
    }

    /// A production-like noisy run.
    pub fn noisy(seed: u64) -> Self {
        Self { horizon: None, noise: NoiseModel::production(), seed }
    }

    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }
}

/// Simulates `trace` on `cluster` under `config`.
///
/// Deterministic: identical inputs (including seed) produce identical
/// schedules. Panics if the trace or config fails validation, or if the trace
/// references a tenant id with no configuration entry.
///
/// Scratch buffers (event heap, per-task/tenant state) come from a
/// thread-local [`SimPool`], so repeated calls on one thread — the
/// predict→optimize hot path — reuse their allocations. Callers that want
/// explicit control over the pool use [`simulate_pooled`].
pub fn simulate(
    trace: &Trace,
    cluster: &ClusterSpec,
    config: &RmConfig,
    opts: &SimOptions,
) -> Schedule {
    thread_local! {
        static SCRATCH: std::cell::RefCell<SimPool> = std::cell::RefCell::new(SimPool::new());
    }
    SCRATCH.with(|pool| simulate_pooled(trace, cluster, config, opts, &mut pool.borrow_mut()))
}

/// [`simulate`] with an explicit scratch pool: state vectors and the event
/// heap are taken from (and returned to) `pool`, so a caller looping over
/// many simulations pays the allocation cost once.
pub fn simulate_pooled(
    trace: &Trace,
    cluster: &ClusterSpec,
    config: &RmConfig,
    opts: &SimOptions,
    pool: &mut SimPool,
) -> Schedule {
    {
        trace.validate().expect("invalid trace");
        config.validate().expect("invalid RM config");
        if let Some(max_tenant) = trace.jobs.iter().map(|j| j.tenant).max() {
            assert!(
                (max_tenant as usize) < config.num_tenants(),
                "trace references tenant {max_tenant} but config has {} tenants",
                config.num_tenants()
            );
        }
    }
    Engine::new(trace, cluster, config, opts, pool).run()
}

type TaskId = u32;
type JobIdx = u32;

const NO_SLOT: u32 = u32::MAX;
/// Null link in the pooled attempt arena's per-task chains.
const NO_ATT: u32 = u32::MAX;

/// Which starvation level a preemption check guards (§3.2's two timeout
/// levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Fair = 0,
    Min = 1,
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    JobArrive(JobIdx),
    /// Tentative finish (or mid-run failure) of a task attempt; `epoch`
    /// invalidates events left over from preempted attempts.
    TaskFinish {
        task: TaskId,
        epoch: u32,
    },
    PreemptCheck {
        tenant: u16,
        pool: u8,
        level: Level,
        since: Time,
    },
}

struct TaskState {
    kind: TaskKind,
    job: JobIdx,
    tenant: u16,
    duration: Time,
    runnable_at: Time,
    /// Head/tail of this task's attempt chain in the pool's attempt arena
    /// ([`NO_ATT`] while empty). Attempts live in one pooled slab instead of
    /// a per-task `Vec`, so restart-heavy runs allocate nothing per task.
    first_att: u32,
    last_att: u32,
    // Current attempt (valid while `running`).
    running: bool,
    launch: Time,
    launch_seq: u64,
    work_start: Option<Time>,
    eff_duration: Time,
    fail_frac: Option<f64>,
    epoch: u32,
    /// Position in the owner tenant's `running` vector (NO_SLOT if idle).
    run_slot: u32,
}

struct JobState {
    maps_total: u32,
    maps_done: u32,
    tasks_remaining: u32,
    maps_done_at: Option<Time>,
    reduces_released: bool,
    finish: Option<Time>,
    /// Reduce task ids held back until the slow-start threshold.
    held_reduces: Vec<TaskId>,
    /// Launched reduces idling for the map barrier.
    waiting_reduces: Vec<TaskId>,
}

struct TenantState {
    queues: [VecDeque<TaskId>; NUM_KINDS],
    running: [Vec<TaskId>; NUM_KINDS],
    /// `starved_since[level][pool]`.
    starved_since: [[Option<Time>; NUM_KINDS]; 2],
}

impl TenantState {
    fn new() -> Self {
        Self {
            queues: [VecDeque::new(), VecDeque::new()],
            running: [Vec::new(), Vec::new()],
            starved_since: [[None; NUM_KINDS]; 2],
        }
    }

    /// Clears per-run state while keeping the queue/running allocations.
    fn reset(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        for r in &mut self.running {
            r.clear();
        }
        self.starved_since = [[None; NUM_KINDS]; 2];
    }
}

/// Reusable scratch state for the simulator.
///
/// One run of the engine needs an event heap, per-task/per-job/per-tenant
/// state vectors, and allocation scratch buffers. On the predict→optimize
/// hot path the What-if Model runs thousands of simulations back to back, so
/// re-allocating all of that per call dominates small-trace runs. A
/// `SimPool` owns those buffers and [`simulate_pooled`] reuses them across
/// calls; every buffer is fully reset per run, so pooling never changes
/// results.
#[derive(Default)]
pub struct SimPool {
    /// Pending events, keyed `(time, insertion-seq)` — a calendar queue:
    /// amortized O(1) insert/pop on the dense event sets the predictor
    /// produces, with the exact pop order of the old binary heap.
    events: CalendarQueue<EventKind>,
    tasks: Vec<TaskState>,
    jobs: Vec<JobState>,
    /// First task id of each job.
    task_offsets: Vec<u32>,
    /// Slab of task attempts, chained per task through `att_next`
    /// (task-order is restored at finalize when the chains are flattened
    /// into the schedule's columnar attempt spans).
    att_arena: Vec<Attempt>,
    att_next: Vec<u32>,
    tenants: Vec<TenantState>,
    /// Allocation targets per tenant per pool, refreshed by
    /// `compute_targets`.
    targets: Vec<[u32; NUM_KINDS]>,
    /// Scratch buffers reused across reschedules.
    demands: Vec<TenantDemand>,
    pool_targets: Vec<u32>,
    victims: Vec<VictimCandidate>,
    victim_tasks: Vec<TaskId>,
}

impl SimPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all buffers for a fresh run over `trace`/`config`.
    fn reset(&mut self, trace: &Trace, config: &RmConfig) {
        self.events.clear();
        self.tasks.clear();
        self.jobs.clear();
        self.task_offsets.clear();
        self.att_arena.clear();
        self.att_next.clear();
        self.targets.clear();
        self.demands.clear();
        self.pool_targets.clear();
        self.victims.clear();
        self.victim_tasks.clear();

        self.tasks.reserve(trace.num_tasks());
        self.jobs.reserve(trace.jobs.len());
        self.task_offsets.reserve(trace.jobs.len());
        let mut offset = 0u32;
        for spec in &trace.jobs {
            self.task_offsets.push(offset);
            offset += spec.tasks.len() as u32;
            let maps_total = spec.map_count() as u32;
            self.jobs.push(JobState {
                maps_total,
                maps_done: 0,
                tasks_remaining: spec.tasks.len() as u32,
                maps_done_at: None,
                reduces_released: false,
                finish: None,
                held_reduces: Vec::new(),
                waiting_reduces: Vec::new(),
            });
            for (jix, t) in std::iter::repeat(self.jobs.len() - 1).zip(spec.tasks.iter()) {
                self.tasks.push(TaskState {
                    kind: t.kind,
                    job: jix as JobIdx,
                    tenant: spec.tenant,
                    duration: t.duration,
                    runnable_at: 0,
                    first_att: NO_ATT,
                    last_att: NO_ATT,
                    running: false,
                    launch: 0,
                    launch_seq: 0,
                    work_start: None,
                    eff_duration: 0,
                    fail_frac: None,
                    epoch: 0,
                    run_slot: NO_SLOT,
                });
            }
        }

        let num_tenants = config.num_tenants().max(1);
        self.tenants.truncate(num_tenants);
        for t in &mut self.tenants {
            t.reset();
        }
        while self.tenants.len() < num_tenants {
            self.tenants.push(TenantState::new());
        }
    }
}

struct Engine<'a> {
    trace: &'a Trace,
    cluster: &'a ClusterSpec,
    config: &'a RmConfig,
    noise: NoiseModel,
    horizon: Option<Time>,
    rng: StdRng,
    now: Time,
    launch_counter: u64,
    free: [u32; NUM_KINDS],
    /// The allocation policy ([`RmConfig::policy`]).
    backend: Box<dyn SchedulerBackend + Send>,
    /// Pools whose demand inputs (queue/running contents) may have changed
    /// since the last `compute_targets` — only these need re-allocation.
    stale_targets: [bool; NUM_KINDS],
    /// Pools mutated since their last launch/starvation pass. A pool with a
    /// clear flag was left at a launch fixpoint with its starvation timers
    /// current, so `reschedule` can skip it entirely: re-running the passes
    /// on untouched state provably makes no decision.
    needs_pass: [bool; NUM_KINDS],
    /// All growable per-run state, borrowed from the caller's pool.
    pool: &'a mut SimPool,
}

impl<'a> Engine<'a> {
    fn new(
        trace: &'a Trace,
        cluster: &'a ClusterSpec,
        config: &'a RmConfig,
        opts: &SimOptions,
        pool: &'a mut SimPool,
    ) -> Self {
        pool.reset(trace, config);
        let mut engine = Engine {
            trace,
            cluster,
            config,
            noise: opts.noise,
            horizon: opts.horizon,
            rng: StdRng::seed_from_u64(opts.seed),
            now: 0,
            launch_counter: 0,
            free: [cluster.capacity(TaskKind::Map), cluster.capacity(TaskKind::Reduce)],
            backend: config.policy.backend(),
            stale_targets: [true; NUM_KINDS],
            needs_pass: [true; NUM_KINDS],
            pool,
        };
        for (jix, spec) in trace.jobs.iter().enumerate() {
            engine.push_event(spec.submit, EventKind::JobArrive(jix as JobIdx));
        }
        engine
    }

    fn push_event(&mut self, time: Time, kind: EventKind) {
        // The queue assigns insertion sequence numbers, preserving the FIFO
        // tie-break at equal times the event heap used.
        self.pool.events.push(time, kind);
    }

    /// Records that `pool`'s queue/running state changed: its targets are
    /// stale and it needs a launch/starvation pass at the next reschedule.
    #[inline]
    fn touch(&mut self, pool: usize) {
        self.stale_targets[pool] = true;
        self.needs_pass[pool] = true;
    }

    fn run(mut self) -> Schedule {
        let hard_horizon = self.horizon.unwrap_or(Time::MAX);
        let mut last_time = 0;
        // Tally events locally and flush once after the loop: one atomic add
        // per run instead of per event, and never a clock read — this path
        // must stay deterministic.
        let mut popped: u64 = 0;
        while let Some((time, kind)) = self.pool.events.pop() {
            if time > hard_horizon {
                break;
            }
            self.now = time;
            last_time = time;
            popped += 1;
            self.handle(kind);
            // Drain all events at the same instant before rescheduling, so a
            // burst of arrivals is allocated against in one pass.
            while let Some(kind2) = self.pool.events.pop_at(self.now) {
                popped += 1;
                self.handle(kind2);
            }
            self.reschedule();
        }
        tempo_obs::counter!("tempo_sim_runs_total", "Discrete-event simulations completed").inc();
        tempo_obs::counter!("tempo_sim_events_total", "Events popped across all simulation runs")
            .add(popped);
        let horizon = self.horizon.unwrap_or(last_time);
        self.finalize(horizon)
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::JobArrive(jix) => self.on_job_arrive(jix),
            EventKind::TaskFinish { task, epoch } => self.on_task_finish(task, epoch),
            EventKind::PreemptCheck { tenant, pool, level, since } => {
                self.on_preempt_check(tenant, pool as usize, level, since)
            }
        }
    }

    fn on_job_arrive(&mut self, jix: JobIdx) {
        let spec = &self.trace.jobs[jix as usize];
        if !self.noise.is_none() && self.noise.job_killed(&mut self.rng) {
            // Killed at submission: the job never runs; finish stays None and
            // its tasks never become runnable.
            self.pool.jobs[jix as usize].tasks_remaining = 0;
            return;
        }
        let tenant = spec.tenant as usize;
        let base = self.pool.task_offsets[jix as usize];
        let ntasks = spec.tasks.len() as u32;
        let mut held = Vec::new();
        for i in 0..ntasks {
            let tid = base + i;
            match self.pool.tasks[tid as usize].kind {
                TaskKind::Map => {
                    self.pool.tasks[tid as usize].runnable_at = self.now;
                    self.pool.tenants[tenant].queues[TaskKind::Map.index()].push_back(tid);
                    self.touch(TaskKind::Map.index());
                }
                TaskKind::Reduce => held.push(tid),
            }
        }
        {
            let job = &mut self.pool.jobs[jix as usize];
            job.held_reduces = held;
            if job.maps_total == 0 {
                job.maps_done_at = Some(self.now);
            }
        }
        self.maybe_release_reduces(jix);
    }

    /// Moves held reduces into the runnable queue once the slow-start
    /// threshold `ceil(slowstart × maps_total)` is met.
    fn maybe_release_reduces(&mut self, jix: JobIdx) {
        let slowstart = self.trace.jobs[jix as usize].slowstart;
        let tenant = self.trace.jobs[jix as usize].tenant as usize;
        let held = {
            let job = &mut self.pool.jobs[jix as usize];
            if job.reduces_released {
                return;
            }
            let threshold = (slowstart * job.maps_total as f64).ceil() as u32;
            if job.maps_done < threshold {
                return;
            }
            job.reduces_released = true;
            std::mem::take(&mut job.held_reduces)
        };
        for tid in held {
            self.pool.tasks[tid as usize].runnable_at = self.now;
            self.pool.tenants[tenant].queues[TaskKind::Reduce.index()].push_back(tid);
            self.touch(TaskKind::Reduce.index());
        }
    }

    fn on_task_finish(&mut self, tid: TaskId, epoch: u32) {
        {
            let task = &self.pool.tasks[tid as usize];
            if !task.running || task.epoch != epoch {
                return; // Stale event from a preempted attempt.
            }
        }
        let failed = self.pool.tasks[tid as usize].fail_frac.is_some();
        let outcome = if failed { AttemptOutcome::Failed } else { AttemptOutcome::Completed };
        self.release_container(tid, outcome);
        let (tenant, kind, jix) = {
            let t = &self.pool.tasks[tid as usize];
            (t.tenant as usize, t.kind, t.job)
        };
        if failed {
            // Retry from scratch at the back of the queue.
            self.pool.tenants[tenant].queues[kind.index()].push_back(tid);
            return;
        }
        let mut maps_all_done = false;
        let mut job_done = false;
        {
            let job = &mut self.pool.jobs[jix as usize];
            job.tasks_remaining -= 1;
            if kind == TaskKind::Map {
                job.maps_done += 1;
                if job.maps_done == job.maps_total {
                    job.maps_done_at = Some(self.now);
                    maps_all_done = true;
                }
            }
            if job.tasks_remaining == 0 && job.finish.is_none() {
                job.finish = Some(self.now);
                job_done = true;
            }
        }
        if maps_all_done {
            // Early-launched reduces begin their real work now.
            let waiting = std::mem::take(&mut self.pool.jobs[jix as usize].waiting_reduces);
            for rid in waiting {
                self.begin_reduce_work(rid);
            }
        }
        if kind == TaskKind::Map && !job_done {
            self.maybe_release_reduces(jix);
        }
    }

    /// Records the end of the current attempt (appending it to the pooled
    /// attempt arena, chained onto the task) and frees its container.
    fn release_container(&mut self, tid: TaskId, outcome: AttemptOutcome) {
        let now = self.now;
        let p = &mut *self.pool;
        let (pool, tenant, slot) = {
            let task = &mut p.tasks[tid as usize];
            debug_assert!(task.running);
            let att_ix = p.att_arena.len() as u32;
            p.att_arena.push(Attempt {
                launch: task.launch,
                work_start: task.work_start.unwrap_or(now.max(task.launch)),
                end: now,
                outcome,
            });
            p.att_next.push(NO_ATT);
            if task.last_att == NO_ATT {
                task.first_att = att_ix;
            } else {
                p.att_next[task.last_att as usize] = att_ix;
            }
            task.last_att = att_ix;
            task.running = false;
            task.fail_frac = None;
            task.work_start = None;
            let slot = task.run_slot as usize;
            task.run_slot = NO_SLOT;
            (task.kind.index(), task.tenant as usize, slot)
        };
        let running = &mut p.tenants[tenant].running[pool];
        debug_assert_eq!(running[slot], tid);
        running.swap_remove(slot);
        let moved = running.get(slot).copied();
        if let Some(moved) = moved {
            p.tasks[moved as usize].run_slot = slot as u32;
        }
        self.free[pool] += 1;
        self.touch(pool);
    }

    /// Starts the clock on a reduce that was idling for the map barrier.
    fn begin_reduce_work(&mut self, tid: TaskId) {
        let (finish_at, epoch) = {
            let task = &mut self.pool.tasks[tid as usize];
            if !task.running {
                return; // Preempted while waiting.
            }
            task.work_start = Some(self.now);
            let finish_at = match task.fail_frac {
                Some(frac) => self.now + ((task.eff_duration as f64 * frac).round() as Time).max(1),
                None => self.now + task.eff_duration,
            };
            (finish_at, task.epoch)
        };
        self.push_event(finish_at, EventKind::TaskFinish { task: tid, epoch });
    }

    fn launch(&mut self, tid: TaskId) {
        let (duration, kind, jix, tenant) = {
            let t = &self.pool.tasks[tid as usize];
            (t.duration, t.kind, t.job, t.tenant as usize)
        };
        let eff = if self.noise.is_none() {
            duration
        } else {
            self.noise.jitter_duration(&mut self.rng, duration)
        };
        let fail =
            if self.noise.is_none() { None } else { self.noise.attempt_failure(&mut self.rng) };
        let maps_done = self.pool.jobs[jix as usize].maps_done_at;
        let pool = kind.index();

        let epoch = {
            let task = &mut self.pool.tasks[tid as usize];
            task.running = true;
            task.launch = self.now;
            task.launch_seq = self.launch_counter;
            task.epoch = task.epoch.wrapping_add(1);
            task.eff_duration = eff;
            task.fail_frac = fail;
            task.epoch
        };
        self.launch_counter += 1;
        self.free[pool] -= 1;
        self.touch(pool);
        let slot = {
            let running = &mut self.pool.tenants[tenant].running[pool];
            running.push(tid);
            (running.len() - 1) as u32
        };
        self.pool.tasks[tid as usize].run_slot = slot;

        let work_begins = match kind {
            TaskKind::Map => Some(self.now),
            TaskKind::Reduce => maps_done.map(|m| m.max(self.now)),
        };
        match work_begins {
            Some(start) => {
                let finish_at = {
                    let task = &mut self.pool.tasks[tid as usize];
                    task.work_start = Some(start);
                    match task.fail_frac {
                        Some(frac) => {
                            start + ((task.eff_duration as f64 * frac).round() as Time).max(1)
                        }
                        None => start + task.eff_duration,
                    }
                };
                self.push_event(finish_at, EventKind::TaskFinish { task: tid, epoch });
            }
            None => {
                // Reduce launched before the barrier: idles until maps_done.
                self.pool.jobs[jix as usize].waiting_reduces.push(tid);
            }
        }
    }

    /// Refreshes the per-tenant allocation targets from the current demand
    /// vectors — but only for pools whose demand inputs changed since the
    /// last refresh (`stale_targets`). Backends that allocate pools
    /// independently recompute just the touched pool's column; coupled
    /// backends (DRF) fall back to a whole-vector allocation whenever any
    /// pool is stale. Targets for untouched pools are unchanged by
    /// construction, so skipping them is behaviour-identical.
    fn compute_targets(&mut self) {
        let first = self.pool.targets.len() != self.pool.tenants.len();
        let stale = if first { [true; NUM_KINDS] } else { self.stale_targets };
        if !(stale[0] || stale[1]) {
            return;
        }
        self.stale_targets = [false; NUM_KINDS];
        self.pool.demands.clear();
        for (tix, tstate) in self.pool.tenants.iter().enumerate() {
            let cfg = &self.config.tenants[tix];
            let mut demand = [0u32; NUM_KINDS];
            let mut stamp = [u64::MAX; NUM_KINDS];
            for pool in 0..NUM_KINDS {
                let d = (tstate.running[pool].len() + tstate.queues[pool].len()) as u64;
                demand[pool] = d.min(u32::MAX as u64) as u32;
                // Head-of-line arrival time (FIFO ordering); preempted work
                // re-queued at the front keeps its original arrival.
                if let Some(&front) = tstate.queues[pool].front() {
                    stamp[pool] = self.pool.tasks[front as usize].runnable_at;
                }
            }
            self.pool.demands.push(TenantDemand {
                weight: cfg.weight,
                demand,
                min_share: cfg.min_share,
                max_share: cfg.max_share,
                stamp,
            });
        }
        let capacity = [self.cluster.pools[0].capacity, self.cluster.pools[1].capacity];
        if !first && stale[0] != stale[1] {
            let r = if stale[0] { 0 } else { 1 };
            let mut out = std::mem::take(&mut self.pool.pool_targets);
            let done = self.backend.allocate_pool(r, capacity[r], &self.pool.demands, &mut out);
            if done {
                for (t, &v) in out.iter().enumerate() {
                    self.pool.targets[t][r] = v;
                }
            }
            self.pool.pool_targets = out;
            if done {
                return;
            }
        }
        self.backend.allocate(&capacity, &self.pool.demands, &mut self.pool.targets);
        // A whole-vector recompute may have moved targets in pools that were
        // not themselves touched (coupled policies like DRF): both pools need
        // a launch/starvation pass against their possibly-new targets.
        self.needs_pass = [true; NUM_KINDS];
    }

    fn reschedule(&mut self) {
        if !(self.needs_pass[0] || self.needs_pass[1]) {
            return;
        }
        // Refresh targets first: a coupled-backend recompute widens
        // `needs_pass` to both pools.
        self.compute_targets();
        let work = self.needs_pass;
        self.needs_pass = [false; NUM_KINDS];
        for (pool, &dirty) in work.iter().enumerate() {
            if dirty {
                self.launch_pass(pool);
                self.update_starvation(pool);
            }
        }
    }

    fn launch_pass(&mut self, pool: usize) {
        // Primary pass: fill deficits against fair targets, most-deprived
        // tenant first (deterministic tie-break on tenant index).
        while self.free[pool] > 0 {
            let mut best: Option<(i64, usize)> = None;
            for (tix, tstate) in self.pool.tenants.iter().enumerate() {
                if tstate.queues[pool].is_empty() {
                    continue;
                }
                let running = tstate.running[pool].len() as i64;
                let deficit = self.pool.targets[tix][pool] as i64 - running;
                if deficit <= 0 {
                    continue;
                }
                if best.is_none_or(|(d, _)| deficit > d) {
                    best = Some((deficit, tix));
                }
            }
            let Some((_, tix)) = best else { break };
            let tid = self.pool.tenants[tix].queues[pool].pop_front().expect("non-empty queue");
            self.launch(tid);
        }
        // Secondary pass (work conservation despite integer rounding): any
        // queued task may take a free slot as long as its tenant stays under
        // its max limit.
        while self.free[pool] > 0 {
            let mut chosen: Option<usize> = None;
            for (tix, tstate) in self.pool.tenants.iter().enumerate() {
                if tstate.queues[pool].is_empty() {
                    continue;
                }
                if (tstate.running[pool].len() as u64)
                    < self.config.tenants[tix].max_share[pool] as u64
                {
                    chosen = Some(tix);
                    break;
                }
            }
            let Some(tix) = chosen else { break };
            let tid = self.pool.tenants[tix].queues[pool].pop_front().expect("non-empty queue");
            self.launch(tid);
        }
    }

    fn update_starvation(&mut self, pool: usize) {
        for tix in 0..self.pool.tenants.len() {
            let (min_starved, fair_starved, min_timeout, fair_timeout) = {
                let cfg = &self.config.tenants[tix];
                let tstate = &self.pool.tenants[tix];
                let running = tstate.running[pool].len() as u32;
                let queued = tstate.queues[pool].len() as u32;
                let eff_demand = running.saturating_add(queued).min(cfg.max_share[pool]);
                let min_entitle = cfg.min_share[pool].min(eff_demand);
                let target = self.pool.targets[tix][pool];
                (
                    queued > 0 && running < min_entitle,
                    queued > 0 && running < target,
                    cfg.min_timeout,
                    cfg.fair_timeout,
                )
            };
            self.track_level(tix, pool, Level::Min, min_starved, min_timeout);
            self.track_level(tix, pool, Level::Fair, fair_starved, fair_timeout);
        }
    }

    fn track_level(
        &mut self,
        tix: usize,
        pool: usize,
        level: Level,
        starved: bool,
        timeout: Option<Time>,
    ) {
        let lix = level as usize;
        if !starved || timeout.is_none() {
            self.pool.tenants[tix].starved_since[lix][pool] = None;
            return;
        }
        if self.pool.tenants[tix].starved_since[lix][pool].is_none() {
            let since = self.now;
            self.pool.tenants[tix].starved_since[lix][pool] = Some(since);
            let at = since.saturating_add(timeout.expect("checked above"));
            self.push_event(
                at,
                EventKind::PreemptCheck { tenant: tix as u16, pool: pool as u8, level, since },
            );
        }
    }

    fn on_preempt_check(&mut self, tenant: u16, pool: usize, level: Level, since: Time) {
        let tix = tenant as usize;
        let lix = level as usize;
        if self.pool.tenants[tix].starved_since[lix][pool] != Some(since) {
            return; // Starvation cleared (or re-armed) since this was scheduled.
        }
        // Recompute entitlement from live demand.
        self.compute_targets();
        let (running, entitle) = {
            let cfg = &self.config.tenants[tix];
            let tstate = &self.pool.tenants[tix];
            let running = tstate.running[pool].len() as u32;
            let queued = tstate.queues[pool].len() as u32;
            let eff_demand = running.saturating_add(queued).min(cfg.max_share[pool]);
            let entitle = match level {
                Level::Min => cfg.min_share[pool].min(eff_demand),
                Level::Fair => self.pool.targets[tix][pool],
            };
            (running, entitle)
        };
        let mut needed = entitle.saturating_sub(running);
        // Offer the backend every running task of tenants above their
        // target and kill its pick, until the deficit is covered — never
        // dragging a victim below its own target. The default backend policy
        // kills the most recently launched task (Hadoop's fair-scheduler
        // preemption).
        while needed > 0 {
            self.pool.victims.clear();
            self.pool.victim_tasks.clear();
            for (vix, vstate) in self.pool.tenants.iter().enumerate() {
                if vix == tix {
                    continue;
                }
                if (vstate.running[pool].len() as u32) <= self.pool.targets[vix][pool] {
                    continue;
                }
                for &tid in &vstate.running[pool] {
                    self.pool.victims.push(VictimCandidate {
                        tenant: vix,
                        launch_seq: self.pool.tasks[tid as usize].launch_seq,
                    });
                    self.pool.victim_tasks.push(tid);
                }
            }
            let Some(pick) = self.backend.select_victim(&self.pool.victims) else { break };
            let tid = self.pool.victim_tasks[pick];
            self.preempt_task(tid);
            needed -= 1;
        }
        // Clear the marker; reschedule() (called by the event loop) launches
        // the starved tenant into the freed slots and re-arms the timer if it
        // is still below entitlement.
        self.pool.tenants[tix].starved_since[lix][pool] = None;
    }

    fn preempt_task(&mut self, tid: TaskId) {
        let jix = self.pool.tasks[tid as usize].job;
        // Drop from the barrier-waiting list if it was an idle reduce.
        let waiting = &mut self.pool.jobs[jix as usize].waiting_reduces;
        if let Some(pos) = waiting.iter().position(|&w| w == tid) {
            waiting.swap_remove(pos);
        }
        self.release_container(tid, AttemptOutcome::Preempted);
        // Preempted work re-queues at the front: the tenant was entitled to
        // run it already.
        let (tenant, pool) = {
            let task = &self.pool.tasks[tid as usize];
            (task.tenant as usize, task.kind.index())
        };
        self.pool.tenants[tenant].queues[pool].push_front(tid);
    }

    /// Flattens the pooled run state into the columnar schedule: job columns
    /// from the job table, task columns in task order, and each task's
    /// attempt chain walked out of the arena into a contiguous task-major
    /// span. The arena itself stays in the pool for the next run — only the
    /// output columns are freshly allocated.
    fn finalize(mut self, horizon: Time) -> Schedule {
        self.now = horizon;
        // Running tasks at the horizon are cut off (container still held).
        for tid in 0..self.pool.tasks.len() as u32 {
            if self.pool.tasks[tid as usize].running {
                self.release_container(tid, AttemptOutcome::CutOff);
            }
        }
        let trace = self.trace;
        let mut columns = ScheduleColumns::with_capacity(
            horizon,
            [self.cluster.capacity(TaskKind::Map), self.cluster.capacity(TaskKind::Reduce)],
            self.pool.jobs.len(),
            self.pool.tasks.len(),
            self.pool.att_arena.len(),
        );
        for (jix, job) in self.pool.jobs.iter().enumerate() {
            let spec = &trace.jobs[jix];
            columns.push_job(JobRecord {
                id: spec.id,
                tenant: spec.tenant,
                submit: spec.submit,
                finish: job.finish,
                deadline: spec.deadline,
                map_count: spec.map_count() as u32,
                reduce_count: spec.reduce_count() as u32,
            });
        }
        let arena = &self.pool.att_arena;
        let next = &self.pool.att_next;
        for t in &self.pool.tasks {
            // Walk this task's arena chain lazily; `push_task` owns every
            // column invariant (spans, denormalized tenant/kind, preempt
            // counts).
            let chain =
                std::iter::successors((t.first_att != NO_ATT).then_some(t.first_att), |&ix| {
                    let n = next[ix as usize];
                    (n != NO_ATT).then_some(n)
                })
                .map(|ix| arena[ix as usize]);
            columns.push_task(
                trace.jobs[t.job as usize].id,
                t.tenant,
                t.kind,
                t.runnable_at,
                t.duration,
                chain,
            );
        }
        Schedule { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantConfig;
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn one_pool_cluster(map_slots: u32) -> ClusterSpec {
        ClusterSpec::new(map_slots, 0)
    }

    fn maps(n: usize, dur: Time) -> Vec<TaskSpec> {
        vec![TaskSpec::map(dur); n]
    }

    #[test]
    fn single_job_runs_to_completion() {
        let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(4, 10 * SEC))]);
        let sched =
            simulate(&trace, &one_pool_cluster(2), &RmConfig::fair(1), &SimOptions::default());
        // 4 tasks on 2 slots: two waves → finish at 20s.
        assert_eq!(sched.job(0).finish, Some(20 * SEC));
        assert_eq!(sched.num_tasks(), 4);
        assert!(sched.tasks().all(|t| t.finish().is_some()));
        // First two tasks start immediately, next two wait 10s.
        let mut waits: Vec<Time> = sched.tasks().filter_map(|t| t.wait_time()).collect();
        waits.sort_unstable();
        assert_eq!(waits, vec![0, 0, 10 * SEC, 10 * SEC]);
    }

    #[test]
    fn map_reduce_barrier() {
        let job = JobSpec::new(
            0,
            0,
            0,
            vec![TaskSpec::map(10 * SEC), TaskSpec::map(30 * SEC), TaskSpec::reduce(20 * SEC)],
        );
        let trace = Trace::new(vec![job]);
        let cluster = ClusterSpec::new(2, 1);
        let sched = simulate(&trace, &cluster, &RmConfig::fair(1), &SimOptions::default());
        // Reduce may only start once both maps complete (t=30), so the job
        // finishes at 50s.
        assert_eq!(sched.job(0).finish, Some(50 * SEC));
        let reduce = sched.tasks().find(|t| t.kind == TaskKind::Reduce).unwrap();
        assert_eq!(reduce.attempts[0].launch, 30 * SEC);
        assert_eq!(reduce.attempts[0].work_start, 30 * SEC);
    }

    #[test]
    fn slowstart_launches_reduce_early_but_work_waits() {
        let job = JobSpec::new(
            0,
            0,
            0,
            vec![TaskSpec::map(10 * SEC), TaskSpec::map(30 * SEC), TaskSpec::reduce(20 * SEC)],
        )
        .with_slowstart(0.5); // release reduces after 1 of 2 maps
        let trace = Trace::new(vec![job]);
        let cluster = ClusterSpec::new(2, 1);
        let sched = simulate(&trace, &cluster, &RmConfig::fair(1), &SimOptions::default());
        let reduce = sched.tasks().find(|t| t.kind == TaskKind::Reduce).unwrap();
        // Launched when the first map finished (t=10) but idled until t=30.
        assert_eq!(reduce.attempts[0].launch, 10 * SEC);
        assert_eq!(reduce.attempts[0].work_start, 30 * SEC);
        assert_eq!(reduce.finish(), Some(50 * SEC));
        // The idle wait counts as occupancy but not useful work.
        assert_eq!(reduce.attempts[0].occupancy(), 40 * SEC);
        assert_eq!(reduce.attempts[0].useful_work(), 20 * SEC);
    }

    #[test]
    fn weighted_sharing_under_contention() {
        // Two tenants with weights 1:3 and saturating demand on 8 slots.
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(100, 100 * SEC)),
            JobSpec::new(1, 1, 0, maps(100, 100 * SEC)),
        ]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(1.0),
            TenantConfig::fair_default().with_weight(3.0),
        ]);
        let sched = simulate(
            &trace,
            &one_pool_cluster(8),
            &config,
            &SimOptions::default().with_horizon(90 * SEC),
        );
        // During the first wave tenant 0 holds 2 slots, tenant 1 holds 6.
        let occ0 = sched.occupancy_in(TaskKind::Map, Some(0), 0, 90 * SEC);
        let occ1 = sched.occupancy_in(TaskKind::Map, Some(1), 0, 90 * SEC);
        let ratio = occ1 as f64 / occ0 as f64;
        assert!((ratio - 3.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn max_share_caps_borrowing() {
        // Tenant 0 capped at 2 slots; tenant 1 idle. Slots beyond the cap
        // stay free even though tenant 0 has demand.
        let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(10, 10 * SEC))]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default().with_max_share(2, 0),
            TenantConfig::fair_default(),
        ]);
        let sched = simulate(&trace, &one_pool_cluster(8), &config, &SimOptions::default());
        // 10 tasks, 2 at a time → 50s.
        assert_eq!(sched.job(0).finish, Some(50 * SEC));
        let util = sched.utilization(TaskKind::Map, 0, 50 * SEC);
        assert!((util - 0.25).abs() < 1e-9, "util {util}");
    }

    #[test]
    fn idle_quota_is_borrowed_without_preemption() {
        // Tenant 1 has weight 3 but no work: tenant 0 takes the whole pool.
        let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(8, 10 * SEC))]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(1.0),
            TenantConfig::fair_default().with_weight(3.0),
        ]);
        let sched = simulate(&trace, &one_pool_cluster(8), &config, &SimOptions::default());
        assert_eq!(sched.job(0).finish, Some(10 * SEC));
    }

    #[test]
    fn figure_1_preemption_scenario() {
        // Tenant A grabs the whole cluster at t=0 with long tasks; tenant B
        // arrives at t=1min with a min-share guarantee and a 1-minute
        // min-level preemption timeout. At t=2min the RM kills A's most
        // recently launched tasks; A's lost work is region I of Figure 1.
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(10, 10 * MIN)),
            JobSpec::new(1, 1, MIN, maps(5, 2 * MIN)),
        ]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_min_share(5, 0).with_min_timeout(MIN),
        ]);
        let sched = simulate(&trace, &one_pool_cluster(10), &config, &SimOptions::default());

        // B waited from t=1min; preemption at t=2min.
        let b_tasks: Vec<_> = sched.tasks().filter(|t| t.tenant == 1).collect();
        assert_eq!(b_tasks.len(), 5);
        for t in &b_tasks {
            assert_eq!(t.attempts[0].launch, 2 * MIN, "B launches right after preemption");
        }
        // Exactly 5 of A's tasks were preempted, each having wasted 2min of
        // container time.
        let preempted: Vec<_> = sched.tasks().filter(|t| t.was_preempted()).collect();
        assert_eq!(preempted.len(), 5);
        for t in &preempted {
            assert_eq!(t.tenant, 0);
            assert_eq!(t.wasted_time(), 2 * MIN);
        }
        // A's preempted tasks restart after B finishes (t=4min) and run the
        // full 10 minutes again.
        for t in &preempted {
            let retry = t.attempts.last().unwrap();
            assert_eq!(retry.launch, 4 * MIN);
            assert_eq!(retry.outcome, AttemptOutcome::Completed);
            assert_eq!(retry.end, 14 * MIN);
        }
        // Effective utilization < raw utilization because of region I.
        let raw = sched.utilization(TaskKind::Map, 0, 4 * MIN);
        let eff = sched.effective_utilization(TaskKind::Map, 0, 14 * MIN);
        assert!(raw > 0.99, "cluster stayed busy: {raw}");
        assert!(eff < 1.0);
    }

    #[test]
    fn no_preemption_without_timeouts() {
        // Same scenario but preemption disabled: B must wait for A's wave.
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(10, 10 * MIN)),
            JobSpec::new(1, 1, MIN, maps(5, 2 * MIN)),
        ]);
        let config = RmConfig::fair(2);
        let sched = simulate(&trace, &one_pool_cluster(10), &config, &SimOptions::default());
        assert!(sched.tasks().all(|t| !t.was_preempted()));
        let b_first =
            sched.tasks().filter(|t| t.tenant == 1).filter_map(|t| t.wait_time()).min().unwrap();
        assert_eq!(b_first, 9 * MIN, "B waits for A's tasks to finish at t=10min");
    }

    #[test]
    fn fair_level_preemption_reclaims_fair_share() {
        // Equal weights: fair share is 5 each. A holds all 10 from t=0; B
        // arrives at t=10s with a fair-level timeout of 30s, so the check
        // fires at t=40s and reclaims exactly B's fair share.
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(10, 10 * MIN)),
            JobSpec::new(1, 1, 10 * SEC, maps(10, MIN)),
        ]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_fair_timeout(30 * SEC),
        ]);
        let sched = simulate(&trace, &one_pool_cluster(10), &config, &SimOptions::default());
        let preempted = sched.tasks().filter(|t| t.was_preempted()).count();
        assert_eq!(preempted, 5, "A gives up down to its fair share");
        let b_launches: Vec<Time> =
            sched.tasks().filter(|t| t.tenant == 1).map(|t| t.attempts[0].launch).collect();
        assert_eq!(b_launches.iter().filter(|&&l| l == 40 * SEC).count(), 5);
    }

    #[test]
    fn preemption_never_kills_below_victim_target() {
        // B (min share 8) arrives at t=10s while A holds all 10 slots. With
        // B's min share carved out first, A's fair target is 1 of the 2
        // non-guaranteed slots. The min-level check kills exactly B's
        // entitlement (8), leaving A with 2 ≥ its target — victims are never
        // dragged below their own target.
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(10, 10 * MIN)),
            JobSpec::new(1, 1, 10 * SEC, maps(20, MIN)),
        ]);
        let config = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_min_share(8, 0).with_min_timeout(10 * SEC),
        ]);
        let sched = simulate(&trace, &one_pool_cluster(10), &config, &SimOptions::default());
        let first_wave_kills = sched
            .tasks()
            .filter(|t| {
                t.attempts
                    .iter()
                    .any(|a| a.outcome == AttemptOutcome::Preempted && a.end == 20 * SEC)
            })
            .count();
        assert_eq!(first_wave_kills, 8);
        // A's two survivors ran start-to-finish without interruption.
        let a_uninterrupted = sched
            .tasks()
            .filter(|t| t.tenant == 0)
            .filter(|t| t.attempts.len() == 1 && t.attempts[0].launch == 0)
            .count();
        assert_eq!(a_uninterrupted, 2);
    }

    #[test]
    fn horizon_cuts_off_running_tasks() {
        let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(2, 10 * MIN))]);
        let sched = simulate(
            &trace,
            &one_pool_cluster(2),
            &RmConfig::fair(1),
            &SimOptions::default().with_horizon(4 * MIN),
        );
        assert_eq!(sched.horizon(), 4 * MIN);
        assert_eq!(sched.job(0).finish, None);
        for t in sched.tasks() {
            assert_eq!(t.attempts.len(), 1);
            assert_eq!(t.attempts[0].outcome, AttemptOutcome::CutOff);
            assert_eq!(t.attempts[0].end, 4 * MIN);
        }
    }

    #[test]
    fn deterministic_under_noise() {
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(20, 30 * SEC)),
            JobSpec::new(1, 1, 5 * SEC, maps(20, 30 * SEC)),
        ]);
        let opts = SimOptions { horizon: None, noise: NoiseModel::production(), seed: 42 };
        let a = simulate(&trace, &one_pool_cluster(4), &RmConfig::fair(2), &opts);
        let b = simulate(&trace, &one_pool_cluster(4), &RmConfig::fair(2), &opts);
        assert_eq!(a, b);
        let c = simulate(
            &trace,
            &one_pool_cluster(4),
            &RmConfig::fair(2),
            &SimOptions { seed: 43, ..opts },
        );
        assert_ne!(a, c, "different seeds should produce different noisy runs");
    }

    #[test]
    fn noise_perturbs_but_preserves_totals() {
        let trace = Trace::new(vec![JobSpec::new(0, 0, 0, maps(50, 30 * SEC))]);
        let opts = SimOptions { horizon: None, noise: NoiseModel::production(), seed: 7 };
        let sched = simulate(&trace, &one_pool_cluster(10), &RmConfig::fair(1), &opts);
        // All tasks eventually finish even with failures/retries.
        assert!(sched.job(0).finish.is_some());
        let completed = sched.tasks().filter(|t| t.finish().is_some()).count();
        assert_eq!(completed, 50);
    }

    #[test]
    fn pooled_reuse_is_invisible() {
        // Interleave differently shaped traces/configs through one pool and
        // check every schedule matches a fresh-pool run: stale state from a
        // previous (bigger) run must never leak into the next.
        let big = Trace::new(vec![
            JobSpec::new(0, 0, 0, maps(30, 20 * SEC)),
            JobSpec::new(1, 1, 5 * SEC, maps(12, 45 * SEC)),
            JobSpec::new(2, 2, 0, vec![TaskSpec::map(10 * SEC), TaskSpec::reduce(30 * SEC)]),
        ]);
        let small = Trace::new(vec![JobSpec::new(0, 0, 0, maps(3, 10 * SEC))]);
        let preempt_cfg = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_min_share(4, 1).with_min_timeout(10 * SEC),
            TenantConfig::fair_default().with_weight(2.0),
        ]);
        let runs: Vec<(&Trace, RmConfig, SimOptions)> = vec![
            (&big, preempt_cfg.clone(), SimOptions::default()),
            (&small, RmConfig::fair(1), SimOptions::default()),
            (&big, RmConfig::fair(3), SimOptions::noisy(9)),
            (&small, RmConfig::fair(1), SimOptions::default().with_horizon(15 * SEC)),
            (&big, preempt_cfg, SimOptions::default()),
        ];
        let mut pool = SimPool::new();
        let cluster = ClusterSpec::new(6, 2);
        for (trace, cfg, opts) in &runs {
            let pooled = simulate_pooled(trace, &cluster, cfg, opts, &mut pool);
            let fresh = simulate_pooled(trace, &cluster, cfg, opts, &mut SimPool::new());
            assert_eq!(pooled, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "trace references tenant")]
    fn rejects_unknown_tenant() {
        let trace = Trace::new(vec![JobSpec::new(0, 5, 0, maps(1, SEC))]);
        let _ = simulate(&trace, &one_pool_cluster(2), &RmConfig::fair(2), &SimOptions::default());
    }

    #[test]
    fn empty_trace_is_fine() {
        let sched = simulate(
            &Trace::default(),
            &one_pool_cluster(2),
            &RmConfig::fair(1),
            &SimOptions::default(),
        );
        assert_eq!(sched.num_jobs(), 0);
        assert_eq!(sched.num_tasks(), 0);
    }
}
