//! The Schedule Predictor facade (§7.2).
//!
//! Thin, intention-revealing wrappers over [`crate::engine::simulate`]: the
//! What-if Model asks "what task schedule would this workload produce under
//! this RM configuration?", which is a deterministic, noise-free simulation;
//! experiments that need an "observed" production run use the noisy variant.

use crate::config::{ClusterSpec, RmConfig};
use crate::engine::{simulate, SimOptions};
use crate::noise::NoiseModel;
use crate::record::Schedule;
use tempo_workload::time::Time;
use tempo_workload::Trace;

/// Predicts the task schedule of `trace` under `config` — deterministic,
/// runs to completion.
pub fn predict(trace: &Trace, cluster: &ClusterSpec, config: &RmConfig) -> Schedule {
    simulate(trace, cluster, config, &SimOptions::deterministic())
}

/// Predicts the task schedule up to `horizon`.
pub fn predict_until(
    trace: &Trace,
    cluster: &ClusterSpec,
    config: &RmConfig,
    horizon: Time,
) -> Schedule {
    simulate(trace, cluster, config, &SimOptions::deterministic().with_horizon(horizon))
}

/// Simulates an "observed" run with the given noise model — the stand-in for
/// executing the workload on a real, noisy cluster.
pub fn observe(
    trace: &Trace,
    cluster: &ClusterSpec,
    config: &RmConfig,
    noise: NoiseModel,
    seed: u64,
) -> Schedule {
    simulate(trace, cluster, config, &SimOptions { horizon: None, noise, seed })
}

/// Prediction accuracy of job finish times against an observed schedule,
/// using the paper's two error metrics (§8.1):
///
/// * RAE — relative absolute error: `Σ|p_j − l_j| / Σ|l_j − mean(l)|`
/// * RSE — relative squared error: `sqrt(Σ(p_j − l_j)² / Σ(l_j − mean(l))²)`
///
/// Finish times are compared *relative to submission* (i.e. response
/// times): absolute finish timestamps are dominated by the submission
/// schedule itself, which would deflate both metrics' deviation-from-mean
/// denominators into meaninglessness over a multi-day trace.
///
/// Only jobs that completed in both schedules are compared (killed/failed
/// jobs have inaccurate bookkeeping in real traces too — the paper calls
/// this out for the MV tenant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionError {
    pub rae: f64,
    pub rse: f64,
    /// Number of jobs compared.
    pub jobs: usize,
}

/// Computes RAE/RSE of predicted vs observed finish times for one tenant.
pub fn prediction_error(
    predicted: &Schedule,
    observed: &Schedule,
    tenant: tempo_workload::TenantId,
) -> PredictionError {
    let mut obs_by_id = std::collections::HashMap::new();
    for j in observed.jobs() {
        if j.tenant == tenant {
            if let Some(rt) = j.response_time() {
                obs_by_id.insert(j.id, rt);
            }
        }
    }
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for j in predicted.jobs() {
        if j.tenant != tenant {
            continue;
        }
        let (Some(p), Some(&l)) = (j.response_time(), obs_by_id.get(&j.id)) else { continue };
        pairs.push((p as f64, l as f64));
    }
    if pairs.len() < 2 {
        return PredictionError { rae: 0.0, rse: 0.0, jobs: pairs.len() };
    }
    let mean_l = pairs.iter().map(|&(_, l)| l).sum::<f64>() / pairs.len() as f64;
    let abs_err: f64 = pairs.iter().map(|&(p, l)| (p - l).abs()).sum();
    let abs_dev: f64 = pairs.iter().map(|&(_, l)| (l - mean_l).abs()).sum();
    let sq_err: f64 = pairs.iter().map(|&(p, l)| (p - l) * (p - l)).sum();
    let sq_dev: f64 = pairs.iter().map(|&(_, l)| (l - mean_l) * (l - mean_l)).sum();
    PredictionError {
        rae: if abs_dev > 0.0 { abs_err / abs_dev } else { 0.0 },
        rse: if sq_dev > 0.0 { (sq_err / sq_dev).sqrt() } else { 0.0 },
        jobs: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::SEC;
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn trace() -> Trace {
        let mut jobs = Vec::new();
        for i in 0..30u64 {
            jobs.push(JobSpec::new(
                i,
                0,
                i * 5 * SEC,
                vec![TaskSpec::map((10 + i % 7) * SEC), TaskSpec::reduce(20 * SEC)],
            ));
        }
        Trace::new(jobs)
    }

    #[test]
    fn predict_is_deterministic() {
        let cluster = ClusterSpec::new(4, 2);
        let cfg = RmConfig::fair(1);
        let t = trace();
        assert_eq!(predict(&t, &cluster, &cfg), predict(&t, &cluster, &cfg));
    }

    #[test]
    fn perfect_prediction_has_zero_error() {
        let cluster = ClusterSpec::new(4, 2);
        let cfg = RmConfig::fair(1);
        let t = trace();
        let p = predict(&t, &cluster, &cfg);
        let e = prediction_error(&p, &p, 0);
        assert_eq!(e.jobs, 30);
        assert!(e.rae.abs() < 1e-12);
        assert!(e.rse.abs() < 1e-12);
    }

    #[test]
    fn noisy_observation_yields_moderate_error() {
        let cluster = ClusterSpec::new(4, 2);
        let cfg = RmConfig::fair(1);
        let t = trace();
        let p = predict(&t, &cluster, &cfg);
        let o = observe(&t, &cluster, &cfg, NoiseModel::production(), 3);
        let e = prediction_error(&p, &o, 0);
        assert!(e.jobs >= 25, "most jobs complete in both runs");
        assert!(e.rae > 0.0, "noise must create error");
        assert!(e.rae < 1.0, "prediction should beat the mean baseline (rae {})", e.rae);
    }

    #[test]
    fn prediction_error_handles_disjoint_jobs() {
        let cluster = ClusterSpec::new(4, 2);
        let cfg = RmConfig::fair(1);
        let p = predict(&trace(), &cluster, &cfg);
        let empty = Schedule::from_rows(0, [4, 2], vec![], vec![]);
        let e = prediction_error(&p, &empty, 0);
        assert_eq!(e.jobs, 0);
        assert_eq!(e.rae, 0.0);
    }

    #[test]
    fn predict_until_truncates() {
        let cluster = ClusterSpec::new(1, 1);
        let cfg = RmConfig::fair(1);
        let t = trace();
        let p = predict_until(&t, &cluster, &cfg, 30 * SEC);
        assert_eq!(p.horizon(), 30 * SEC);
        assert!(p.jobs().any(|j| j.finish.is_none()));
    }
}
