//! Noise injection for "observed" production runs.
//!
//! The validation trace in §8.1 was "collected in a noisy environment where
//! there were job and task failures, jobs killed by users and DBAs, and node
//! blacklisting and restarts". Table 2's prediction errors measure the gap
//! between the deterministic Schedule Predictor and such noisy reality; this
//! module supplies the reality half: lognormal duration jitter, random task
//! failures with retry, and whole-job kills.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tempo_workload::stats::std_normal;
use tempo_workload::time::Time;

/// Noise model applied while simulating an "observed" run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Sigma of the lognormal multiplier applied to every attempt's duration
    /// (0 = exact durations).
    pub duration_sigma: f64,
    /// Probability that an attempt fails partway and must retry.
    pub task_failure_prob: f64,
    /// Probability that a job is killed by a user/DBA at submission
    /// (it never runs; its record has no finish).
    pub job_kill_prob: f64,
}

impl NoiseModel {
    /// No noise: the deterministic Schedule Predictor setting.
    pub const NONE: NoiseModel =
        NoiseModel { duration_sigma: 0.0, task_failure_prob: 0.0, job_kill_prob: 0.0 };

    /// Noise magnitudes representative of a busy production cluster; chosen
    /// so the predictor-vs-observed errors land in Table 2's 0.12–0.25
    /// RAE/RSE band.
    pub fn production() -> Self {
        Self { duration_sigma: 0.22, task_failure_prob: 0.015, job_kill_prob: 0.004 }
    }

    pub fn is_none(&self) -> bool {
        self.duration_sigma == 0.0 && self.task_failure_prob == 0.0 && self.job_kill_prob == 0.0
    }

    fn validate(&self) {
        assert!(self.duration_sigma >= 0.0, "duration_sigma must be non-negative");
        assert!((0.0..=1.0).contains(&self.task_failure_prob), "task_failure_prob in [0,1]");
        assert!((0.0..=1.0).contains(&self.job_kill_prob), "job_kill_prob in [0,1]");
    }

    /// Samples the effective duration of one attempt. The multiplier is
    /// median-1 lognormal, so noise stretches and shrinks symmetrically in
    /// log space.
    pub fn jitter_duration<R: Rng + ?Sized>(&self, rng: &mut R, base: Time) -> Time {
        self.validate();
        if self.duration_sigma == 0.0 {
            return base;
        }
        let mult = (self.duration_sigma * std_normal(rng)).exp();
        let v = base as f64 * mult;
        if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            (v.round() as Time).max(1)
        }
    }

    /// Decides whether an attempt fails, and if so at what fraction of its
    /// effective duration.
    pub fn attempt_failure<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        self.validate();
        if self.task_failure_prob > 0.0 && rng.gen::<f64>() < self.task_failure_prob {
            Some(rng.gen_range(0.05..0.95))
        } else {
            None
        }
    }

    /// Decides whether a job is killed at submission.
    pub fn job_killed<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.validate();
        self.job_kill_prob > 0.0 && rng.gen::<f64>() < self.job_kill_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tempo_workload::time::SEC;

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(NoiseModel::NONE.is_none());
        assert_eq!(NoiseModel::NONE.jitter_duration(&mut rng, 42 * SEC), 42 * SEC);
        assert_eq!(NoiseModel::NONE.attempt_failure(&mut rng), None);
        assert!(!NoiseModel::NONE.job_killed(&mut rng));
    }

    #[test]
    fn jitter_is_centred_and_positive() {
        let noise = NoiseModel { duration_sigma: 0.3, ..NoiseModel::NONE };
        let mut rng = StdRng::seed_from_u64(2);
        let base = 100 * SEC;
        let samples: Vec<f64> =
            (0..20_000).map(|_| noise.jitter_duration(&mut rng, base) as f64).collect();
        assert!(samples.iter().all(|&s| s >= 1.0));
        let median = tempo_workload::stats::quantile(&samples, 0.5);
        assert!((median / base as f64 - 1.0).abs() < 0.03, "median ratio {}", median / base as f64);
        // Spread exists.
        let p90 = tempo_workload::stats::quantile(&samples, 0.9);
        assert!(p90 > 1.2 * median);
    }

    #[test]
    fn failure_rate_matches_probability() {
        let noise = NoiseModel { task_failure_prob: 0.1, ..NoiseModel::NONE };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let failures = (0..n).filter(|_| noise.attempt_failure(&mut rng).is_some()).count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn failure_fraction_in_range() {
        let noise = NoiseModel { task_failure_prob: 1.0, ..NoiseModel::NONE };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let f = noise.attempt_failure(&mut rng).unwrap();
            assert!((0.05..0.95).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "task_failure_prob")]
    fn rejects_bad_probability() {
        let bad = NoiseModel { task_failure_prob: 1.5, ..NoiseModel::NONE };
        let mut rng = StdRng::seed_from_u64(5);
        let _ = bad.attempt_failure(&mut rng);
    }
}
