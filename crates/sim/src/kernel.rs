//! Lane-unrolled masked-scan kernels for the QS read path.
//!
//! Every QS metric is a single masked pass over contiguous schedule columns
//! (filter predicates folded into 0/1 multiplies, never branches). This
//! module rewrites those scans as fixed-width kernels: each pass keeps
//! [`LANES`] independent accumulators, item `i` of the stream always lands in
//! lane `i % LANES`, and the lanes collapse in one fixed tree at the end.
//! The shape mirrors a warp reduction on an accelerator — stripe, then
//! tree-reduce — and buys two things at once:
//!
//! * **throughput** — the unrolled bodies expose independent add chains that
//!   the backend can keep in SIMD registers instead of serializing through
//!   one accumulator's latency;
//! * **determinism** — the float sum is a *function of the stream*, not of
//!   the chunking: lane assignment depends only on the item index and the
//!   reduction order is hard-coded, so the result is bit-identical for any
//!   stream length, on any thread, at any parallelism.
//!
//! Integer sums (`Time` occupancy integrals, job counts) are exact in any
//! order; they use the same striped shape purely for speed. The one float
//! stream (response-time sums) goes through [`F64LaneSum`], which is also
//! the primitive the row-path parity references push into — row and column
//! scans agree bit for bit because they run the *same* reduction, not
//! because one imitates the other.

use crate::record::{Attempt, AttemptOutcome, NO_TIME};
use tempo_workload::time::{to_secs_f64, Time};
use tempo_workload::{TaskKind, TenantId};

/// Accumulator width. Eight 64-bit lanes fill a 512-bit vector register and
/// still fit comfortably in 128-bit SIMD as four independent pairs; power of
/// two so the lane index is a mask, not a division.
pub const LANES: usize = 8;

/// Tallies elements scanned by one kernel call: a single batched atomic add
/// outside the unrolled loop, and never a clock read — kernels sit on the
/// deterministic sim path.
#[inline]
fn scanned(n: usize) {
    tempo_obs::counter!("tempo_qs_scan_elements_total", "Elements scanned by QS reduction kernels")
        .add(n as u64);
}

/// Fixed tree reduction: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// The parenthesization is part of the determinism contract — do not
/// "simplify" it into a linear fold.
#[inline]
fn reduce_f64(l: &[f64; LANES]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Streaming masked f64 sum with the lane discipline above.
///
/// Push one value per stream item **in stream order** (masked-out items push
/// an exact `0.0`); [`F64LaneSum::finish`] collapses the lanes. Two scans
/// that push the same `(value, mask)` stream — e.g. the columnar
/// `AvgResponseTime` kernel and a row-view reference walking `JobRecord`s —
/// produce bit-identical sums.
#[derive(Debug, Clone, Copy)]
pub struct F64LaneSum {
    lanes: [f64; LANES],
    idx: usize,
}

impl F64LaneSum {
    #[inline]
    pub fn new() -> Self {
        Self { lanes: [0.0; LANES], idx: 0 }
    }

    /// Adds stream item `self.idx` into its lane.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.lanes[self.idx & (LANES - 1)] += v;
        self.idx += 1;
    }

    /// Number of items pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.idx
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idx == 0
    }

    /// Collapses the lanes in the fixed tree order.
    #[inline]
    pub fn finish(&self) -> f64 {
        reduce_f64(&self.lanes)
    }
}

impl Default for F64LaneSum {
    fn default() -> Self {
        Self::new()
    }
}

/// `AvgResponseTime` scan: masked response-time sum (seconds) and kept-row
/// count over the job columns. The caller divides.
///
/// Mask per row `i`: tenant matches (or `tenant` is `None`), submitted in
/// `[start, end)`, finished before `end` (unfinished rows carry [`NO_TIME`]
/// and fail that test by construction).
pub fn job_response_stats(
    submit: &[Time],
    finish: &[Time],
    job_tenant: &[TenantId],
    tenant: Option<TenantId>,
    start: Time,
    end: Time,
) -> (f64, u64) {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = submit.len();
    scanned(n);
    let mut sum = [0.0f64; LANES];
    let mut cnt = [0u64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            let j = i + l;
            let sub = submit[j];
            let fin = finish[j];
            let keep = (any | (job_tenant[j] == want)) & (sub >= start) & (sub < end) & (fin < end);
            sum[l] += to_secs_f64(fin.wrapping_sub(sub)) * keep as u64 as f64;
            cnt[l] += keep as u64;
        }
        i += LANES;
    }
    // `i % LANES == 0` here, so tail item `i + l` still belongs to lane `l`.
    for (l, j) in (i..n).enumerate() {
        let sub = submit[j];
        let fin = finish[j];
        let keep = (any | (job_tenant[j] == want)) & (sub >= start) & (sub < end) & (fin < end);
        sum[l] += to_secs_f64(fin.wrapping_sub(sub)) * keep as u64 as f64;
        cnt[l] += keep as u64;
    }
    (reduce_f64(&sum), cnt.iter().sum())
}

/// `DeadlineMiss` scan: `(rows with a deadline, rows that missed it)` over
/// the kept job set. Pure integer counts — exact in any order; the lanes are
/// for speed only.
#[allow(clippy::too_many_arguments)]
pub fn job_deadline_stats(
    submit: &[Time],
    finish: &[Time],
    deadline: &[Time],
    job_tenant: &[TenantId],
    tenant: Option<TenantId>,
    gamma: f64,
    start: Time,
    end: Time,
) -> (u64, u64) {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = submit.len();
    scanned(n);
    let mut with_dl = [0u64; LANES];
    let mut missed = [0u64; LANES];
    let mut body = |l: usize, j: usize| {
        let sub = submit[j];
        let fin = finish[j];
        let dl = deadline[j];
        let keep = (any | (job_tenant[j] == want))
            & (sub >= start)
            & (sub < end)
            & (fin < end)
            & (dl != NO_TIME);
        // Same slack arithmetic as `JobRecord::missed_deadline`; the
        // wrapping ops only ever see garbage on masked-out rows.
        let slack = (gamma * fin.wrapping_sub(sub) as f64).max(0.0) as Time;
        let miss = fin > dl.saturating_add(slack);
        with_dl[l] += keep as u64;
        missed[l] += (keep & miss) as u64;
    };
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            body(l, i + l);
        }
        i += LANES;
    }
    for (l, j) in (i..n).enumerate() {
        body(l, j);
    }
    (with_dl.iter().sum(), missed.iter().sum())
}

/// Jobs of `tenant` submitted and completed inside `[start, end)` — the
/// `|J_i|` count behind `Throughput`.
pub fn jobs_in_window(
    submit: &[Time],
    finish: &[Time],
    job_tenant: &[TenantId],
    tenant: Option<TenantId>,
    start: Time,
    end: Time,
) -> u64 {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = submit.len();
    scanned(n);
    let mut cnt = [0u64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for (l, c) in cnt.iter_mut().enumerate() {
            let j = i + l;
            let sub = submit[j];
            *c += ((any | (job_tenant[j] == want))
                & (sub >= start)
                & (sub < end)
                & (finish[j] < end)) as u64;
        }
        i += LANES;
    }
    for (l, j) in (i..n).enumerate() {
        let sub = submit[j];
        cnt[l] +=
            ((any | (job_tenant[j] == want)) & (sub >= start) & (sub < end) & (finish[j] < end))
                as u64;
    }
    cnt.iter().sum()
}

/// Container-time occupied in pool `kind` over `[start, end)`, clipping each
/// attempt to the window. Exact `Time` integral (integer adds commute).
pub fn occupancy(
    attempts: &[Attempt],
    att_kind: &[TaskKind],
    att_tenant: &[TenantId],
    kind: TaskKind,
    tenant: Option<TenantId>,
    start: Time,
    end: Time,
) -> Time {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = attempts.len();
    scanned(n);
    let mut sum = [0 as Time; LANES];
    let mut body = |l: usize, j: usize| {
        let a = &attempts[j];
        let s = a.launch.max(start);
        let e = a.end.min(end);
        let keep = (att_kind[j] == kind) & (any | (att_tenant[j] == want)) & (e > s);
        sum[l] += e.wrapping_sub(s) * keep as Time;
    };
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            body(l, i + l);
        }
        i += LANES;
    }
    for (l, j) in (i..n).enumerate() {
        body(l, j);
    }
    sum.iter().sum()
}

/// Like [`occupancy`] but counting only useful work: completed attempts,
/// clocked from their shuffle barrier (`work_start`) instead of launch.
pub fn useful_work(
    attempts: &[Attempt],
    att_kind: &[TaskKind],
    att_tenant: &[TenantId],
    kind: TaskKind,
    tenant: Option<TenantId>,
    start: Time,
    end: Time,
) -> Time {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = attempts.len();
    scanned(n);
    let mut sum = [0 as Time; LANES];
    let mut body = |l: usize, j: usize| {
        let a = &attempts[j];
        let s = a.work_start.max(start);
        let e = a.end.min(end);
        let keep = (a.outcome == AttemptOutcome::Completed)
            & (att_kind[j] == kind)
            & (any | (att_tenant[j] == want))
            & (e > s);
        sum[l] += e.wrapping_sub(s) * keep as Time;
    };
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            body(l, i + l);
        }
        i += LANES;
    }
    for (l, j) in (i..n).enumerate() {
        body(l, j);
    }
    sum.iter().sum()
}

/// Preemption-fraction scan over the task columns: `(tasks of kind, tasks
/// preempted at least once)`.
pub fn preempt_stats(
    task_kind: &[TaskKind],
    task_tenant: &[TenantId],
    task_preempt_count: &[u32],
    kind: TaskKind,
    tenant: Option<TenantId>,
) -> (u64, u64) {
    let (any, want) = crate::record::tenant_mask(tenant);
    let n = task_kind.len();
    scanned(n);
    let mut total = [0u64; LANES];
    let mut preempted = [0u64; LANES];
    let mut body = |l: usize, j: usize| {
        let keep = (task_kind[j] == kind) & (any | (task_tenant[j] == want));
        total[l] += keep as u64;
        preempted[l] += (keep & (task_preempt_count[j] > 0)) as u64;
    };
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            body(l, i + l);
        }
        i += LANES;
    }
    for (l, j) in (i..n).enumerate() {
        body(l, j);
    }
    (total.iter().sum(), preempted.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // ---- scalar references: the pre-kernel single-accumulator scans,
    // ---- kept verbatim as ground truth for the integer kernels and as the
    // ---- ulp-neighborhood check for the float one ----

    fn ref_response_stats(
        submit: &[Time],
        finish: &[Time],
        tenant_col: &[TenantId],
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> (f64, u64) {
        let (any, want) = crate::record::tenant_mask(tenant);
        let mut sum = 0.0;
        let mut n = 0u64;
        for j in 0..submit.len() {
            let keep = (any | (tenant_col[j] == want))
                & (submit[j] >= start)
                & (submit[j] < end)
                & (finish[j] < end);
            sum += to_secs_f64(finish[j].wrapping_sub(submit[j])) * keep as u64 as f64;
            n += keep as u64;
        }
        (sum, n)
    }

    /// Stream of masked values matching what the kernel accumulates, pushed
    /// through the shared primitive — must be bit-identical to the kernel.
    fn lane_response_sum(
        submit: &[Time],
        finish: &[Time],
        tenant_col: &[TenantId],
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> f64 {
        let (any, want) = crate::record::tenant_mask(tenant);
        let mut acc = F64LaneSum::new();
        for j in 0..submit.len() {
            let keep = (any | (tenant_col[j] == want))
                & (submit[j] >= start)
                & (submit[j] < end)
                & (finish[j] < end);
            acc.push(to_secs_f64(finish[j].wrapping_sub(submit[j])) * keep as u64 as f64);
        }
        acc.finish()
    }

    fn arb_attempt() -> impl Strategy<Value = Attempt> {
        (0u64..2000, 0u64..200, 0u64..2000, 0u8..4).prop_map(|(launch, lag, len, out)| {
            let work_start = launch + lag;
            Attempt {
                launch,
                work_start,
                end: work_start + len,
                outcome: match out {
                    0 => AttemptOutcome::Completed,
                    1 => AttemptOutcome::Preempted,
                    2 => AttemptOutcome::Failed,
                    _ => AttemptOutcome::CutOff,
                },
            }
        })
    }

    fn arb_kind() -> impl Strategy<Value = TaskKind> {
        prop_oneof![Just(TaskKind::Map), Just(TaskKind::Reduce)]
    }

    /// Lengths covering every `len % LANES` remainder around several chunk
    /// boundaries, plus empty.
    fn arb_len() -> impl Strategy<Value = usize> {
        prop_oneof![Just(0usize), 0usize..=(3 * LANES + 1), 60usize..70]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Float kernel ≡ the shared streaming primitive (bit-identical) and
        /// lives within rounding distance of the scalar left fold.
        #[test]
        fn response_kernel_matches_reference(
            n in arb_len(),
            rows in prop::collection::vec(
                (0u64..3000, 0u64..4000, 0u16..3, any::<bool>()), 70),
            start in 0u64..1500,
            len in 0u64..3000,
            tenant_pick in 0u16..4,
        ) {
            let rows = &rows[..n.min(rows.len())];
            let submit: Vec<Time> = rows.iter().map(|r| r.0).collect();
            // `finished == false` rows carry the NO_TIME sentinel, like real
            // columns for jobs cut off at the horizon.
            let finish: Vec<Time> =
                rows.iter().map(|r| if r.3 { r.0 + r.1 } else { NO_TIME }).collect();
            let tenant_col: Vec<TenantId> = rows.iter().map(|r| r.2).collect();
            let tenant = if tenant_pick == 3 { None } else { Some(tenant_pick) };
            let (end, overflow) = start.overflowing_add(len.max(1));
            let end = if overflow { Time::MAX } else { end };

            let (sum, cnt) = job_response_stats(&submit, &finish, &tenant_col, tenant, start, end);
            let (ref_sum, ref_cnt) =
                ref_response_stats(&submit, &finish, &tenant_col, tenant, start, end);
            prop_assert_eq!(cnt, ref_cnt);
            // Bit-identical to the streaming primitive (same lanes, same tree).
            let streamed = lane_response_sum(&submit, &finish, &tenant_col, tenant, start, end);
            prop_assert_eq!(sum.to_bits(), streamed.to_bits());
            // Reassociation against the scalar fold stays in rounding noise.
            let tol = 1e-12 * ref_sum.abs().max(1.0);
            prop_assert!((sum - ref_sum).abs() <= tol, "sum {sum} ref {ref_sum}");
        }

        /// Integer job kernels are exactly the scalar scans.
        #[test]
        fn job_count_kernels_match_reference(
            n in arb_len(),
            rows in prop::collection::vec(
                (0u64..3000, 0u64..4000, 0u16..3, any::<bool>(), any::<bool>(), 0u64..5000),
                70),
            gamma in prop_oneof![Just(0.0), Just(0.25), Just(1.0)],
            start in 0u64..1500,
            len in 1u64..3000,
            tenant_pick in 0u16..4,
        ) {
            let rows = &rows[..n.min(rows.len())];
            let submit: Vec<Time> = rows.iter().map(|r| r.0).collect();
            let finish: Vec<Time> =
                rows.iter().map(|r| if r.3 { r.0 + r.1 } else { NO_TIME }).collect();
            let deadline: Vec<Time> =
                rows.iter().map(|r| if r.4 { r.0 + r.5 } else { NO_TIME }).collect();
            let tenant_col: Vec<TenantId> = rows.iter().map(|r| r.2).collect();
            let tenant = if tenant_pick == 3 { None } else { Some(tenant_pick) };
            let end = start + len;

            // Count kernel vs direct filter.
            let expect = (0..rows.len())
                .filter(|&j| {
                    tenant.is_none_or(|t| tenant_col[j] == t)
                        && (start..end).contains(&submit[j])
                        && finish[j] < end
                })
                .count() as u64;
            prop_assert_eq!(
                jobs_in_window(&submit, &finish, &tenant_col, tenant, start, end), expect);

            // Deadline kernel vs direct filter.
            let kept: Vec<usize> = (0..rows.len())
                .filter(|&j| {
                    tenant.is_none_or(|t| tenant_col[j] == t)
                        && (start..end).contains(&submit[j])
                        && finish[j] < end
                        && deadline[j] != NO_TIME
                })
                .collect();
            let miss = kept
                .iter()
                .filter(|&&j| {
                    let slack =
                        (gamma * finish[j].wrapping_sub(submit[j]) as f64).max(0.0) as Time;
                    finish[j] > deadline[j].saturating_add(slack)
                })
                .count() as u64;
            prop_assert_eq!(
                job_deadline_stats(
                    &submit, &finish, &deadline, &tenant_col, tenant, gamma, start, end),
                (kept.len() as u64, miss)
            );
        }

        /// Attempt/task kernels are exactly the scalar scans, across every
        /// remainder, all-masked windows, and mixed tenants/kinds.
        #[test]
        fn attempt_kernels_match_reference(
            n in arb_len(),
            atts in prop::collection::vec(arb_attempt(), 70),
            kinds in prop::collection::vec(arb_kind(), 70),
            tenants in prop::collection::vec(0u16..3, 70),
            preempts in prop::collection::vec(0u32..3, 70),
            kind in arb_kind(),
            window in (0u64..3000, 1u64..4000),
            tenant_pick in 0u16..4,
        ) {
            let (start, len) = window;
            let n = n.min(atts.len()).min(kinds.len()).min(tenants.len()).min(preempts.len());
            let atts = &atts[..n];
            let kinds = &kinds[..n];
            let tenants = &tenants[..n];
            let preempts = &preempts[..n];
            let tenant = if tenant_pick == 3 { None } else { Some(tenant_pick) };
            let end = start + len;

            let mut occ: Time = 0;
            let mut useful: Time = 0;
            for j in 0..n {
                if kinds[j] != kind || tenant.is_some_and(|t| tenants[j] != t) {
                    continue;
                }
                let (lo, hi) = (atts[j].launch.max(start), atts[j].end.min(end));
                if hi > lo {
                    occ += hi - lo;
                }
                let (lo, hi) = (atts[j].work_start.max(start), atts[j].end.min(end));
                if atts[j].outcome == AttemptOutcome::Completed && hi > lo {
                    useful += hi - lo;
                }
            }
            prop_assert_eq!(occupancy(atts, kinds, tenants, kind, tenant, start, end), occ);
            prop_assert_eq!(useful_work(atts, kinds, tenants, kind, tenant, start, end), useful);

            let total = (0..n)
                .filter(|&j| kinds[j] == kind && tenant.is_none_or(|t| tenants[j] == t))
                .count() as u64;
            let hit = (0..n)
                .filter(|&j| {
                    kinds[j] == kind && tenant.is_none_or(|t| tenants[j] == t) && preempts[j] > 0
                })
                .count() as u64;
            prop_assert_eq!(preempt_stats(kinds, tenants, preempts, kind, tenant), (total, hit));
        }
    }

    /// The lane sum is a function of the stream alone: appending items to a
    /// longer stream never changes how the prefix was accumulated.
    #[test]
    fn lane_sum_is_prefix_stable() {
        let vals: Vec<f64> = (0..67).map(|i| (i as f64) * 0.1 + 1.0 / (i + 1) as f64).collect();
        for cut in 0..vals.len() {
            let mut a = F64LaneSum::new();
            let mut b = F64LaneSum::new();
            for v in &vals[..cut] {
                a.push(*v);
                b.push(*v);
            }
            for v in &vals[cut..] {
                b.push(*v);
            }
            // Replaying the full stream reproduces b exactly.
            let mut c = F64LaneSum::new();
            for v in &vals {
                c.push(*v);
            }
            assert_eq!(b.finish().to_bits(), c.finish().to_bits());
            // And pushing exact zeros (masked-out items) after the prefix
            // leaves the prefix sum intact.
            for _ in cut..vals.len() {
                a.push(0.0);
            }
            let mut d = F64LaneSum::new();
            for v in &vals[..cut] {
                d.push(*v);
            }
            assert_eq!(a.finish().to_bits(), d.finish().to_bits());
        }
    }

    #[test]
    fn empty_streams_are_zero() {
        assert_eq!(F64LaneSum::new().finish(), 0.0);
        assert_eq!(job_response_stats(&[], &[], &[], None, 0, 10), (0.0, 0));
        assert_eq!(jobs_in_window(&[], &[], &[], None, 0, 10), 0);
        assert_eq!(occupancy(&[], &[], &[], TaskKind::Map, None, 0, 10), 0);
        assert_eq!(preempt_stats(&[], &[], &[], TaskKind::Map, None), (0, 0));
    }
}
