//! A calendar (bucket) queue for the engine's pending-event set.
//!
//! The discrete-event engine's schedules are *dense*: most pending events sit
//! within a short span of the simulation clock (tentative task finishes and
//! preemption checks), plus a thinner tail of far-future job arrivals. A
//! binary heap pays `O(log n)` per operation on that shape; a calendar queue
//! — an array of time buckets cycled like the months of a wall calendar
//! (Brown, CACM 1988) — pays amortized `O(1)`: events hash into
//! `(time / width) mod nbuckets`, and pop scans forward from the clock's
//! bucket, where the next event almost always sits.
//!
//! This implementation preserves the engine's determinism contract exactly:
//! entries pop in strictly increasing `(time, seq)` order, where `seq` is the
//! insertion sequence number — the same tie-break the previous
//! `BinaryHeap<Reverse<Event>>` used. Buckets are power-of-two sized so the
//! slot hash is a shift-and-mask, and the width is re-derived from the live
//! event-time spread on every resize. All storage is retained by
//! [`CalendarQueue::clear`], so a pooled queue (see `SimPool`) allocates only
//! while growing toward a workload's high-water mark.

use tempo_workload::time::Time;

/// Minimum (and initial) bucket count; small enough that empty scans are
/// cheap, large enough to avoid immediate regrowth on real traces.
const MIN_BUCKETS: usize = 16;
/// Grow when the population exceeds `buckets × GROW_AT` …
const GROW_AT: usize = 2;
/// … shrink when it falls below `buckets / SHRINK_AT` (hysteresis: 16× apart
/// so pop/push cycles at a boundary never thrash rebuilds).
const SHRINK_AT: usize = 8;
/// Default `log2(bucket width)` before the first resize derives a real one:
/// 2^20 µs ≈ 1 s, the right order for task-level events.
const DEFAULT_SHIFT: u32 = 20;

struct Entry<T> {
    time: Time,
    seq: u64,
    item: T,
}

/// A monotone priority queue over `(Time, insertion-seq)` keys.
///
/// "Monotone" is the engine's invariant, asserted in debug builds: nothing is
/// ever pushed earlier than the last popped time (events are only scheduled
/// at or after `now`). The queue exploits it — pop never looks behind the
/// clock — but never *depends* on bucket luck for correctness: if the
/// forward scan finds nothing within one calendar year, a direct min-scan
/// over all buckets takes over.
pub struct CalendarQueue<T> {
    /// Power-of-two bucket array; `buckets[(t >> shift) & mask]`.
    buckets: Vec<Vec<Entry<T>>>,
    /// `log2` of the bucket width in microseconds.
    shift: u32,
    len: usize,
    /// Time of the last pop — the floor under every remaining entry.
    clock: Time,
    /// Next insertion sequence number (the FIFO tie-break at equal times).
    seq: u64,
    /// EWMA of the non-zero inter-pop gaps (µs, 1/8 weight; 0 = cold). This
    /// is the *realized* event spacing, which a far-future tail cannot
    /// inflate the way the min/max spread can — rebuilds prefer it once the
    /// queue has popped at least one gap.
    gap_ewma: Time,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(MIN_BUCKETS);
        buckets.resize_with(MIN_BUCKETS, Vec::new);
        Self { buckets, shift: DEFAULT_SHIFT, len: 0, clock: 0, seq: 0, gap_ewma: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Current bucket width in microseconds. Starts at `2^DEFAULT_SHIFT` and
    /// adapts on rebuilds to track the observed inter-event gap.
    pub fn bucket_width(&self) -> Time {
        1 << self.shift
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue, resetting the clock and sequence counter while
    /// keeping every bucket's allocation for the next run.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.clock = 0;
        self.seq = 0;
        self.gap_ewma = 0;
    }

    #[inline]
    fn bucket_of(&self, time: Time) -> usize {
        ((time >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts `item` at `time`. Entries at equal times pop in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// If `time` precedes the last popped time. The queue is monotone by
    /// contract, and pop's forward slot scan relies on it — a silent
    /// past-time insert would corrupt pop order, so the contract is enforced
    /// unconditionally (one predictable compare per push).
    pub fn push(&mut self, time: Time, item: T) {
        assert!(time >= self.clock, "pushed into the past: {time} < {}", self.clock);
        let seq = self.seq;
        self.seq += 1;
        let b = self.bucket_of(time);
        self.buckets[b].push(Entry { time, seq, item });
        self.len += 1;
        if self.len > self.buckets.len() * GROW_AT {
            self.rebuild();
        }
    }

    /// Removes and returns the entry with the smallest `(time, seq)` key.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let mask = nbuckets - 1;
        let start_slot = self.clock >> self.shift;
        // Fast path: walk slots forward from the clock. The first slot
        // holding an entry is the minimum-time slot (every entry is at or
        // after the clock), and within a slot the linear scan picks the
        // `(time, seq)` minimum.
        for lap in 0..nbuckets as u64 {
            let slot = start_slot.wrapping_add(lap);
            let b = (slot as usize) & mask;
            if let Some(i) = Self::min_in_slot(&self.buckets[b], self.shift, slot) {
                return Some(self.take(b, i));
            }
        }
        // Sparse tail: nothing within a full calendar year of the clock.
        // Fall back to a direct min-scan; correctness never rides on the
        // bucket geometry.
        let mut best: Option<(Time, u64, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(t, s, _, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, b, i));
                }
            }
        }
        let (_, _, b, i) = best.expect("len > 0 but no entry found");
        Some(self.take(b, i))
    }

    /// Removes and returns the next entry **only if** its time is exactly
    /// `time` — which must be the current clock, i.e. the time just popped;
    /// passing a later time would skip over earlier entries, so the clock
    /// match is enforced. This is the engine's same-instant drain: one
    /// bucket probe instead of a full peek/pop cycle.
    pub fn pop_at(&mut self, time: Time) -> Option<T> {
        assert!(time == self.clock, "pop_at({time}) off the clock {}", self.clock);
        if self.len == 0 {
            return None;
        }
        // A hit in this bucket is globally minimal: every entry is ≥ `time`
        // (monotonicity) and `time` hashes to exactly this bucket.
        let b = self.bucket_of(time);
        let mut best: Option<usize> = None;
        for (i, e) in self.buckets[b].iter().enumerate() {
            if e.time != time {
                continue;
            }
            if best.is_none_or(|j| e.seq < self.buckets[b][j].seq) {
                best = Some(i);
            }
        }
        best.map(|i| self.take(b, i).1)
    }

    /// Index of the `(time, seq)`-minimal entry of `bucket` whose time falls
    /// in calendar `slot`, if any.
    fn min_in_slot(bucket: &[Entry<T>], shift: u32, slot: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in bucket.iter().enumerate() {
            if e.time >> shift != slot {
                continue;
            }
            if best.is_none_or(|j| (e.time, e.seq) < (bucket[j].time, bucket[j].seq)) {
                best = Some(i);
            }
        }
        best
    }

    fn take(&mut self, b: usize, i: usize) -> (Time, T) {
        let e = self.buckets[b].swap_remove(i);
        self.len -= 1;
        // Fold the realized gap into the width estimate. Zero gaps are
        // same-instant drains (burst arrivals, `pop_at`): they say nothing
        // about event *spacing*, so they don't shrink the estimate. Once
        // seeded the EWMA never reaches zero again (`est + (gap - est)/8 ≥ 1`
        // for `gap ≥ 1`), so zero doubles as the cold sentinel.
        let gap = e.time - self.clock;
        if gap > 0 {
            self.gap_ewma = if self.gap_ewma == 0 {
                gap
            } else {
                let est = self.gap_ewma as i64;
                (est + ((gap as i64 - est) >> 3)) as Time
            };
        }
        self.clock = e.time;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / SHRINK_AT {
            self.rebuild();
        }
        (e.time, e.item)
    }

    /// Re-sizes the bucket array to the live population and re-derives the
    /// bucket width, then redistributes every entry. Deterministic: a pure
    /// function of the queue contents and pop history.
    ///
    /// Width selection prefers the inter-pop gap EWMA once it is warm: the
    /// realized spacing tracks where pops actually happen, so one far-future
    /// outlier (which would blow up the min/max spread and funnel the dense
    /// cluster into a single bucket) leaves the width untouched. Cold queues
    /// — resized before the first gap is observed — fall back to the
    /// `(max - min) / len` spread of the live population.
    fn rebuild(&mut self) {
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        let target = self.len.next_power_of_two().clamp(MIN_BUCKETS, 1 << 20);
        if target != self.buckets.len() {
            self.buckets.resize_with(target, Vec::new);
        }
        if self.gap_ewma > 0 {
            self.shift = Self::shift_for_gap(self.gap_ewma);
        } else if !entries.is_empty() {
            let lo = entries.iter().map(|e| e.time).min().expect("non-empty");
            let hi = entries.iter().map(|e| e.time).max().expect("non-empty");
            self.shift = Self::shift_for_gap((hi - lo) / entries.len() as Time);
        }
        for e in entries {
            let b = self.bucket_of(e.time);
            self.buckets[b].push(e);
        }
    }

    /// `log2(bucket width)` targeting ~one event per bucket at gap `gap`,
    /// capped at 2^42 µs (~52 days) so the slot arithmetic stays far from
    /// overflow.
    fn shift_for_gap(gap: Time) -> u32 {
        if gap <= 1 { 0 } else { 63 - gap.leading_zeros() }.min(42)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Drains `q` and a reference heap pushed with the same sequence,
    /// asserting identical pop order.
    fn assert_matches_heap(times: &[Time]) {
        let mut q = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(t, seq);
            heap.push(Reverse((t, seq as u64, seq)));
        }
        while let Some(Reverse((t, _, item))) = heap.pop() {
            assert_eq!(q.pop(), Some((t, item)));
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pops_in_time_then_insertion_order() {
        assert_matches_heap(&[5, 3, 3, 9, 3, 1, 1, 9, 0]);
    }

    #[test]
    fn survives_growth_and_wide_spreads() {
        // Enough entries to force several rebuilds, spread over hours.
        let times: Vec<Time> = (0..500u64).map(|i| (i * 7919) % 3_600_000_000).collect();
        assert_matches_heap(&times);
    }

    #[test]
    fn all_equal_times_pop_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn pop_at_drains_only_the_current_instant() {
        let mut q = CalendarQueue::new();
        q.push(10, 'a');
        q.push(10, 'b');
        q.push(11, 'c');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop_at(10), Some('b'));
        assert_eq!(q.pop_at(10), None, "next entry is later");
        assert_eq!(q.pop(), Some((11, 'c')));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let mut state = 0x12345u64;
        let mut clock: Time = 0;
        for round in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if round % 3 != 2 || heap.is_empty() {
                // Push at or after the current clock (the engine invariant).
                let t = clock + (state >> 40) % 5_000_000;
                q.push(t, round);
                heap.push(Reverse((t, seq, round)));
                seq += 1;
            } else {
                let Reverse((t, _, item)) = heap.pop().expect("non-empty");
                assert_eq!(q.pop(), Some((t, item)));
                clock = t;
            }
        }
        while let Some(Reverse((t, _, item))) = heap.pop() {
            assert_eq!(q.pop(), Some((t, item)));
        }
    }

    #[test]
    fn shrinks_after_drain_and_clears_for_reuse() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.push(i * 1000, i);
        }
        for _ in 0..995 {
            q.pop();
        }
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
        // Reused queue starts a fresh sequence space at clock 0.
        q.push(3, 77);
        q.push(1, 88);
        assert_eq!(q.pop(), Some((1, 88)));
        assert_eq!(q.pop(), Some((3, 77)));
    }

    #[test]
    fn bucket_width_starts_at_default_and_resets_on_clear() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.bucket_width(), 1 << 20);
        // Warm the gap estimate and force a shrink rebuild at ~1 ms spacing.
        for i in 0..200u64 {
            q.push(i * 1_000, i);
        }
        for _ in 0..195 {
            q.pop();
        }
        assert!(q.bucket_width() < 1 << 12, "width {} should track ~1ms gaps", q.bucket_width());
        // `clear` forgets the estimate along with the contents: the next
        // run's rebuilds (enough pushes here to cross the grow threshold)
        // start from its own population, not this one's.
        q.clear();
        for i in 0..80u64 {
            q.push(i * (1 << 24), i);
        }
        assert!(q.bucket_width() > 1 << 20, "width {} should re-derive", q.bucket_width());
    }

    #[test]
    fn far_future_tail_is_found_by_fallback() {
        let mut q = CalendarQueue::new();
        // One event a simulated year away: far outside any calendar lap.
        q.push(365 * 24 * 3_600_000_000, 'z');
        q.push(5, 'a');
        assert_eq!(q.pop(), Some((5, 'a')));
        assert_eq!(q.pop(), Some((365 * 24 * 3_600_000_000, 'z')));
    }
}
