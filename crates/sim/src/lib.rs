//! # tempo-sim
//!
//! Discrete-event cluster + RM simulator: the substrate Tempo tunes, and its
//! fast time-warp Schedule Predictor (§7.2 of the paper).
//!
//! The simulator implements the RM configuration space of §3.2 — per-tenant
//! resource shares, min/max limits, and two-level preemption timeouts — over
//! a cluster of map/reduce container pools, and records the full task
//! schedule (start/end/allocation of every task attempt) that the QS metrics
//! are defined on. Allocation policy is pluggable: [`RmConfig::policy`]
//! selects a `tempo-sched` backend (fair-share, DRF, capacity, or FIFO) and
//! the engine dispatches every target computation and preemption-victim
//! choice through the [`SchedulerBackend`] trait.
//!
//! ```
//! use tempo_sim::{predict, ClusterSpec, RmConfig};
//! use tempo_workload::{Trace, JobSpec, TaskSpec};
//! use tempo_workload::time::SEC;
//!
//! let trace = Trace::new(vec![JobSpec::new(0, 0, 0, vec![TaskSpec::map(10 * SEC)])]);
//! let schedule = predict(&trace, &ClusterSpec::new(4, 2), &RmConfig::fair(1));
//! assert_eq!(schedule.job(0).finish, Some(10 * SEC));
//! ```
//!
//! Schedules are stored **columnar** ([`ScheduleColumns`]) — the QS metrics
//! scan contiguous columns — with the row API ([`JobRecord`], [`TaskView`])
//! preserved as cheap views; the engine's pending-event set is a
//! [`CalendarQueue`] rather than a binary heap.

pub mod calendar;
pub mod config;
pub mod engine;
pub mod kernel;
pub mod noise;
pub mod predictor;
pub mod record;

pub use calendar::CalendarQueue;
pub use config::{ClusterSpec, ConfigError, PoolSpec, RmConfig, TenantConfig};
pub use engine::{simulate, simulate_pooled, SimOptions, SimPool};
// The allocation kernels live in `tempo-sched`; re-exported so existing
// `tempo_sim::fair_targets` call sites keep compiling.
pub use noise::NoiseModel;
pub use predictor::{observe, predict, predict_until, prediction_error, PredictionError};
pub use record::{
    tenant_mask, Attempt, AttemptOutcome, JobRecord, Schedule, ScheduleColumns, TaskRecord,
    TaskView, NO_TIME,
};
pub use tempo_sched::{
    fair_targets, Capacity, Drf, FairShare, Fifo, SchedPolicy, SchedulerBackend, ShareInput,
    TenantDemand,
};
