//! # tempo-sim
//!
//! Discrete-event cluster + fair-scheduler RM simulator: the substrate Tempo
//! tunes, and its fast time-warp Schedule Predictor (§7.2 of the paper).
//!
//! The simulator implements the RM configuration space of §3.2 — per-tenant
//! resource shares, min/max limits, and two-level preemption timeouts — over
//! a cluster of map/reduce container pools, and records the full task
//! schedule (start/end/allocation of every task attempt) that the QS metrics
//! are defined on.
//!
//! ```
//! use tempo_sim::{predict, ClusterSpec, RmConfig};
//! use tempo_workload::{Trace, JobSpec, TaskSpec};
//! use tempo_workload::time::SEC;
//!
//! let trace = Trace::new(vec![JobSpec::new(0, 0, 0, vec![TaskSpec::map(10 * SEC)])]);
//! let schedule = predict(&trace, &ClusterSpec::new(4, 2), &RmConfig::fair(1));
//! assert_eq!(schedule.jobs[0].finish, Some(10 * SEC));
//! ```

pub mod config;
pub mod engine;
pub mod fairshare;
pub mod noise;
pub mod predictor;
pub mod record;

pub use config::{ClusterSpec, ConfigError, PoolSpec, RmConfig, TenantConfig};
pub use engine::{simulate, SimOptions};
pub use fairshare::{fair_targets, ShareInput};
pub use noise::NoiseModel;
pub use predictor::{observe, predict, predict_until, prediction_error, PredictionError};
pub use record::{Attempt, AttemptOutcome, JobRecord, Schedule, TaskRecord};
