//! The RM configuration space (§3.2).
//!
//! Modern RMs (YARN's Fair/Capacity schedulers, Mesos) expose three families
//! of per-tenant knobs, all represented here:
//!
//! * **Resource shares** — a weight giving the tenant's proportion of total
//!   resources relative to other tenants; unused quota is redistributed
//!   proportionally.
//! * **Resource limits** — minimum and maximum container counts a tenant may
//!   hold at any instant.
//! * **Preemption timeouts** — two levels: waiting below *fair share* for
//!   `fair_timeout`, or (more critical) below the *minimum limit* for
//!   `min_timeout`, triggers killing of the most recently launched tasks of
//!   over-allocated tenants.
//!
//! Tempo's Optimizer searches exactly this space; everything here is plain
//! data so a configuration can be encoded as a vector (see
//! `tempo-core::space`).

use serde::{Deserialize, Serialize};
use tempo_sched::SchedPolicy;
use tempo_workload::time::Time;
use tempo_workload::{TaskKind, NUM_KINDS};

/// Capacity of one container pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Total containers of this kind the RM can allocate at any instant.
    pub capacity: u32,
}

/// The cluster as the RM sees it: a fixed number of containers per pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Indexed by [`TaskKind::index`].
    pub pools: [PoolSpec; NUM_KINDS],
}

impl ClusterSpec {
    /// A cluster with the given map/reduce container counts.
    pub fn new(map_slots: u32, reduce_slots: u32) -> Self {
        Self { pools: [PoolSpec { capacity: map_slots }, PoolSpec { capacity: reduce_slots }] }
    }

    /// Uniformly scales both pools (provisioning experiments, §8.2.4).
    /// Capacities round to nearest and never drop below 1.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |c: u32| ((c as f64 * factor).round() as u32).max(1);
        Self {
            pools: [
                PoolSpec { capacity: scale(self.pools[0].capacity) },
                PoolSpec { capacity: scale(self.pools[1].capacity) },
            ],
        }
    }

    #[inline]
    pub fn capacity(&self, kind: TaskKind) -> u32 {
        self.pools[kind.index()].capacity
    }

    pub fn total_capacity(&self) -> u32 {
        self.pools.iter().map(|p| p.capacity).sum()
    }
}

/// Per-tenant RM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Relative share weight (dimensionless, > 0).
    pub weight: f64,
    /// Minimum guaranteed containers per pool.
    pub min_share: [u32; NUM_KINDS],
    /// Maximum containers per pool (caps both fair share and borrowing).
    pub max_share: [u32; NUM_KINDS],
    /// Preemption fires when the tenant has waited below its *fair share*
    /// this long with unmet demand. `None` disables this level.
    pub fair_timeout: Option<Time>,
    /// Preemption fires when the tenant has waited below its *minimum
    /// share* this long with unmet demand. `None` disables this level.
    pub min_timeout: Option<Time>,
}

impl TenantConfig {
    /// A tenant with weight 1, no guarantees, no caps, preemption disabled —
    /// plain weighted fair sharing.
    pub fn fair_default() -> Self {
        Self {
            weight: 1.0,
            min_share: [0; NUM_KINDS],
            max_share: [u32::MAX; NUM_KINDS],
            fair_timeout: None,
            min_timeout: None,
        }
    }

    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    pub fn with_min_share(mut self, map: u32, reduce: u32) -> Self {
        self.min_share = [map, reduce];
        self
    }

    pub fn with_max_share(mut self, map: u32, reduce: u32) -> Self {
        self.max_share = [map, reduce];
        self
    }

    pub fn with_fair_timeout(mut self, t: Time) -> Self {
        self.fair_timeout = Some(t);
        self
    }

    pub fn with_min_timeout(mut self, t: Time) -> Self {
        self.min_timeout = Some(t);
        self
    }
}

/// The full RM configuration: one [`TenantConfig`] per tenant id
/// (`tenants[i]` configures tenant `i`) plus the scheduler backend that
/// interprets those knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmConfig {
    pub tenants: Vec<TenantConfig>,
    /// Which [`tempo_sched`] backend performs the allocation. Each backend
    /// reads the per-tenant knobs in its own native terms: `FairShare` uses
    /// all of them, `Capacity` reads `min_share` as guaranteed queue
    /// capacity and `max_share` as the elastic cap, `Drf` reads `weight`
    /// and `max_share`, and `Fifo` reads only `max_share`.
    pub policy: SchedPolicy,
}

/// Problems detected by [`RmConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    NonPositiveWeight { tenant: usize },
    MinAboveMax { tenant: usize, pool: TaskKind },
    NoTenants,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveWeight { tenant } => {
                write!(f, "tenant {tenant} has a non-positive or non-finite weight")
            }
            ConfigError::MinAboveMax { tenant, pool } => {
                write!(f, "tenant {tenant} has min_share > max_share in the {pool} pool")
            }
            ConfigError::NoTenants => write!(f, "configuration has no tenants"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl RmConfig {
    /// A configuration under the default fair-share policy.
    pub fn new(tenants: Vec<TenantConfig>) -> Self {
        Self { tenants, policy: SchedPolicy::FairShare }
    }

    /// `n` tenants of [`TenantConfig::fair_default`].
    pub fn fair(n: usize) -> Self {
        Self::new(vec![TenantConfig::fair_default(); n])
    }

    /// Swaps the scheduler backend (the tenant knobs are unchanged; each
    /// backend interprets them natively).
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tenants.is_empty() {
            return Err(ConfigError::NoTenants);
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
                || !t.weight.is_finite()
            {
                return Err(ConfigError::NonPositiveWeight { tenant: i });
            }
            for kind in TaskKind::ALL {
                if t.min_share[kind.index()] > t.max_share[kind.index()] {
                    return Err(ConfigError::MinAboveMax { tenant: i, pool: kind });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::MIN;

    #[test]
    fn cluster_scaling() {
        let c = ClusterSpec::new(100, 60);
        let half = c.scaled(0.5);
        assert_eq!(half.capacity(TaskKind::Map), 50);
        assert_eq!(half.capacity(TaskKind::Reduce), 30);
        assert_eq!(half.total_capacity(), 80);
        // Never scales to zero.
        let tiny = ClusterSpec::new(1, 1).scaled(0.01);
        assert_eq!(tiny.total_capacity(), 2);
    }

    #[test]
    fn builder_chain() {
        let t = TenantConfig::fair_default()
            .with_weight(2.5)
            .with_min_share(10, 5)
            .with_max_share(50, 25)
            .with_fair_timeout(5 * MIN)
            .with_min_timeout(MIN);
        assert_eq!(t.weight, 2.5);
        assert_eq!(t.min_share, [10, 5]);
        assert_eq!(t.max_share, [50, 25]);
        assert_eq!(t.fair_timeout, Some(5 * MIN));
        assert_eq!(t.min_timeout, Some(MIN));
    }

    #[test]
    fn validation() {
        assert_eq!(RmConfig::new(vec![]).validate(), Err(ConfigError::NoTenants));

        let mut cfg = RmConfig::fair(2);
        assert!(cfg.validate().is_ok());

        cfg.tenants[1].weight = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveWeight { tenant: 1 }));
        cfg.tenants[1].weight = f64::NAN;
        assert_eq!(cfg.validate(), Err(ConfigError::NonPositiveWeight { tenant: 1 }));
        cfg.tenants[1].weight = 1.0;

        cfg.tenants[0].min_share = [5, 0];
        cfg.tenants[0].max_share = [4, u32::MAX];
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::MinAboveMax { tenant: 0, pool: TaskKind::Map })
        );
    }
}
