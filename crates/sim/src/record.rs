//! The task schedule produced by a simulation run.
//!
//! A *task schedule* — start time, end time, and resource allocation of every
//! task run on behalf of each tenant (§3.2) — is the domain over which all QS
//! metrics are defined, so this is the central exchange type between the
//! Schedule Predictor, the What-if Model, and the QS evaluators.
//!
//! # Layout
//!
//! The canonical storage is **columnar** ([`ScheduleColumns`]): parallel
//! arrays per job field, per task field, and one flat task-major attempt
//! array addressed by CSR-style spans. The QS metrics are linear scans over
//! those records, so the struct-of-arrays layout keeps every scan on
//! contiguous, branch-predictable memory — the predict→optimize loop
//! evaluates thousands of schedules per control iteration and this is its
//! read side. [`Schedule`] wraps the columns and preserves the original
//! row-oriented API as cheap views: [`JobRecord`]s materialize on the fly
//! (they are `Copy`), task rows come out as [`TaskView`]s borrowing their
//! attempt slice, and serde round-trips through the row encoding so the JSON
//! form is byte-identical to the historical `{jobs: [...], tasks: [...]}`
//! schema.

use serde::{Deserialize, Serialize};
use tempo_workload::time::Time;
use tempo_workload::{TaskKind, TenantId, NUM_KINDS};

/// Column sentinel for "no timestamp" (`None` in the row encoding). Larger
/// than any real time, so window predicates (`finish < end`) reject it
/// without a branch.
pub const NO_TIME: Time = Time::MAX;

/// Splits an optional tenant filter into a branch-free `(match-all, want)`
/// pair: `any | (column == want)` is the per-row keep mask used by every
/// column scan (here and in `tempo_qs::metrics`).
#[inline]
pub fn tenant_mask(tenant: Option<TenantId>) -> (bool, TenantId) {
    match tenant {
        None => (true, 0),
        Some(t) => (false, t),
    }
}

/// Why a task attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptOutcome {
    /// Ran to completion.
    Completed,
    /// Killed by the RM to free resources for a starved tenant; all work is
    /// lost and the task restarts from scratch (the mechanism of Figure 1).
    Preempted,
    /// Failed (noise injection); the task retries.
    Failed,
    /// Still occupying a container when the simulation horizon ended.
    CutOff,
}

/// One attempt of a task: the interval it occupied a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attempt {
    /// When the container was acquired.
    pub launch: Time,
    /// When useful work began. Equal to `launch` for maps; reduces launched
    /// before the map barrier idle-wait until all maps finish.
    pub work_start: Time,
    /// When the container was released.
    pub end: Time,
    pub outcome: AttemptOutcome,
}

impl Attempt {
    /// Container-occupancy time (drives raw utilization).
    #[inline]
    pub fn occupancy(&self) -> Time {
        self.end - self.launch
    }

    /// Time spent doing work that was ultimately kept. Preempted/failed
    /// attempts contribute zero: their work is redone.
    #[inline]
    pub fn useful_work(&self) -> Time {
        match self.outcome {
            AttemptOutcome::Completed => self.end.saturating_sub(self.work_start),
            _ => 0,
        }
    }
}

/// Full history of one task across restarts — the owned row form, used for
/// serde and for callers that need to detach a row from the schedule. Live
/// scans use the borrowing [`TaskView`] instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRecord {
    pub job: u64,
    pub tenant: TenantId,
    pub kind: TaskKind,
    /// When the task first became runnable (entered the tenant queue).
    pub runnable_at: Time,
    /// Base duration from the trace (pre-noise).
    pub duration: Time,
    pub attempts: Vec<Attempt>,
}

impl TaskRecord {
    /// Time from becoming runnable to first acquiring a container.
    pub fn wait_time(&self) -> Option<Time> {
        self.attempts.first().map(|a| a.launch - self.runnable_at)
    }

    /// Completion time, if the task finished within the horizon.
    pub fn finish(&self) -> Option<Time> {
        self.attempts.iter().find(|a| a.outcome == AttemptOutcome::Completed).map(|a| a.end)
    }

    pub fn was_preempted(&self) -> bool {
        self.attempts.iter().any(|a| a.outcome == AttemptOutcome::Preempted)
    }

    pub fn preemption_count(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Preempted).count()
    }

    /// Container time consumed by attempts whose work was thrown away.
    pub fn wasted_time(&self) -> Time {
        self.attempts
            .iter()
            .filter(|a| matches!(a.outcome, AttemptOutcome::Preempted | AttemptOutcome::Failed))
            .map(Attempt::occupancy)
            .sum()
    }
}

/// Borrowed row view of one task: the same shape as [`TaskRecord`] but with
/// the attempt history as a slice into the schedule's flat attempt column —
/// no allocation to iterate tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskView<'a> {
    pub job: u64,
    pub tenant: TenantId,
    pub kind: TaskKind,
    pub runnable_at: Time,
    pub duration: Time,
    pub attempts: &'a [Attempt],
}

impl TaskView<'_> {
    /// Time from becoming runnable to first acquiring a container.
    pub fn wait_time(&self) -> Option<Time> {
        self.attempts.first().map(|a| a.launch - self.runnable_at)
    }

    /// Completion time, if the task finished within the horizon.
    pub fn finish(&self) -> Option<Time> {
        self.attempts.iter().find(|a| a.outcome == AttemptOutcome::Completed).map(|a| a.end)
    }

    pub fn was_preempted(&self) -> bool {
        self.attempts.iter().any(|a| a.outcome == AttemptOutcome::Preempted)
    }

    pub fn preemption_count(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Preempted).count()
    }

    /// Container time consumed by attempts whose work was thrown away.
    pub fn wasted_time(&self) -> Time {
        self.attempts
            .iter()
            .filter(|a| matches!(a.outcome, AttemptOutcome::Preempted | AttemptOutcome::Failed))
            .map(Attempt::occupancy)
            .sum()
    }

    /// Detaches the view into an owned [`TaskRecord`] (clones the attempts).
    pub fn to_record(&self) -> TaskRecord {
        TaskRecord {
            job: self.job,
            tenant: self.tenant,
            kind: self.kind,
            runnable_at: self.runnable_at,
            duration: self.duration,
            attempts: self.attempts.to_vec(),
        }
    }
}

/// Per-job outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: TenantId,
    pub submit: Time,
    /// Completion of the job's last task, if within the horizon.
    pub finish: Option<Time>,
    pub deadline: Option<Time>,
    pub map_count: u32,
    pub reduce_count: u32,
}

impl JobRecord {
    /// Response time (`t_f − t_s` in QS_AJR), if completed.
    pub fn response_time(&self) -> Option<Time> {
        self.finish.map(|f| f - self.submit)
    }

    /// Whether the job missed its deadline under slack `gamma`:
    /// `finish > deadline + gamma × (finish − submit)` (QS_DL, §5.1 — the
    /// slack is a fraction of the job's own duration).
    pub fn missed_deadline(&self, gamma: f64) -> Option<bool> {
        match (self.finish, self.deadline) {
            (Some(f), Some(d)) => {
                let slack = (gamma * (f - self.submit) as f64).max(0.0) as Time;
                Some(f > d.saturating_add(slack))
            }
            _ => None,
        }
    }
}

/// Struct-of-arrays task schedule: the canonical product of a simulation
/// run.
///
/// Invariants (upheld by the engine and [`Schedule::from_rows`]):
/// * all job/task columns have one entry per job/task;
/// * `task_attempt_off` has `num_tasks() + 1` entries, is non-decreasing,
///   starts at 0 and ends at `attempts.len()` — task `i`'s attempts are
///   `attempts[off[i]..off[i+1]]`, in task-major order;
/// * `att_tenant`/`att_kind` mirror the owning task's tenant/kind per
///   attempt (denormalized so pool/tenant occupancy integrals scan the flat
///   attempt columns without touching the task table);
/// * `task_preempt_count[i]` counts `Preempted` outcomes in task `i`'s span;
/// * `job_finish`/`job_deadline` use [`NO_TIME`] for `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleColumns {
    /// End of the simulated horizon (all events up to here were processed).
    pub horizon: Time,
    /// Pool capacities in effect (echoed for utilization math).
    pub capacity: [u32; NUM_KINDS],
    // ---- job columns ----
    pub job_id: Vec<u64>,
    pub job_tenant: Vec<TenantId>,
    pub job_submit: Vec<Time>,
    pub job_finish: Vec<Time>,
    pub job_deadline: Vec<Time>,
    pub job_map_count: Vec<u32>,
    pub job_reduce_count: Vec<u32>,
    // ---- task columns ----
    pub task_job: Vec<u64>,
    pub task_tenant: Vec<TenantId>,
    pub task_kind: Vec<TaskKind>,
    pub task_runnable_at: Vec<Time>,
    pub task_duration: Vec<Time>,
    /// CSR offsets into the attempt columns (`num_tasks() + 1` entries).
    pub task_attempt_off: Vec<u32>,
    pub task_preempt_count: Vec<u32>,
    // ---- attempt columns (task-major) ----
    pub attempts: Vec<Attempt>,
    pub att_tenant: Vec<TenantId>,
    pub att_kind: Vec<TaskKind>,
}

impl ScheduleColumns {
    /// An empty schedule with the given horizon and capacities.
    pub fn empty(horizon: Time, capacity: [u32; NUM_KINDS]) -> Self {
        Self {
            horizon,
            capacity,
            job_id: Vec::new(),
            job_tenant: Vec::new(),
            job_submit: Vec::new(),
            job_finish: Vec::new(),
            job_deadline: Vec::new(),
            job_map_count: Vec::new(),
            job_reduce_count: Vec::new(),
            task_job: Vec::new(),
            task_tenant: Vec::new(),
            task_kind: Vec::new(),
            task_runnable_at: Vec::new(),
            task_duration: Vec::new(),
            task_attempt_off: vec![0],
            task_preempt_count: Vec::new(),
            attempts: Vec::new(),
            att_tenant: Vec::new(),
            att_kind: Vec::new(),
        }
    }

    /// Pre-sizes every column for a known shape (one allocation each on the
    /// simulate hot path).
    pub fn with_capacity(
        horizon: Time,
        capacity: [u32; NUM_KINDS],
        jobs: usize,
        tasks: usize,
        attempts: usize,
    ) -> Self {
        let mut c = Self::empty(horizon, capacity);
        c.job_id.reserve(jobs);
        c.job_tenant.reserve(jobs);
        c.job_submit.reserve(jobs);
        c.job_finish.reserve(jobs);
        c.job_deadline.reserve(jobs);
        c.job_map_count.reserve(jobs);
        c.job_reduce_count.reserve(jobs);
        c.task_job.reserve(tasks);
        c.task_tenant.reserve(tasks);
        c.task_kind.reserve(tasks);
        c.task_runnable_at.reserve(tasks);
        c.task_duration.reserve(tasks);
        c.task_attempt_off.reserve(tasks + 1);
        c.task_preempt_count.reserve(tasks);
        c.attempts.reserve(attempts);
        c.att_tenant.reserve(attempts);
        c.att_kind.reserve(attempts);
        c
    }

    pub fn num_jobs(&self) -> usize {
        self.job_id.len()
    }

    pub fn num_tasks(&self) -> usize {
        self.task_job.len()
    }

    pub fn num_attempts(&self) -> usize {
        self.attempts.len()
    }

    /// Appends one job row.
    pub fn push_job(&mut self, j: JobRecord) {
        self.job_id.push(j.id);
        self.job_tenant.push(j.tenant);
        self.job_submit.push(j.submit);
        self.job_finish.push(j.finish.unwrap_or(NO_TIME));
        self.job_deadline.push(j.deadline.unwrap_or(NO_TIME));
        self.job_map_count.push(j.map_count);
        self.job_reduce_count.push(j.reduce_count);
    }

    /// Appends one task row with its attempts.
    pub fn push_task(
        &mut self,
        job: u64,
        tenant: TenantId,
        kind: TaskKind,
        runnable_at: Time,
        duration: Time,
        attempts: impl IntoIterator<Item = Attempt>,
    ) {
        self.task_job.push(job);
        self.task_tenant.push(tenant);
        self.task_kind.push(kind);
        self.task_runnable_at.push(runnable_at);
        self.task_duration.push(duration);
        let mut preempted = 0u32;
        for a in attempts {
            preempted += (a.outcome == AttemptOutcome::Preempted) as u32;
            self.attempts.push(a);
            self.att_tenant.push(tenant);
            self.att_kind.push(kind);
        }
        self.task_attempt_off.push(self.attempts.len() as u32);
        self.task_preempt_count.push(preempted);
    }

    /// Materializes job row `i`.
    #[inline]
    pub fn job(&self, i: usize) -> JobRecord {
        let opt = |t: Time| if t == NO_TIME { None } else { Some(t) };
        JobRecord {
            id: self.job_id[i],
            tenant: self.job_tenant[i],
            submit: self.job_submit[i],
            finish: opt(self.job_finish[i]),
            deadline: opt(self.job_deadline[i]),
            map_count: self.job_map_count[i],
            reduce_count: self.job_reduce_count[i],
        }
    }

    /// Borrows task row `i`.
    #[inline]
    pub fn task(&self, i: usize) -> TaskView<'_> {
        let lo = self.task_attempt_off[i] as usize;
        let hi = self.task_attempt_off[i + 1] as usize;
        TaskView {
            job: self.task_job[i],
            tenant: self.task_tenant[i],
            kind: self.task_kind[i],
            runnable_at: self.task_runnable_at[i],
            duration: self.task_duration[i],
            attempts: &self.attempts[lo..hi],
        }
    }

    /// Total container-time occupied in pool `kind` (optionally one tenant)
    /// over `[start, end)`, clipping attempts to the window. One pass over
    /// the flat attempt columns; the filter is a mask multiply, not a
    /// branch.
    pub fn occupancy_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        crate::kernel::occupancy(
            &self.attempts,
            &self.att_kind,
            &self.att_tenant,
            kind,
            tenant,
            start,
            end,
        )
    }

    /// Like [`ScheduleColumns::occupancy_in`] but counting only *useful*
    /// work — completed attempts, after their shuffle barrier (the
    /// "effective utilization" of Figure 1 that excludes region I).
    pub fn useful_work_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        crate::kernel::useful_work(
            &self.attempts,
            &self.att_kind,
            &self.att_tenant,
            kind,
            tenant,
            start,
            end,
        )
    }

    /// Debug-only structural validation of the column invariants.
    pub fn check_invariants(&self) {
        let nj = self.num_jobs();
        assert!(
            [
                self.job_tenant.len(),
                self.job_submit.len(),
                self.job_finish.len(),
                self.job_deadline.len(),
                self.job_map_count.len(),
                self.job_reduce_count.len(),
            ]
            .iter()
            .all(|&l| l == nj),
            "ragged job columns"
        );
        let nt = self.num_tasks();
        assert!(
            [
                self.task_tenant.len(),
                self.task_kind.len(),
                self.task_runnable_at.len(),
                self.task_duration.len(),
                self.task_preempt_count.len(),
            ]
            .iter()
            .all(|&l| l == nt),
            "ragged task columns"
        );
        assert_eq!(self.task_attempt_off.len(), nt + 1, "offset column arity");
        assert_eq!(self.task_attempt_off.first(), Some(&0));
        assert_eq!(
            *self.task_attempt_off.last().expect("non-empty offsets"),
            self.attempts.len() as u32
        );
        assert!(self.task_attempt_off.windows(2).all(|w| w[0] <= w[1]), "offsets not sorted");
        let na = self.num_attempts();
        assert!(self.att_tenant.len() == na && self.att_kind.len() == na, "ragged attempt columns");
        for i in 0..nt {
            let t = self.task(i);
            let lo = self.task_attempt_off[i] as usize;
            for (k, a) in t.attempts.iter().enumerate() {
                assert_eq!(self.att_tenant[lo + k], t.tenant, "denormalized tenant mismatch");
                assert_eq!(self.att_kind[lo + k], t.kind, "denormalized kind mismatch");
                assert!(a.end >= a.launch, "attempt ends before launch");
            }
            assert_eq!(t.preemption_count() as u32, self.task_preempt_count[i]);
        }
    }
}

/// Everything a simulation run produced.
///
/// A thin wrapper over [`ScheduleColumns`]; the historical row API is
/// preserved as views ([`Schedule::jobs`], [`Schedule::tasks`]) and serde
/// goes through the row encoding, so serialized output is unchanged from the
/// row-of-structs era.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub columns: ScheduleColumns,
}

impl Schedule {
    /// End of the simulated horizon (all events up to here were processed).
    #[inline]
    pub fn horizon(&self) -> Time {
        self.columns.horizon
    }

    /// Pool capacities in effect (echoed for utilization math).
    #[inline]
    pub fn capacity(&self) -> [u32; NUM_KINDS] {
        self.columns.capacity
    }

    pub fn num_jobs(&self) -> usize {
        self.columns.num_jobs()
    }

    pub fn num_tasks(&self) -> usize {
        self.columns.num_tasks()
    }

    /// Materializes job row `i`.
    #[inline]
    pub fn job(&self, i: usize) -> JobRecord {
        self.columns.job(i)
    }

    /// Row view of every job, in simulation order.
    pub fn jobs(&self) -> impl ExactSizeIterator<Item = JobRecord> + '_ {
        (0..self.columns.num_jobs()).map(|i| self.columns.job(i))
    }

    /// Borrows task row `i`.
    #[inline]
    pub fn task(&self, i: usize) -> TaskView<'_> {
        self.columns.task(i)
    }

    /// Row view of every task, in simulation order.
    pub fn tasks(&self) -> impl ExactSizeIterator<Item = TaskView<'_>> {
        (0..self.columns.num_tasks()).map(|i| self.columns.task(i))
    }

    /// Builds a schedule from owned row records (deserialization, tests,
    /// hand-built fixtures).
    pub fn from_rows(
        horizon: Time,
        capacity: [u32; NUM_KINDS],
        jobs: Vec<JobRecord>,
        tasks: Vec<TaskRecord>,
    ) -> Self {
        let attempts = tasks.iter().map(|t| t.attempts.len()).sum();
        let mut columns =
            ScheduleColumns::with_capacity(horizon, capacity, jobs.len(), tasks.len(), attempts);
        for j in jobs {
            columns.push_job(j);
        }
        for t in tasks {
            columns.push_task(t.job, t.tenant, t.kind, t.runnable_at, t.duration, t.attempts);
        }
        Schedule { columns }
    }

    /// Detaches every task into owned [`TaskRecord`] rows (allocates; meant
    /// for serde and parity checks, not the hot path).
    pub fn to_task_records(&self) -> Vec<TaskRecord> {
        self.tasks().map(|t| t.to_record()).collect()
    }

    /// Jobs of a tenant submitted *and completed* inside `[start, end)` —
    /// the set `J_i` over which §5.1 defines the job-level QS metrics.
    pub fn completed_jobs_in(&self, tenant: TenantId, start: Time, end: Time) -> Vec<JobRecord> {
        let c = &self.columns;
        let mut out = Vec::new();
        for i in 0..c.num_jobs() {
            if c.job_tenant[i] == tenant
                && c.job_submit[i] >= start
                && c.job_submit[i] < end
                && c.job_finish[i] < end
            {
                out.push(c.job(i));
            }
        }
        out
    }

    /// All task records of a tenant.
    pub fn tenant_tasks(&self, tenant: TenantId) -> impl Iterator<Item = TaskView<'_>> {
        self.tasks().filter(move |t| t.tenant == tenant)
    }

    /// Fraction of tasks of `kind` (optionally restricted to one tenant)
    /// that were preempted at least once (Figure 7's metric). Scans the
    /// task columns — the cached per-task preemption counts make this a
    /// compare-and-count pass with no attempt traversal.
    pub fn preemption_fraction(&self, kind: TaskKind, tenant: Option<TenantId>) -> f64 {
        let c = &self.columns;
        let (total, preempted) = crate::kernel::preempt_stats(
            &c.task_kind,
            &c.task_tenant,
            &c.task_preempt_count,
            kind,
            tenant,
        );
        if total == 0 {
            0.0
        } else {
            preempted as f64 / total as f64
        }
    }

    /// Total container-time occupied in a pool over `[start, end)`,
    /// clipping attempts to the window.
    pub fn occupancy_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        self.columns.occupancy_in(kind, tenant, start, end)
    }

    /// Like [`Schedule::occupancy_in`] but counting only *useful* work
    /// (completed attempts, after their shuffle barrier) — the "effective
    /// utilization" of Figure 1 that excludes region I.
    pub fn useful_work_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        self.columns.useful_work_in(kind, tenant, start, end)
    }

    /// Raw pool utilization over `[start, end)`: occupied container-time
    /// over available container-time.
    pub fn utilization(&self, kind: TaskKind, start: Time, end: Time) -> f64 {
        let avail =
            self.columns.capacity[kind.index()] as u128 * (end.saturating_sub(start)) as u128;
        if avail == 0 {
            return 0.0;
        }
        self.occupancy_in(kind, None, start, end) as f64 / avail as f64
    }

    /// Effective pool utilization (useful work only — excludes preempted
    /// attempts' lost work and shuffle idling).
    pub fn effective_utilization(&self, kind: TaskKind, start: Time, end: Time) -> f64 {
        let avail =
            self.columns.capacity[kind.index()] as u128 * (end.saturating_sub(start)) as u128;
        if avail == 0 {
            return 0.0;
        }
        self.useful_work_in(kind, None, start, end) as f64 / avail as f64
    }
}

/// The historical row encoding, kept as the wire format: serializing a
/// columnar [`Schedule`] emits exactly what the old
/// `struct Schedule { horizon, capacity, jobs, tasks }` derive produced.
///
/// NOTE for the eventual real-serde swap: replace these manual impls with
/// `#[serde(into = "ScheduleRows", from = "ScheduleRows")]` on `Schedule`.
#[derive(Serialize, Deserialize)]
struct ScheduleRows {
    horizon: Time,
    capacity: [u32; NUM_KINDS],
    jobs: Vec<JobRecord>,
    tasks: Vec<TaskRecord>,
}

impl Serialize for Schedule {
    fn to_value(&self) -> serde::Value {
        ScheduleRows {
            horizon: self.horizon(),
            capacity: self.capacity(),
            jobs: self.jobs().collect(),
            tasks: self.to_task_records(),
        }
        .to_value()
    }
}

impl Deserialize for Schedule {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let rows = ScheduleRows::from_value(value)?;
        Ok(Schedule::from_rows(rows.horizon, rows.capacity, rows.jobs, rows.tasks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::SEC;

    fn attempt(launch: Time, end: Time, outcome: AttemptOutcome) -> Attempt {
        Attempt { launch, work_start: launch, end, outcome }
    }

    #[test]
    fn attempt_accounting() {
        let ok = attempt(10, 30, AttemptOutcome::Completed);
        assert_eq!(ok.occupancy(), 20);
        assert_eq!(ok.useful_work(), 20);
        let killed = attempt(10, 30, AttemptOutcome::Preempted);
        assert_eq!(killed.useful_work(), 0);
        let idle_reduce =
            Attempt { launch: 10, work_start: 25, end: 30, outcome: AttemptOutcome::Completed };
        assert_eq!(idle_reduce.useful_work(), 5);
        assert_eq!(idle_reduce.occupancy(), 20);
    }

    #[test]
    fn task_record_accessors() {
        let t = TaskRecord {
            job: 1,
            tenant: 0,
            kind: TaskKind::Map,
            runnable_at: 5,
            duration: 15,
            attempts: vec![
                attempt(10, 20, AttemptOutcome::Preempted),
                attempt(22, 37, AttemptOutcome::Completed),
            ],
        };
        assert_eq!(t.wait_time(), Some(5));
        assert_eq!(t.finish(), Some(37));
        assert!(t.was_preempted());
        assert_eq!(t.preemption_count(), 1);
        assert_eq!(t.wasted_time(), 10);
        // The borrowing view agrees with the owned record everywhere.
        let sched = Schedule::from_rows(100, [1, 1], vec![], vec![t.clone()]);
        let v = sched.task(0);
        assert_eq!(v.wait_time(), t.wait_time());
        assert_eq!(v.finish(), t.finish());
        assert_eq!(v.preemption_count(), t.preemption_count());
        assert_eq!(v.wasted_time(), t.wasted_time());
        assert_eq!(v.to_record(), t);
    }

    #[test]
    fn deadline_slack_semantics() {
        let j = JobRecord {
            id: 1,
            tenant: 0,
            submit: 0,
            finish: Some(110 * SEC),
            deadline: Some(100 * SEC),
            map_count: 1,
            reduce_count: 0,
        };
        // No slack: 110 > 100 → missed.
        assert_eq!(j.missed_deadline(0.0), Some(true));
        // 25% slack of the 110s duration = 27.5s → 110 ≤ 127.5 → ok.
        assert_eq!(j.missed_deadline(0.25), Some(false));
        let unfinished = JobRecord { finish: None, ..j };
        assert_eq!(unfinished.missed_deadline(0.0), None);
        let no_deadline = JobRecord { deadline: None, ..j };
        assert_eq!(no_deadline.missed_deadline(0.0), None);
    }

    fn job(id: u64, tenant: TenantId, submit: Time, finish: Option<Time>) -> JobRecord {
        JobRecord { id, tenant, submit, finish, deadline: None, map_count: 1, reduce_count: 0 }
    }

    #[test]
    fn window_filtering() {
        let sched = Schedule::from_rows(
            100,
            [10, 10],
            vec![
                job(1, 0, 10, Some(50)),
                job(2, 0, 20, None),
                job(3, 1, 10, Some(40)),
                job(4, 0, 90, Some(99)),
            ],
            vec![],
        );
        let in_window = sched.completed_jobs_in(0, 0, 60);
        assert_eq!(in_window.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(sched.completed_jobs_in(0, 0, 100).len(), 2);
    }

    #[test]
    fn utilization_math() {
        let sched = Schedule::from_rows(
            100,
            [2, 1],
            vec![],
            vec![
                TaskRecord {
                    job: 1,
                    tenant: 0,
                    kind: TaskKind::Map,
                    runnable_at: 0,
                    duration: 50,
                    attempts: vec![attempt(0, 50, AttemptOutcome::Completed)],
                },
                TaskRecord {
                    job: 1,
                    tenant: 1,
                    kind: TaskKind::Map,
                    runnable_at: 0,
                    duration: 50,
                    attempts: vec![
                        attempt(0, 25, AttemptOutcome::Preempted),
                        attempt(25, 75, AttemptOutcome::Completed),
                    ],
                },
            ],
        );
        sched.columns.check_invariants();
        // Occupancy over [0,100): 50 + 25 + 50 = 125 of 200 available.
        assert!((sched.utilization(TaskKind::Map, 0, 100) - 0.625).abs() < 1e-9);
        // Useful: 50 + 50 = 100 → 0.5 — the preempted attempt is region I.
        assert!((sched.effective_utilization(TaskKind::Map, 0, 100) - 0.5).abs() < 1e-9);
        // Clipping: window [0,30) sees 30 + 25 + 5 = 60 of 60 → 1.0.
        assert!((sched.utilization(TaskKind::Map, 0, 30) - 1.0).abs() < 1e-9);
        // Per-tenant occupancy.
        assert_eq!(sched.occupancy_in(TaskKind::Map, Some(1), 0, 100), 75);
        // Preemption fraction: one of two map tasks.
        assert!((sched.preemption_fraction(TaskKind::Map, None) - 0.5).abs() < 1e-9);
        assert_eq!(sched.preemption_fraction(TaskKind::Reduce, None), 0.0);
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let jobs = vec![job(1, 0, 10, Some(50)), job(2, 1, 20, None)];
        let tasks = vec![
            TaskRecord {
                job: 1,
                tenant: 0,
                kind: TaskKind::Map,
                runnable_at: 10,
                duration: 40,
                attempts: vec![attempt(10, 50, AttemptOutcome::Completed)],
            },
            TaskRecord {
                job: 2,
                tenant: 1,
                kind: TaskKind::Reduce,
                runnable_at: 20,
                duration: 30,
                attempts: vec![],
            },
        ];
        let sched = Schedule::from_rows(77, [3, 2], jobs.clone(), tasks.clone());
        sched.columns.check_invariants();
        assert_eq!(sched.jobs().collect::<Vec<_>>(), jobs);
        assert_eq!(sched.to_task_records(), tasks);
        assert_eq!(sched.horizon(), 77);
        assert_eq!(sched.capacity(), [3, 2]);
    }

    #[test]
    fn serde_matches_row_struct_encoding() {
        // The columnar Schedule must serialize byte-identically to the old
        // row-of-structs derive, and deserialize back losslessly.
        #[derive(Serialize)]
        struct LegacySchedule {
            horizon: Time,
            capacity: [u32; NUM_KINDS],
            jobs: Vec<JobRecord>,
            tasks: Vec<TaskRecord>,
        }
        let tasks = vec![TaskRecord {
            job: 9,
            tenant: 1,
            kind: TaskKind::Reduce,
            runnable_at: 4,
            duration: 6,
            attempts: vec![
                attempt(5, 8, AttemptOutcome::Failed),
                attempt(9, 15, AttemptOutcome::Completed),
            ],
        }];
        let jobs = vec![JobRecord {
            id: 9,
            tenant: 1,
            submit: 4,
            finish: Some(15),
            deadline: Some(20),
            map_count: 0,
            reduce_count: 1,
        }];
        let sched = Schedule::from_rows(30, [2, 2], jobs.clone(), tasks.clone());
        let legacy = LegacySchedule { horizon: 30, capacity: [2, 2], jobs, tasks };
        let json = serde_json::to_string(&sched).unwrap();
        assert_eq!(json, serde_json::to_string(&legacy).unwrap());
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched);
    }
}
