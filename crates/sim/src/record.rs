//! The task schedule produced by a simulation run.
//!
//! A *task schedule* — start time, end time, and resource allocation of every
//! task run on behalf of each tenant (§3.2) — is the domain over which all QS
//! metrics are defined, so this is the central exchange type between the
//! Schedule Predictor, the What-if Model, and the QS evaluators.

use serde::{Deserialize, Serialize};
use tempo_workload::time::Time;
use tempo_workload::{TaskKind, TenantId};

/// Why a task attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptOutcome {
    /// Ran to completion.
    Completed,
    /// Killed by the RM to free resources for a starved tenant; all work is
    /// lost and the task restarts from scratch (the mechanism of Figure 1).
    Preempted,
    /// Failed (noise injection); the task retries.
    Failed,
    /// Still occupying a container when the simulation horizon ended.
    CutOff,
}

/// One attempt of a task: the interval it occupied a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attempt {
    /// When the container was acquired.
    pub launch: Time,
    /// When useful work began. Equal to `launch` for maps; reduces launched
    /// before the map barrier idle-wait until all maps finish.
    pub work_start: Time,
    /// When the container was released.
    pub end: Time,
    pub outcome: AttemptOutcome,
}

impl Attempt {
    /// Container-occupancy time (drives raw utilization).
    #[inline]
    pub fn occupancy(&self) -> Time {
        self.end - self.launch
    }

    /// Time spent doing work that was ultimately kept. Preempted/failed
    /// attempts contribute zero: their work is redone.
    #[inline]
    pub fn useful_work(&self) -> Time {
        match self.outcome {
            AttemptOutcome::Completed => self.end.saturating_sub(self.work_start),
            _ => 0,
        }
    }
}

/// Full history of one task across restarts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRecord {
    pub job: u64,
    pub tenant: TenantId,
    pub kind: TaskKind,
    /// When the task first became runnable (entered the tenant queue).
    pub runnable_at: Time,
    /// Base duration from the trace (pre-noise).
    pub duration: Time,
    pub attempts: Vec<Attempt>,
}

impl TaskRecord {
    /// Time from becoming runnable to first acquiring a container.
    pub fn wait_time(&self) -> Option<Time> {
        self.attempts.first().map(|a| a.launch - self.runnable_at)
    }

    /// Completion time, if the task finished within the horizon.
    pub fn finish(&self) -> Option<Time> {
        self.attempts.iter().find(|a| a.outcome == AttemptOutcome::Completed).map(|a| a.end)
    }

    pub fn was_preempted(&self) -> bool {
        self.attempts.iter().any(|a| a.outcome == AttemptOutcome::Preempted)
    }

    pub fn preemption_count(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome == AttemptOutcome::Preempted).count()
    }

    /// Container time consumed by attempts whose work was thrown away.
    pub fn wasted_time(&self) -> Time {
        self.attempts
            .iter()
            .filter(|a| matches!(a.outcome, AttemptOutcome::Preempted | AttemptOutcome::Failed))
            .map(Attempt::occupancy)
            .sum()
    }
}

/// Per-job outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    pub id: u64,
    pub tenant: TenantId,
    pub submit: Time,
    /// Completion of the job's last task, if within the horizon.
    pub finish: Option<Time>,
    pub deadline: Option<Time>,
    pub map_count: u32,
    pub reduce_count: u32,
}

impl JobRecord {
    /// Response time (`t_f − t_s` in QS_AJR), if completed.
    pub fn response_time(&self) -> Option<Time> {
        self.finish.map(|f| f - self.submit)
    }

    /// Whether the job missed its deadline under slack `gamma`:
    /// `finish > deadline + gamma × (finish − submit)` (QS_DL, §5.1 — the
    /// slack is a fraction of the job's own duration).
    pub fn missed_deadline(&self, gamma: f64) -> Option<bool> {
        match (self.finish, self.deadline) {
            (Some(f), Some(d)) => {
                let slack = (gamma * (f - self.submit) as f64).max(0.0) as Time;
                Some(f > d.saturating_add(slack))
            }
            _ => None,
        }
    }
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// End of the simulated horizon (all events up to here were processed).
    pub horizon: Time,
    /// Pool capacities in effect (echoed for utilization math).
    pub capacity: [u32; tempo_workload::NUM_KINDS],
    pub jobs: Vec<JobRecord>,
    pub tasks: Vec<TaskRecord>,
}

impl Schedule {
    /// Jobs of a tenant submitted *and completed* inside `[start, end)` —
    /// the set `J_i` over which §5.1 defines the job-level QS metrics.
    pub fn completed_jobs_in(&self, tenant: TenantId, start: Time, end: Time) -> Vec<&JobRecord> {
        self.jobs
            .iter()
            .filter(|j| j.tenant == tenant)
            .filter(|j| j.submit >= start && j.submit < end)
            .filter(|j| j.finish.is_some_and(|f| f < end))
            .collect()
    }

    /// All task records of a tenant.
    pub fn tenant_tasks(&self, tenant: TenantId) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(move |t| t.tenant == tenant)
    }

    /// Fraction of tasks of `kind` (optionally restricted to one tenant)
    /// that were preempted at least once (Figure 7's metric).
    pub fn preemption_fraction(&self, kind: TaskKind, tenant: Option<TenantId>) -> f64 {
        let mut total = 0usize;
        let mut preempted = 0usize;
        for t in &self.tasks {
            if t.kind != kind {
                continue;
            }
            if let Some(id) = tenant {
                if t.tenant != id {
                    continue;
                }
            }
            total += 1;
            if t.was_preempted() {
                preempted += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            preempted as f64 / total as f64
        }
    }

    /// Total container-time occupied in a pool over `[start, end)`,
    /// clipping attempts to the window.
    pub fn occupancy_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        let mut sum = 0;
        for t in &self.tasks {
            if t.kind != kind {
                continue;
            }
            if let Some(id) = tenant {
                if t.tenant != id {
                    continue;
                }
            }
            for a in &t.attempts {
                let s = a.launch.max(start);
                let e = a.end.min(end);
                if e > s {
                    sum += e - s;
                }
            }
        }
        sum
    }

    /// Like [`Schedule::occupancy_in`] but counting only *useful* work
    /// (completed attempts, after their shuffle barrier) — the "effective
    /// utilization" of Figure 1 that excludes region I.
    pub fn useful_work_in(
        &self,
        kind: TaskKind,
        tenant: Option<TenantId>,
        start: Time,
        end: Time,
    ) -> Time {
        let mut sum = 0;
        for t in &self.tasks {
            if t.kind != kind {
                continue;
            }
            if let Some(id) = tenant {
                if t.tenant != id {
                    continue;
                }
            }
            for a in &t.attempts {
                if a.outcome != AttemptOutcome::Completed {
                    continue;
                }
                let s = a.work_start.max(start);
                let e = a.end.min(end);
                if e > s {
                    sum += e - s;
                }
            }
        }
        sum
    }

    /// Raw pool utilization over `[start, end)`: occupied container-time
    /// over available container-time.
    pub fn utilization(&self, kind: TaskKind, start: Time, end: Time) -> f64 {
        let avail = self.capacity[kind.index()] as u128 * (end.saturating_sub(start)) as u128;
        if avail == 0 {
            return 0.0;
        }
        self.occupancy_in(kind, None, start, end) as f64 / avail as f64
    }

    /// Effective pool utilization (useful work only — excludes preempted
    /// attempts' lost work and shuffle idling).
    pub fn effective_utilization(&self, kind: TaskKind, start: Time, end: Time) -> f64 {
        let avail = self.capacity[kind.index()] as u128 * (end.saturating_sub(start)) as u128;
        if avail == 0 {
            return 0.0;
        }
        self.useful_work_in(kind, None, start, end) as f64 / avail as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::SEC;

    fn attempt(launch: Time, end: Time, outcome: AttemptOutcome) -> Attempt {
        Attempt { launch, work_start: launch, end, outcome }
    }

    #[test]
    fn attempt_accounting() {
        let ok = attempt(10, 30, AttemptOutcome::Completed);
        assert_eq!(ok.occupancy(), 20);
        assert_eq!(ok.useful_work(), 20);
        let killed = attempt(10, 30, AttemptOutcome::Preempted);
        assert_eq!(killed.useful_work(), 0);
        let idle_reduce =
            Attempt { launch: 10, work_start: 25, end: 30, outcome: AttemptOutcome::Completed };
        assert_eq!(idle_reduce.useful_work(), 5);
        assert_eq!(idle_reduce.occupancy(), 20);
    }

    #[test]
    fn task_record_accessors() {
        let t = TaskRecord {
            job: 1,
            tenant: 0,
            kind: TaskKind::Map,
            runnable_at: 5,
            duration: 15,
            attempts: vec![
                attempt(10, 20, AttemptOutcome::Preempted),
                attempt(22, 37, AttemptOutcome::Completed),
            ],
        };
        assert_eq!(t.wait_time(), Some(5));
        assert_eq!(t.finish(), Some(37));
        assert!(t.was_preempted());
        assert_eq!(t.preemption_count(), 1);
        assert_eq!(t.wasted_time(), 10);
    }

    #[test]
    fn deadline_slack_semantics() {
        let j = JobRecord {
            id: 1,
            tenant: 0,
            submit: 0,
            finish: Some(110 * SEC),
            deadline: Some(100 * SEC),
            map_count: 1,
            reduce_count: 0,
        };
        // No slack: 110 > 100 → missed.
        assert_eq!(j.missed_deadline(0.0), Some(true));
        // 25% slack of the 110s duration = 27.5s → 110 ≤ 127.5 → ok.
        assert_eq!(j.missed_deadline(0.25), Some(false));
        let unfinished = JobRecord { finish: None, ..j };
        assert_eq!(unfinished.missed_deadline(0.0), None);
        let no_deadline = JobRecord { deadline: None, ..j };
        assert_eq!(no_deadline.missed_deadline(0.0), None);
    }

    #[test]
    fn window_filtering() {
        let sched = Schedule {
            horizon: 100,
            capacity: [10, 10],
            jobs: vec![
                JobRecord {
                    id: 1,
                    tenant: 0,
                    submit: 10,
                    finish: Some(50),
                    deadline: None,
                    map_count: 1,
                    reduce_count: 0,
                },
                JobRecord {
                    id: 2,
                    tenant: 0,
                    submit: 20,
                    finish: None,
                    deadline: None,
                    map_count: 1,
                    reduce_count: 0,
                },
                JobRecord {
                    id: 3,
                    tenant: 1,
                    submit: 10,
                    finish: Some(40),
                    deadline: None,
                    map_count: 1,
                    reduce_count: 0,
                },
                JobRecord {
                    id: 4,
                    tenant: 0,
                    submit: 90,
                    finish: Some(99),
                    deadline: None,
                    map_count: 1,
                    reduce_count: 0,
                },
            ],
            tasks: vec![],
        };
        let in_window = sched.completed_jobs_in(0, 0, 60);
        assert_eq!(in_window.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(sched.completed_jobs_in(0, 0, 100).len(), 2);
    }

    #[test]
    fn utilization_math() {
        let sched = Schedule {
            horizon: 100,
            capacity: [2, 1],
            jobs: vec![],
            tasks: vec![
                TaskRecord {
                    job: 1,
                    tenant: 0,
                    kind: TaskKind::Map,
                    runnable_at: 0,
                    duration: 50,
                    attempts: vec![attempt(0, 50, AttemptOutcome::Completed)],
                },
                TaskRecord {
                    job: 1,
                    tenant: 1,
                    kind: TaskKind::Map,
                    runnable_at: 0,
                    duration: 50,
                    attempts: vec![
                        attempt(0, 25, AttemptOutcome::Preempted),
                        attempt(25, 75, AttemptOutcome::Completed),
                    ],
                },
            ],
        };
        // Occupancy over [0,100): 50 + 25 + 50 = 125 of 200 available.
        assert!((sched.utilization(TaskKind::Map, 0, 100) - 0.625).abs() < 1e-9);
        // Useful: 50 + 50 = 100 → 0.5 — the preempted attempt is region I.
        assert!((sched.effective_utilization(TaskKind::Map, 0, 100) - 0.5).abs() < 1e-9);
        // Clipping: window [0,30) sees 30 + 25 + 5 = 60 of 60 → 1.0.
        assert!((sched.utilization(TaskKind::Map, 0, 30) - 1.0).abs() < 1e-9);
        // Per-tenant occupancy.
        assert_eq!(sched.occupancy_in(TaskKind::Map, Some(1), 0, 100), 75);
        // Preemption fraction: one of two map tasks.
        assert!((sched.preemption_fraction(TaskKind::Map, None) - 0.5).abs() < 1e-9);
        assert_eq!(sched.preemption_fraction(TaskKind::Reduce, None), 0.0);
    }
}
