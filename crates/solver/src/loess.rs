//! LOESS — locally weighted linear regression for gradient estimation.
//!
//! §6.3.1: "PALD uses the stochastic gradient descent for solving the proxy
//! problem, and the gradients are estimated using the well-known LOESS
//! [Cleveland & Devlin 1988]". Each QS metric is an expensive, noisy
//! function of the RM configuration (every evaluation is a task-schedule
//! simulation), so PALD keeps a history of `(x, f(x))` evaluations and fits
//! a local linear model around the current configuration; the fitted slope
//! is the gradient estimate.

use crate::linalg::{norm, sub, weighted_least_squares, Matrix};

/// The classic tricube kernel `(1 − u³)³` on `[0, 1)`.
#[inline]
pub fn tricube(u: f64) -> f64 {
    if !(0.0..1.0).contains(&u) {
        0.0
    } else {
        let t = 1.0 - u * u * u;
        t * t * t
    }
}

/// A single evaluation record: configuration vector and the observed value
/// of one objective there.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub x: Vec<f64>,
    pub y: f64,
}

/// Local linear fit around `x0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalFit {
    /// Estimated value at `x0` (the local intercept).
    pub value: f64,
    /// Estimated gradient at `x0`.
    pub gradient: Vec<f64>,
    /// Number of samples with non-zero weight.
    pub support: usize,
}

/// Fits a local linear model `y ≈ value + gradientᵀ(x − x0)` from samples
/// within `bandwidth` of `x0` (tricube-weighted by normalized distance).
///
/// Returns `None` when fewer than `dim + 1` samples carry weight — the
/// minimum for the normal equations to be determined (the ridge fallback
/// still guards against collinear designs above that threshold).
pub fn loess_fit(samples: &[Sample], x0: &[f64], bandwidth: f64) -> Option<LocalFit> {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    let dim = x0.len();
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    let mut ws = Vec::new();
    for s in samples {
        assert_eq!(s.x.len(), dim, "sample dimension mismatch");
        let d = norm(&sub(&s.x, x0));
        let w = tricube(d / bandwidth);
        if w <= 0.0 {
            continue;
        }
        // Design row: [1, (x − x0)].
        let mut row = Vec::with_capacity(dim + 1);
        row.push(1.0);
        row.extend(sub(&s.x, x0));
        rows.push(row);
        ys.push(s.y);
        ws.push(w);
    }
    let support = rows.len();
    if support < dim + 1 {
        return None;
    }
    let beta = weighted_least_squares(&Matrix::from_rows(&rows), &ys, &ws)?;
    Some(LocalFit { value: beta[0], gradient: beta[1..].to_vec(), support })
}

/// Jacobian estimation for `k` objectives sharing the same sample locations:
/// `values[i][j]` is objective `j` observed at `xs[i]`. Returns the k×d
/// Jacobian (rows are per-objective gradients) and the fitted values at
/// `x0`, or `None` if any objective lacks support.
pub fn loess_jacobian(
    xs: &[Vec<f64>],
    values: &[Vec<f64>],
    x0: &[f64],
    bandwidth: f64,
) -> Option<(Matrix, Vec<f64>)> {
    assert_eq!(xs.len(), values.len(), "xs/values length mismatch");
    let k = values.first().map_or(0, Vec::len);
    if k == 0 {
        return None;
    }
    let mut grads = Vec::with_capacity(k);
    let mut fitted = Vec::with_capacity(k);
    for j in 0..k {
        let samples: Vec<Sample> = xs
            .iter()
            .zip(values)
            .map(|(x, v)| {
                assert_eq!(v.len(), k, "ragged objective values");
                Sample { x: x.clone(), y: v[j] }
            })
            .collect();
        let fit = loess_fit(&samples, x0, bandwidth)?;
        grads.push(fit.gradient);
        fitted.push(fit.value);
    }
    Some((Matrix::from_rows(&grads), fitted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tricube_shape() {
        assert_eq!(tricube(0.0), 1.0);
        assert_eq!(tricube(1.0), 0.0);
        assert_eq!(tricube(2.0), 0.0);
        assert_eq!(tricube(-0.1), 0.0);
        assert!(tricube(0.3) > tricube(0.7));
    }

    fn grid_samples(f: impl Fn(&[f64]) -> f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for i in -3i32..=3 {
            for j in -3i32..=3 {
                let x = vec![0.5 + i as f64 * 0.05, 0.5 + j as f64 * 0.05];
                let y = f(&x);
                out.push(Sample { x, y });
            }
        }
        out
    }

    #[test]
    fn exact_linear_recovery() {
        let samples = grid_samples(|x| 1.0 + 2.0 * x[0] - 3.0 * x[1]);
        let fit = loess_fit(&samples, &[0.5, 0.5], 0.5).unwrap();
        assert!((fit.value - (1.0 + 1.0 - 1.5)).abs() < 1e-9);
        assert!((fit.gradient[0] - 2.0).abs() < 1e-9);
        assert!((fit.gradient[1] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_gradient_at_center() {
        // f = (x−0.5)² + (y−0.5)²: gradient at the center is ~0 even though
        // the function is curved.
        let samples = grid_samples(|x| (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2));
        let fit = loess_fit(&samples, &[0.5, 0.5], 0.5).unwrap();
        assert!(fit.gradient[0].abs() < 1e-6);
        assert!(fit.gradient[1].abs() < 1e-6);
    }

    #[test]
    fn noisy_gradient_estimation() {
        // The whole point of LOESS in PALD: tolerable gradient estimates from
        // noisy evaluations.
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples = grid_samples(|x| 4.0 * x[0] - 2.0 * x[1]);
        for s in &mut samples {
            s.y += rng.gen_range(-0.05..0.05);
        }
        let fit = loess_fit(&samples, &[0.5, 0.5], 0.5).unwrap();
        assert!((fit.gradient[0] - 4.0).abs() < 0.5, "g0 {}", fit.gradient[0]);
        assert!((fit.gradient[1] + 2.0).abs() < 0.5, "g1 {}", fit.gradient[1]);
    }

    #[test]
    fn locality_ignores_far_samples() {
        // A far-away outlier must not influence the local fit.
        let mut samples = grid_samples(|x| x[0]);
        samples.push(Sample { x: vec![5.0, 5.0], y: -1000.0 });
        let fit = loess_fit(&samples, &[0.5, 0.5], 0.5).unwrap();
        assert!((fit.gradient[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_support_returns_none() {
        let samples =
            vec![Sample { x: vec![0.5, 0.5], y: 1.0 }, Sample { x: vec![0.51, 0.5], y: 1.1 }];
        assert!(loess_fit(&samples, &[0.5, 0.5], 0.3).is_none());
        // Samples outside the bandwidth do not count as support.
        let far = vec![
            Sample { x: vec![9.0, 9.0], y: 0.0 },
            Sample { x: vec![9.1, 9.0], y: 0.0 },
            Sample { x: vec![9.0, 9.1], y: 0.0 },
            Sample { x: vec![9.1, 9.1], y: 0.0 },
        ];
        assert!(loess_fit(&far, &[0.0, 0.0], 0.5).is_none());
    }

    #[test]
    fn jacobian_stacks_gradients() {
        let xs: Vec<Vec<f64>> = grid_samples(|_| 0.0).into_iter().map(|s| s.x).collect();
        let values: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0], -x[1] + 3.0]).collect();
        let (jac, fitted) = loess_jacobian(&xs, &values, &[0.5, 0.5], 0.5).unwrap();
        assert_eq!(jac.rows(), 2);
        assert!((jac[(0, 0)] - 2.0).abs() < 1e-9);
        assert!(jac[(0, 1)].abs() < 1e-9);
        assert!((jac[(1, 1)] + 1.0).abs() < 1e-9);
        assert!((fitted[0] - 1.0).abs() < 1e-9);
        assert!((fitted[1] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn jacobian_none_on_empty() {
        assert!(loess_jacobian(&[], &[], &[0.5], 0.5).is_none());
    }
}
