//! Feasible-region projections for PALD's projected SGD step.
//!
//! The RM configuration vector lives in the unit box (normalized encoding),
//! and §4 additionally restricts each proposal to "a given maximum distance
//! to the currently used RM configuration" under the normalized l2 norm —
//! the DBA's risk-tolerance trust region. Both projections are exact.

use crate::linalg::{norm, sub};

/// Projects `x` onto the box `[lo, hi]^d` in place.
pub fn project_box(x: &mut [f64], lo: f64, hi: f64) {
    assert!(lo <= hi, "empty box");
    for v in x {
        *v = v.clamp(lo, hi);
    }
}

/// Projects `x` onto the l2 ball of `radius` around `center`, in place.
pub fn project_ball(x: &mut [f64], center: &[f64], radius: f64) {
    assert_eq!(x.len(), center.len(), "dimension mismatch");
    assert!(radius >= 0.0, "negative radius");
    let d = norm(&sub(x, center));
    if d <= radius || d == 0.0 {
        return;
    }
    let scale = radius / d;
    for (xi, ci) in x.iter_mut().zip(center) {
        *xi = ci + (*xi - ci) * scale;
    }
}

/// Projects onto `box ∩ ball` by alternating projections (Dykstra-lite).
///
/// Both sets are convex with non-empty intersection whenever `center` lies
/// in the box, so a few alternations converge; 16 rounds is far beyond what
/// the unit box needs at PALD's tolerances.
pub fn project_box_ball(x: &mut [f64], lo: f64, hi: f64, center: &[f64], radius: f64) {
    for _ in 0..16 {
        project_box(x, lo, hi);
        let inside_ball = norm(&sub(x, center)) <= radius + 1e-12;
        if inside_ball {
            return;
        }
        project_ball(x, center, radius);
        let inside_box = x.iter().all(|&v| (lo - 1e-12..=hi + 1e-12).contains(&v));
        if inside_box {
            project_box(x, lo, hi); // snap the 1e-12 tolerance
            return;
        }
    }
    // Fall back to something feasible-ish: clamp into the box.
    project_box(x, lo, hi);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::norm;

    #[test]
    fn box_projection_clamps() {
        let mut x = vec![-0.5, 0.5, 1.5];
        project_box(&mut x, 0.0, 1.0);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn ball_projection_scales_to_surface() {
        let mut x = vec![3.0, 4.0];
        project_ball(&mut x, &[0.0, 0.0], 1.0);
        assert!((norm(&x) - 1.0).abs() < 1e-12);
        assert!((x[0] - 0.6).abs() < 1e-12 && (x[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ball_projection_keeps_interior_points() {
        let mut x = vec![0.1, 0.1];
        let before = x.clone();
        project_ball(&mut x, &[0.0, 0.0], 1.0);
        assert_eq!(x, before);
    }

    #[test]
    fn box_ball_intersection() {
        // Center in a corner: the feasible set is the quarter-ball.
        let center = vec![0.0, 0.0];
        let mut x = vec![2.0, 2.0];
        project_box_ball(&mut x, 0.0, 1.0, &center, 0.5);
        assert!(norm(&x) <= 0.5 + 1e-9);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Direction preserved (diagonal).
        assert!((x[0] - x[1]).abs() < 1e-9);
    }

    #[test]
    fn box_ball_degenerate_radius() {
        let center = vec![0.5, 0.5];
        let mut x = vec![0.9, 0.1];
        project_box_ball(&mut x, 0.0, 1.0, &center, 0.0);
        assert!((x[0] - 0.5).abs() < 1e-9 && (x[1] - 0.5).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use crate::linalg::sub;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn box_ball_result_is_feasible(
                x in prop::collection::vec(-3.0f64..3.0, 1..6),
                c_raw in prop::collection::vec(0.0f64..1.0, 6),
                radius in 0.01f64..2.0,
            ) {
                let d = x.len();
                let center: Vec<f64> = c_raw[..d].to_vec();
                let mut p = x.clone();
                project_box_ball(&mut p, 0.0, 1.0, &center, radius);
                prop_assert!(p.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
                prop_assert!(norm(&sub(&p, &center)) <= radius + 1e-6);
            }

            #[test]
            fn projection_is_idempotent(
                x in prop::collection::vec(-3.0f64..3.0, 1..6),
                c_raw in prop::collection::vec(0.0f64..1.0, 6),
                radius in 0.01f64..2.0,
            ) {
                let d = x.len();
                let center: Vec<f64> = c_raw[..d].to_vec();
                let mut once = x.clone();
                project_box_ball(&mut once, 0.0, 1.0, &center, radius);
                let mut twice = once.clone();
                project_box_ball(&mut twice, 0.0, 1.0, &center, radius);
                for (a, b) in once.iter().zip(&twice) {
                    prop_assert!((a - b).abs() < 1e-7);
                }
            }
        }
    }
}
