//! MGDA-style min-norm weighting (Désidéri 2012).
//!
//! When no SLO constraint is violated, PALD still descends *all* QS metrics
//! simultaneously. The multiple-gradient descent algorithm picks the
//! minimum-norm element of the convex hull of the objective gradients; the
//! negated min-norm point is a common descent direction (it has non-negative
//! inner product with every gradient), and its convex weights are the `c`
//! vector satisfying condition (9) of the paper for convex QS functions.
//!
//! The min-norm problem `min ‖Jᵀλ‖² s.t. λ ∈ simplex` is solved with
//! Frank–Wolfe iterations using the exact two-point line search — the
//! standard approach for MGDA-style problems, and plenty accurate at k ≤ 8.

use crate::linalg::Matrix;

/// Result of the min-norm computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinNorm {
    /// Convex-combination weights over the gradients (simplex point).
    pub weights: Vec<f64>,
    /// `‖Jᵀλ‖²` at the optimum; ~0 means the gradients' hull contains the
    /// origin (a Pareto-stationary point — no common descent direction).
    pub norm_sq: f64,
}

/// Computes the min-norm point of the convex hull of the rows of `jac`.
///
/// For `k ≤ 12` objectives the simplex-constrained QP is solved *exactly* by
/// enumerating active sets (2^k − 1 supports; trivial at PALD's scale, and
/// immune to Frank–Wolfe's zig-zag stalling on faces). Larger problems fall
/// back to `max_iter` Frank–Wolfe steps. Panics on an empty Jacobian.
pub fn min_norm_weights(jac: &Matrix, max_iter: usize) -> MinNorm {
    let k = jac.rows();
    assert!(k > 0, "min_norm_weights on empty Jacobian");
    let g = jac.gram();
    if k <= 12 {
        if let Some(exact) = min_norm_exact(&g) {
            return exact;
        }
    }
    frank_wolfe(&g, max_iter)
}

/// Exact active-set enumeration: the optimum with support `S` satisfies
/// `G_SS λ_S = μ·1`, `Σλ_S = 1`, `λ_S ≥ 0`, and `(Gλ)_i ≥ μ` off-support.
fn min_norm_exact(g: &Matrix) -> Option<MinNorm> {
    let k = g.rows();
    let mut best: Option<MinNorm> = None;
    for mask in 1u32..(1 << k) {
        let support: Vec<usize> = (0..k).filter(|i| mask & (1 << i) != 0).collect();
        let s = support.len();
        // Solve G_SS y = 1, then λ_S = y / Σy (scales to the simplex).
        let mut gss = Matrix::zeros(s, s);
        for (a, &i) in support.iter().enumerate() {
            for (b, &j) in support.iter().enumerate() {
                gss[(a, b)] = g[(i, j)];
            }
        }
        let Some(y) = gss.solve_spd(&vec![1.0; s]) else { continue };
        let ysum: f64 = y.iter().sum();
        if ysum.abs() < 1e-12 {
            continue;
        }
        let mut lambda = vec![0.0; k];
        let mut ok = true;
        for (a, &i) in support.iter().enumerate() {
            let li = y[a] / ysum;
            if li < -1e-9 {
                ok = false;
                break;
            }
            lambda[i] = li.max(0.0);
        }
        if !ok {
            continue;
        }
        let v = g.matvec(&lambda);
        let mu: f64 = lambda.iter().zip(&v).map(|(l, vi)| l * vi).sum();
        // Off-support optimality (KKT): every excluded gradient's inner
        // product with the candidate point must be ≥ μ.
        let optimal = (0..k).all(|i| lambda[i] > 0.0 || v[i] >= mu - 1e-9);
        if !optimal {
            continue;
        }
        let candidate = MinNorm { weights: lambda, norm_sq: mu.max(0.0) };
        if best.as_ref().is_none_or(|b| candidate.norm_sq < b.norm_sq) {
            best = Some(candidate);
        }
    }
    best
}

fn frank_wolfe(g: &Matrix, max_iter: usize) -> MinNorm {
    let k = g.rows();
    // Start from the single best row (smallest self-norm).
    let mut best0 = 0;
    for i in 1..k {
        if g[(i, i)] < g[(best0, best0)] {
            best0 = i;
        }
    }
    let mut lambda = vec![0.0; k];
    lambda[best0] = 1.0;

    // Frank–Wolfe: v = G λ; pick the coordinate with the smallest vᵢ (linear
    // minimization over the simplex); exact step toward that vertex.
    for _ in 0..max_iter {
        let v = g.matvec(&lambda);
        let mut t = 0;
        for i in 1..k {
            if v[i] < v[t] {
                t = i;
            }
        }
        // Current value λᵀGλ and the gap.
        let lgl: f64 = lambda.iter().zip(&v).map(|(l, vi)| l * vi).sum();
        let gap = lgl - v[t];
        if gap <= 1e-12 {
            break;
        }
        // Exact line search for min over γ of ‖(1−γ)a + γ b‖² where a = Jᵀλ,
        // b = Jᵀe_t: γ* = (aᵀa − aᵀb) / (aᵀa − 2aᵀb + bᵀb).
        let aa = lgl;
        let ab = v[t];
        let bb = g[(t, t)];
        let denom = aa - 2.0 * ab + bb;
        let gamma = if denom <= 1e-15 { 1.0 } else { ((aa - ab) / denom).clamp(0.0, 1.0) };
        for (i, l) in lambda.iter_mut().enumerate() {
            *l *= 1.0 - gamma;
            if i == t {
                *l += gamma;
            }
        }
    }
    let v = g.matvec(&lambda);
    let norm_sq = lambda.iter().zip(&v).map(|(l, vi)| l * vi).sum::<f64>().max(0.0);
    MinNorm { weights: lambda, norm_sq }
}

/// The common descent direction `−Jᵀλ` for the min-norm weights (zero vector
/// at Pareto-stationarity).
pub fn common_descent_direction(jac: &Matrix, mn: &MinNorm) -> Vec<f64> {
    let mut d = jac.matvec_t(&mn.weights);
    for x in &mut d {
        *x = -*x;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dot;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn single_gradient_gets_weight_one() {
        let j = mat(&[&[3.0, 4.0]]);
        let mn = min_norm_weights(&j, 100);
        assert_eq!(mn.weights, vec![1.0]);
        assert!((mn.norm_sq - 25.0).abs() < 1e-9);
    }

    #[test]
    fn orthogonal_gradients_balance_by_inverse_norms() {
        // g1=(1,0), g2=(0,2): min-norm point of segment is closer to g1;
        // analytic λ = (4/5, 1/5).
        let j = mat(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let mn = min_norm_weights(&j, 500);
        assert!((mn.weights[0] - 0.8).abs() < 1e-3, "{:?}", mn.weights);
        assert!((mn.weights[1] - 0.2).abs() < 1e-3);
        // ‖(0.8, 0.4)‖² = 0.8.
        assert!((mn.norm_sq - 0.8).abs() < 1e-3);
    }

    #[test]
    fn opposing_gradients_reach_zero() {
        // Hull of (1,0) and (−1,0) contains the origin: Pareto-stationary.
        let j = mat(&[&[1.0, 0.0], &[-1.0, 0.0]]);
        let mn = min_norm_weights(&j, 500);
        assert!(mn.norm_sq < 1e-9, "norm_sq {}", mn.norm_sq);
        assert!((mn.weights[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn descent_direction_descends_every_objective() {
        let j = mat(&[&[1.0, 0.2, -0.3], &[0.1, 1.0, 0.4], &[-0.2, 0.3, 1.0]]);
        let mn = min_norm_weights(&j, 500);
        let d = common_descent_direction(&j, &mn);
        if mn.norm_sq > 1e-9 {
            for i in 0..3 {
                let slope = dot(j.row(i), &d);
                assert!(slope <= 1e-7, "objective {i} would increase: slope {slope}");
            }
        }
    }

    #[test]
    fn weights_stay_on_simplex() {
        let j = mat(&[&[2.0, -1.0], &[-0.5, 1.5], &[1.0, 1.0]]);
        let mn = min_norm_weights(&j, 500);
        let sum: f64 = mn.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(mn.weights.iter().all(|&w| w >= -1e-12));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn min_norm_never_exceeds_any_vertex(
                k in 1usize..5,
                d in 1usize..4,
                vals in prop::collection::vec(-3.0f64..3.0, 32),
            ) {
                let rows: Vec<Vec<f64>> = (0..k)
                    .map(|i| (0..d).map(|j| vals[(i * d + j) % vals.len()]).collect())
                    .collect();
                let j = Matrix::from_rows(&rows);
                let mn = min_norm_weights(&j, 300);
                // The min-norm point is no longer than any single gradient.
                for i in 0..k {
                    let gi_sq = dot(j.row(i), j.row(i));
                    prop_assert!(mn.norm_sq <= gi_sq + 1e-7);
                }
                let sum: f64 = mn.weights.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6);
            }

            #[test]
            fn descent_direction_has_nonpositive_slopes(
                k in 2usize..5,
                vals in prop::collection::vec(-2.0f64..2.0, 24),
            ) {
                let rows: Vec<Vec<f64>> = (0..k)
                    .map(|i| (0..3).map(|j| vals[(i * 3 + j) % vals.len()]).collect())
                    .collect();
                let j = Matrix::from_rows(&rows);
                let mn = min_norm_weights(&j, 500);
                if mn.norm_sq > 1e-6 {
                    let dir = common_descent_direction(&j, &mn);
                    for i in 0..k {
                        // FW tolerance: allow a sliver of positivity.
                        prop_assert!(dot(j.row(i), &dir) <= 1e-4);
                    }
                }
            }
        }
    }
}
