//! Small dense linear algebra.
//!
//! PALD's subproblems are tiny (a handful of SLOs × a few dozen RM
//! parameters), so a simple row-major dense matrix with Cholesky-based
//! solves is the right tool — no external linear-algebra crate needed.

use std::fmt;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `A x` for a length-`cols` vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), x)).collect()
    }

    /// `Aᵀ x` for a length-`rows` vector.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        out
    }

    /// Gram matrix `A Aᵀ` (rows × rows) — the pairwise gradient inner
    /// products PALD's ρ* formula is built from.
    pub fn gram(&self) -> Matrix {
        let n = self.rows;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = dot(self.row(i), self.row(j));
                g[(i, j)] = v;
                g[(j, i)] = v;
            }
        }
        g
    }

    /// Solves `A x = b` for symmetric positive-definite `A` by Cholesky,
    /// adding a ridge `λI` escalation if the factorization fails (noisy
    /// normal equations are routinely near-singular).
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_spd needs a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let mut ridge = 0.0;
        for _ in 0..8 {
            if let Some(chol) = self.cholesky(ridge) {
                return Some(chol.solve(b));
            }
            ridge = if ridge == 0.0 { 1e-10 } else { ridge * 100.0 };
        }
        None
    }

    /// Cholesky factor of `A + ridge·I`, if (numerically) positive definite.
    fn cholesky(&self, ridge: f64) -> Option<Cholesky> {
        let n = self.rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)] + if i == j { ridge } else { 0.0 };
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(Cholesky { n, l })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[i * n + k] * yk;
            }
            y[i] = sum / self.l[i * n + i];
        }
        // Back substitution Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[k * n + i] * xk;
            }
            x[i] = sum / self.l[i * n + i];
        }
        x
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a − b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + s·b` (axpy).
pub fn add_scaled(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// In-place scale.
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Normalizes to unit l2 norm; returns false (leaving `a` untouched) for a
/// zero/non-finite vector.
pub fn normalize(a: &mut [f64]) -> bool {
    let n = norm(a);
    if n > 0.0 && n.is_finite() {
        scale(a, 1.0 / n);
        true
    } else {
        false
    }
}

/// Solves the weighted least-squares problem `min Σ w_i (y_i − xᵢᵀβ)²` via
/// normal equations `(XᵀWX) β = XᵀWy` with Cholesky + ridge escalation.
/// Rows of `x` are observations. Returns `None` if the system is too
/// degenerate even with ridge.
pub fn weighted_least_squares(x: &Matrix, y: &[f64], w: &[f64]) -> Option<Vec<f64>> {
    let n = x.rows();
    let d = x.cols();
    assert_eq!(y.len(), n, "y dimension mismatch");
    assert_eq!(w.len(), n, "w dimension mismatch");
    let mut xtwx = Matrix::zeros(d, d);
    let mut xtwy = vec![0.0; d];
    for i in 0..n {
        let wi = w[i];
        if wi <= 0.0 {
            continue;
        }
        let row = x.row(i);
        for a in 0..d {
            xtwy[a] += wi * row[a] * y[i];
            for b in a..d {
                xtwx[(a, b)] += wi * row[a] * row[b];
            }
        }
    }
    // Mirror the upper triangle.
    for a in 0..d {
        for b in 0..a {
            xtwx[(a, b)] = xtwx[(b, a)];
        }
    }
    xtwx.solve_spd(&xtwy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(add_scaled(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
    }

    #[test]
    fn gram_is_pairwise_dots() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]);
        let g = a.gram();
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 1)], 2.0);
        assert_eq!(g[(1, 0)], g[(0, 1)]);
    }

    #[test]
    fn spd_solve_recovers_solution() {
        // A = MᵀM + I is SPD.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let mut a = m.gram();
        a[(0, 0)] += 1.0;
        a[(1, 1)] += 1.0;
        let x_true = vec![0.5, -1.5];
        let b = a.matvec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-9);
        assert!((x[1] - x_true[1]).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_solves_with_ridge() {
        // Rank-1 matrix: plain Cholesky fails, ridge fallback succeeds.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let x = a.solve_spd(&[2.0, 2.0]);
        assert!(x.is_some());
        let x = x.unwrap();
        // Ridge solution approximates the min-norm solution [1, 1].
        assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3, "{x:?}");
    }

    #[test]
    fn normalize_handles_zero() {
        let mut v = vec![0.0, 0.0];
        assert!(!normalize(&mut v));
        let mut v = vec![3.0, 4.0];
        assert!(normalize(&mut v));
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wls_recovers_linear_model() {
        // y = 2 + 3x with exact data; design matrix has intercept column.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 5.0).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let w = vec![1.0; xs.len()];
        let beta = weighted_least_squares(&Matrix::from_rows(&rows), &y, &w).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wls_respects_weights() {
        // Two inconsistent points; the heavier one dominates.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let beta = weighted_least_squares(&x, &[0.0, 10.0], &[1.0, 99.0]).unwrap();
        assert!((beta[0] - 9.9).abs() < 1e-9, "{beta:?}");
    }
}
