//! # tempo-solver
//!
//! Dense numerical kernels for Tempo's PALD optimizer, built from scratch
//! because the Rust optimization/control ecosystem is thin (the reproduction
//! calibration calls this out explicitly):
//!
//! * [`linalg`] — small dense matrices, Cholesky/ridge solves, weighted
//!   least squares;
//! * [`simplex`] — two-phase simplex LP, including PALD's max-min fairness
//!   program for the weight vector `c` (§6.3.1);
//! * [`loess`] — locally weighted linear regression for gradient estimation
//!   from noisy QS evaluations (Cleveland & Devlin 1988, cited in §6.3.1);
//! * [`mgda`] — Désidéri's multiple-gradient-descent min-norm point, used
//!   when no SLO constraint is violated;
//! * [`project`] — box / trust-region projections for the projected SGD
//!   update (§4's risk-bounded proposals).

pub mod linalg;
pub mod loess;
pub mod mgda;
pub mod project;
pub mod simplex;

pub use linalg::{dot, norm, normalize, weighted_least_squares, Matrix};
pub use loess::{loess_fit, loess_jacobian, LocalFit, Sample};
pub use mgda::{common_descent_direction, min_norm_weights, MinNorm};
pub use project::{project_ball, project_box, project_box_ball};
pub use simplex::{max_min_weights, solve_lp, LpResult};
