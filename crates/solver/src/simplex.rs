//! Two-phase dense simplex solver for small linear programs.
//!
//! PALD's max-min fairness subproblem (§6.3.1) is the LP
//!
//! ```text
//!     maximize  z
//!     subject to (J_V Jᵀ) c ≥ z·1,   c ≥ 0,   z ≤ ε
//! ```
//!
//! whose dimensions are tiny (k SLOs), so a textbook dense tableau simplex
//! with Bland's anti-cycling rule is entirely adequate. The general entry
//! point solves `max cᵀx s.t. Ax ≤ b, x ≥ 0` with arbitrary-sign `b`
//! (phase 1 drives artificial variables out when `b` has negative entries).

use crate::linalg::Matrix;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution and objective value.
    Optimal {
        x: Vec<f64>,
        objective: f64,
    },
    Infeasible,
    Unbounded,
}

impl LpResult {
    /// The solution vector, if optimal.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpResult::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }
}

const EPS: f64 = 1e-9;

/// Solves `max cᵀx  s.t.  A x ≤ b,  x ≥ 0`.
///
/// `a` is m×n; `b` length m; `c` length n. Handles negative `b` entries via
/// a phase-1 feasibility search with artificial variables.
pub fn solve_lp(a: &Matrix, b: &[f64], c: &[f64]) -> LpResult {
    let m = a.rows();
    let n = a.cols();
    assert_eq!(b.len(), m, "b dimension mismatch");
    assert_eq!(c.len(), n, "c dimension mismatch");

    // Tableau layout: columns [x (n) | slacks (m) | artificials (≤m) | rhs].
    // Rows with negative b are negated so rhs ≥ 0, turning their slack
    // coefficient to −1 and requiring an artificial basis column.
    let mut need_artificial = vec![false; m];
    let mut n_art = 0;
    for i in 0..m {
        if b[i] < 0.0 {
            need_artificial[i] = true;
            n_art += 1;
        }
    }
    let width = n + m + n_art + 1;
    let mut t = vec![vec![0.0; width]; m];
    let mut basis = vec![0usize; m];
    let mut art_col = n + m;
    for i in 0..m {
        let flip = if need_artificial[i] { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = flip * a[(i, j)];
        }
        t[i][n + i] = flip; // slack
        t[i][width - 1] = flip * b[i];
        if need_artificial[i] {
            t[i][art_col] = 1.0;
            basis[i] = art_col;
            art_col += 1;
        } else {
            basis[i] = n + i;
        }
    }

    // Phase 1: minimize the sum of artificials (as max of −Σ artificials).
    if n_art > 0 {
        let mut obj = vec![0.0; width];
        for o in obj.iter_mut().take(n + m + n_art).skip(n + m) {
            *o = -1.0;
        }
        // Express the objective in terms of non-basic variables.
        reduce_objective(&mut obj, &t, &basis);
        if !pivot_loop(&mut t, &mut basis, &mut obj) {
            return LpResult::Unbounded; // cannot happen for phase 1, defensive
        }
        // After reduction, obj[rhs] tracks −(objective value); the phase-1
        // objective is −Σ artificials, so obj[rhs] = Σ artificials.
        let infeas = obj[width - 1];
        if infeas > 1e-7 {
            return LpResult::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate case).
        for i in 0..m {
            if basis[i] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j, &mut obj);
                }
            }
        }
    }

    // Phase 2: the real objective (zeroing artificial columns so they never
    // re-enter).
    let mut obj = vec![0.0; width];
    for (j, &cj) in c.iter().enumerate() {
        obj[j] = cj;
    }
    reduce_objective(&mut obj, &t, &basis);
    // Forbid artificials from re-entering.
    for o in obj.iter_mut().take(n + m + n_art).skip(n + m) {
        *o = f64::NEG_INFINITY;
    }
    if !pivot_loop(&mut t, &mut basis, &mut obj) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][width - 1];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    LpResult::Optimal { x, objective }
}

/// Rewrites the objective row in terms of non-basic variables.
fn reduce_objective(obj: &mut [f64], t: &[Vec<f64>], basis: &[usize]) {
    let width = obj.len();
    for (i, &bi) in basis.iter().enumerate() {
        let coef = obj[bi];
        if coef.abs() > EPS {
            for (o, tv) in obj.iter_mut().zip(&t[i]).take(width) {
                *o -= coef * tv;
            }
        }
    }
}

/// Runs simplex pivots to optimality. Returns false on unboundedness.
fn pivot_loop(t: &mut [Vec<f64>], basis: &mut [usize], obj: &mut [f64]) -> bool {
    let width = obj.len();
    let ncols = width - 1;
    for _ in 0..10_000 {
        // Entering column: most positive reduced cost; Bland's rule kicks in
        // near degeneracy (smallest index among positives) to prevent cycles.
        let mut enter = None;
        let mut best = EPS;
        for (j, &oj) in obj.iter().enumerate().take(ncols) {
            if oj.is_finite() && oj > best {
                best = oj;
                enter = Some(j);
            }
        }
        let Some(enter) = enter else { return true };
        // Leaving row: minimum ratio test.
        let mut leave = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[width - 1] / row[enter];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leave.is_some_and(|l: usize| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else { return false };
        pivot(t, basis, leave, enter, obj);
    }
    // Iteration cap exceeded: treat as numerically stuck but optimal-ish.
    true
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, obj: &mut [f64]) {
    let width = obj.len();
    let p = t[row][col];
    for v in t[row].iter_mut().take(width) {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, ti) in t.iter_mut().enumerate() {
        if i != row && ti[col].abs() > EPS {
            let f = ti[col];
            for (v, pv) in ti.iter_mut().zip(&pivot_row).take(width) {
                *v -= f * pv;
            }
        }
    }
    if obj[col].is_finite() && obj[col].abs() > EPS {
        let f = obj[col];
        for j in 0..width {
            if obj[j].is_finite() {
                obj[j] -= f * t[row][j];
            }
        }
    }
    basis[row] = col;
}

/// Solves PALD's max-min direction program (§6.3.1):
///
/// ```text
///     maximize  z    s.t.   G c ≥ z·1,   c ≥ 0,   z ≤ ε
/// ```
///
/// where `G = J_V Jᵀ` has one row per *violated* constraint and one column
/// per objective (an m×k matrix; square when everything is violated).
/// Returned `c` (length = `g.cols()`) is normalized to unit l2 norm. `None`
/// if the LP is infeasible or the optimal `c` is zero (no useful common
/// descent weighting exists).
pub fn max_min_weights(g: &Matrix, epsilon: f64) -> Option<Vec<f64>> {
    let m = g.rows();
    let k = g.cols();
    if k == 0 || m == 0 {
        return None;
    }
    // Variables: [c_1..c_k, z⁺, z⁻] with z = z⁺ − z⁻ (z may be negative when
    // the constraints conflict — that is exactly the max-min compromise).
    // Constraints: −G c + z⁺ − z⁻ ≤ 0 (row-wise), z⁺ − z⁻ ≤ ε,
    // and Σc ≤ 1 to bound the scale (c is normalized afterwards).
    let n = k + 2;
    let mut rows = Vec::with_capacity(m + 2);
    for i in 0..m {
        let mut row = vec![0.0; n];
        for j in 0..k {
            row[j] = -g[(i, j)];
        }
        row[k] = 1.0;
        row[k + 1] = -1.0;
        rows.push(row);
    }
    let mut b = vec![0.0; m];
    // The paper's `z ≤ ε` cap keeps the LP bounded; with the Σc ≤ 1 scale
    // bound below it is already bounded, so an infinite ε simply omits the
    // row. A *binding* finite cap would make every feasible c tie at z = ε
    // and let the solver return degenerate weights — callers that want the
    // genuine max-min weighting should pass ε = ∞.
    if epsilon.is_finite() {
        let mut zcap = vec![0.0; n];
        zcap[k] = 1.0;
        zcap[k + 1] = -1.0;
        rows.push(zcap);
        b.push(epsilon);
    }
    let mut csum = vec![0.0; n];
    for cj in csum.iter_mut().take(k) {
        *cj = 1.0;
    }
    rows.push(csum);
    let a = Matrix::from_rows(&rows);
    b.push(1.0);
    let mut obj = vec![0.0; n];
    obj[k] = 1.0;
    obj[k + 1] = -1.0;
    // Tiny bonus on Σc breaks degenerate ties (e.g. perfectly conflicting
    // gradients where z* = 0) toward a non-zero, balanced c instead of c = 0.
    for cj in obj.iter_mut().take(k) {
        *cj = 1e-6;
    }
    match solve_lp(&a, &b, &obj) {
        LpResult::Optimal { x, .. } => {
            let mut c: Vec<f64> = x[..k].to_vec();
            if crate::linalg::normalize(&mut c) {
                Some(c)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn textbook_lp() {
        // max 3x + 2y  s.t. x + y ≤ 4, x + 3y ≤ 6 → x=4, y=0, obj=12.
        let a = mat(&[&[1.0, 1.0], &[1.0, 3.0]]);
        let r = solve_lp(&a, &[4.0, 6.0], &[3.0, 2.0]);
        match r {
            LpResult::Optimal { x, objective } => {
                assert!((objective - 12.0).abs() < 1e-7);
                assert!((x[0] - 4.0).abs() < 1e-7);
                assert!(x[1].abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn lp_with_interior_optimum() {
        // max x + y  s.t. x ≤ 2, y ≤ 3 → 5 at (2,3).
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = solve_lp(&a, &[2.0, 3.0], &[1.0, 1.0]);
        match r {
            LpResult::Optimal { x, objective } => {
                assert!((objective - 5.0).abs() < 1e-7);
                assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 3.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        // max x with only y constrained.
        let a = mat(&[&[0.0, 1.0]]);
        assert_eq!(solve_lp(&a, &[1.0], &[1.0, 0.0]), LpResult::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ −1 with x ≥ 0.
        let a = mat(&[&[1.0]]);
        assert_eq!(solve_lp(&a, &[-1.0], &[1.0]), LpResult::Infeasible);
    }

    #[test]
    fn negative_rhs_feasible() {
        // x ≥ 2 (as −x ≤ −2), x ≤ 5, max −x → x=2.
        let a = mat(&[&[-1.0], &[1.0]]);
        let r = solve_lp(&a, &[-2.0, 5.0], &[-1.0]);
        match r {
            LpResult::Optimal { x, objective } => {
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((objective + 2.0).abs() < 1e-7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_via_pair_of_inequalities() {
        // x + y = 3 and max 2x + y → x=3, y=0.
        let a = mat(&[&[1.0, 1.0], &[-1.0, -1.0]]);
        let r = solve_lp(&a, &[3.0, -3.0], &[2.0, 1.0]);
        match r {
            LpResult::Optimal { x, objective } => {
                assert!((objective - 6.0).abs() < 1e-6);
                assert!((x[0] - 3.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn max_min_on_identity_gram_is_uniform() {
        // Orthonormal gradients: the most violated constraint is improved
        // fastest by equal weights.
        let g = Matrix::identity(3);
        let c = max_min_weights(&g, 1.0).unwrap();
        for i in 0..3 {
            assert!((c[i] - 1.0 / (3f64).sqrt()).abs() < 1e-6, "{c:?}");
        }
    }

    #[test]
    fn max_min_handles_conflicting_gradients() {
        // Two anti-parallel gradients: G = [[1,-1],[-1,1]]. No direction
        // improves both; the LP still returns a balanced compromise with
        // z ≤ 0 rather than failing.
        let g = mat(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        let c = max_min_weights(&g, 1.0).unwrap();
        assert!((c[0] - c[1]).abs() < 1e-6, "symmetric weights expected: {c:?}");
    }

    #[test]
    fn max_min_prefers_violated_row_balance() {
        // One "easy" gradient (large norm) and one hard: weights shift toward
        // the hard one so the *min* improvement is maximized.
        let g = mat(&[&[4.0, 0.0], &[0.0, 1.0]]);
        let c = max_min_weights(&g, 10.0).unwrap();
        assert!(c[1] > c[0], "harder constraint gets more weight: {c:?}");
        // Check Gc is (near) equalized.
        let gc0 = 4.0 * c[0];
        let gc1 = 1.0 * c[1];
        assert!((gc0 - gc1).abs() / gc0.max(gc1) < 0.05, "{gc0} vs {gc1}");
    }

    #[test]
    fn empty_gram_yields_none() {
        assert_eq!(max_min_weights(&Matrix::zeros(0, 0), 1.0), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn optimal_solutions_are_feasible(
                m in 1usize..5,
                n in 1usize..5,
                seed_vals in prop::collection::vec(-3.0f64..3.0, 64),
                b_vals in prop::collection::vec(0.1f64..5.0, 8),
                c_vals in prop::collection::vec(-2.0f64..2.0, 8),
            ) {
                let mut rows = Vec::new();
                for i in 0..m {
                    rows.push((0..n).map(|j| seed_vals[(i * n + j) % seed_vals.len()]).collect::<Vec<_>>());
                }
                let a = Matrix::from_rows(&rows);
                let b: Vec<f64> = (0..m).map(|i| b_vals[i % b_vals.len()]).collect();
                let c: Vec<f64> = (0..n).map(|j| c_vals[j % c_vals.len()]).collect();
                if let LpResult::Optimal { x, .. } = solve_lp(&a, &b, &c) {
                    // Feasibility: Ax ≤ b + tol, x ≥ −tol.
                    let ax = a.matvec(&x);
                    for i in 0..m {
                        prop_assert!(ax[i] <= b[i] + 1e-6, "row {i}: {} > {}", ax[i], b[i]);
                    }
                    for xi in &x {
                        prop_assert!(*xi >= -1e-9);
                    }
                }
            }

            #[test]
            fn max_min_weights_are_unit_nonneg(
                k in 1usize..5,
                vals in prop::collection::vec(-2.0f64..2.0, 32),
            ) {
                // Build a PSD Gram matrix from random gradient rows.
                let rows: Vec<Vec<f64>> = (0..k)
                    .map(|i| (0..3).map(|j| vals[(i * 3 + j) % vals.len()]).collect())
                    .collect();
                let j = Matrix::from_rows(&rows);
                let g = j.gram();
                if let Some(c) = max_min_weights(&g, 1.0) {
                    prop_assert!((crate::linalg::norm(&c) - 1.0).abs() < 1e-6);
                    for ci in &c {
                        prop_assert!(*ci >= -1e-9);
                    }
                }
            }
        }
    }
}
