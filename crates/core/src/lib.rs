//! # tempo-core
//!
//! **Tempo**: robust and self-tuning resource management for multi-tenant
//! parallel databases — a faithful Rust reproduction of Tan & Babu
//! (VLDB 2016).
//!
//! Tempo sits on top of an existing Resource Manager (here the `tempo-sim`
//! substrate, whose allocation policy is a pluggable `tempo-sched` backend:
//! fair-share, DRF, capacity, or FIFO) and closes the loop from declarative
//! SLOs to low-level RM configuration:
//!
//! * [`space`] — the normalized RM configuration space the optimizer
//!   searches (§3.2), encoding each scheduler backend's *native* knobs;
//! * [`whatif`] — the What-if Model: Workload Generator + Schedule Predictor
//!   + QS evaluation (§7);
//! * [`pald`] — the PALD multi-objective optimizer: proxy model, max-min
//!   weight LP, ρ*, LOESS gradients, projected SGD (§6);
//! * [`control`] — the eight-step control loop with the revert-on-regression
//!   guard (§4);
//! * [`provision`] — cluster-size what-if estimation (§8.2.4);
//! * [`baselines`] — weighted-sum and random-search optimizers for
//!   ablations;
//! * [`spec`] — the N-tenant [`spec::ScenarioSpec`] pipeline composing
//!   workload archetypes, SLO sets, RM configurations, and a scheduler
//!   backend choice ([`spec::ScenarioSpec::backend`]) into runnable
//!   end-to-end scenarios;
//! * [`scenario`] — preset specs: the paper's §8.2 two-tenant EC2 setup and
//!   the six-tenant Company-ABC mix, shared by the examples, tests, and
//!   figure harnesses — each also buildable under all four scheduler
//!   backends ([`scenario::ec2_backend_specs`],
//!   [`scenario::abc_backend_specs`]).
//!
//! ## Quickstart
//!
//! ```
//! use tempo_core::scenario::Scenario;
//!
//! // A scaled-down §8.2.1 scenario: deadline tenant + best-effort tenant
//! // starting from the expert DBA configuration.
//! let mut scenario = Scenario::mixed(0.08, 0.25, 7);
//! let records = scenario.run(3, 1);
//! assert_eq!(records.len(), 3);
//! // Each record carries the observed QS vector (deadline misses, AJR).
//! assert_eq!(records[0].observed_qs.len(), 2);
//! ```
//!
//! Arbitrary tenant mixes compose through the builder instead of the
//! presets — see [`spec::ScenarioSpec`]:
//!
//! ```
//! use tempo_core::spec::{ScenarioSpec, TenantSpec};
//! use tempo_qs::QsKind;
//! use tempo_sim::ClusterSpec;
//! use tempo_workload::synthetic::facebook_like_tenant;
//! use tempo_workload::time::MIN;
//!
//! let mut scenario = ScenarioSpec::new(ClusterSpec::new(12, 6))
//!     .tenant(TenantSpec::new(facebook_like_tenant("a", 40.0)).with_slo(QsKind::AvgResponseTime))
//!     .tenant(TenantSpec::new(facebook_like_tenant("b", 20.0)).with_slo(QsKind::AvgResponseTime))
//!     .tenant(TenantSpec::new(facebook_like_tenant("c", 10.0)).with_slo(QsKind::AvgResponseTime))
//!     .span(30 * MIN)
//!     .seed(1)
//!     .build()
//!     .expect("three-tenant scenario");
//! assert_eq!(scenario.run(1, 0)[0].observed_qs.len(), 3);
//! ```

pub mod baselines;
pub mod control;
pub mod pald;
pub mod pool;
pub mod provision;
pub mod scenario;
pub mod space;
pub mod spec;
pub mod whatif;

pub use control::{dominates, IterationRecord, LoopConfig, RevertPolicy, Tempo, WhatIfObjective};
pub use pald::{run_pald, Pald, PaldConfig, PaldStep, QsObjective};
pub use pool::WorkerPool;
pub use provision::{estimate_slos, estimation_error_pct, reconstruct_trace};
pub use space::ConfigSpace;
pub use spec::{Scenario, ScenarioSpec, SpecError, TenantSpec, WhatIfSource};
pub use whatif::{WhatIfModel, WorkloadSource};
