//! # tempo-core
//!
//! **Tempo**: robust and self-tuning resource management for multi-tenant
//! parallel databases — a faithful Rust reproduction of Tan & Babu
//! (VLDB 2016).
//!
//! Tempo sits on top of an existing Resource Manager (here the `tempo-sim`
//! fair-scheduler substrate) and closes the loop from declarative SLOs to
//! low-level RM configuration:
//!
//! * [`space`] — the normalized RM configuration space the optimizer
//!   searches (§3.2);
//! * [`whatif`] — the What-if Model: Workload Generator + Schedule Predictor
//!   + QS evaluation (§7);
//! * [`pald`] — the PALD multi-objective optimizer: proxy model, max-min
//!   weight LP, ρ*, LOESS gradients, projected SGD (§6);
//! * [`control`] — the eight-step control loop with the revert-on-regression
//!   guard (§4);
//! * [`provision`] — cluster-size what-if estimation (§8.2.4);
//! * [`baselines`] — weighted-sum and random-search optimizers for
//!   ablations;
//! * [`scenario`] — the §8.2 two-tenant end-to-end setup shared by the
//!   examples, tests, and figure harnesses.
//!
//! ## Quickstart
//!
//! ```
//! use tempo_core::scenario::Scenario;
//!
//! // A scaled-down §8.2.1 scenario: deadline tenant + best-effort tenant
//! // starting from the expert DBA configuration.
//! let mut scenario = Scenario::mixed(0.08, 0.25, 7);
//! let records = scenario.run(3, 1);
//! assert_eq!(records.len(), 3);
//! // Each record carries the observed QS vector (deadline misses, AJR).
//! assert_eq!(records[0].observed_qs.len(), 2);
//! ```

pub mod baselines;
pub mod control;
pub mod pald;
pub mod provision;
pub mod scenario;
pub mod space;
pub mod whatif;

pub use control::{dominates, IterationRecord, LoopConfig, RevertPolicy, Tempo};
pub use pald::{run_pald, Pald, PaldConfig, PaldStep, QsObjective};
pub use provision::{estimate_slos, estimation_error_pct, reconstruct_trace};
pub use space::ConfigSpace;
pub use whatif::{WhatIfModel, WorkloadSource};
