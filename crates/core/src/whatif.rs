//! The What-if Model (§7): predicts QS metrics for a workload under a
//! candidate RM configuration.
//!
//! Prediction is split exactly as in Figure 3: the **Workload Generator**
//! supplies the workload (trace replay or statistical model), the **Schedule
//! Predictor** simulates the task schedule, and the QS metrics are evaluated
//! on the result. Because (SP1) minimizes *expectations*, the model can
//! average each candidate over several sampled workloads/noise draws, and a
//! memo cache avoids re-simulating configurations the optimizer revisits.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tempo_qs::SloSet;
use tempo_sim::{simulate, ClusterSpec, NoiseModel, RmConfig, SimOptions};
use tempo_workload::time::Time;
use tempo_workload::{Trace, WorkloadModel, NUM_KINDS};

/// Where the What-if Model's workloads come from (§7.1: "replaying
/// historical traces or using a statistical model of the workload").
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Replay a fixed trace (identical for every sample). Shared, not owned:
    /// every prediction sample borrows the same `Arc` instead of cloning the
    /// whole trace.
    Replay(Arc<Trace>),
    /// Sample fresh synthetic workloads from a model over `[start, end)`;
    /// each expectation sample uses a distinct generation seed.
    Model { model: WorkloadModel, start: Time, end: Time },
}

impl WorkloadSource {
    /// Replay source from an owned trace.
    pub fn replay(trace: Trace) -> Self {
        WorkloadSource::Replay(Arc::new(trace))
    }

    fn realize(&self, seed: u64) -> Arc<Trace> {
        match self {
            WorkloadSource::Replay(trace) => Arc::clone(trace),
            WorkloadSource::Model { model, start, end } => {
                Arc::new(model.generate(*start, *end, seed))
            }
        }
    }

    /// Whether distinct samples actually differ (drives how many samples are
    /// worth running).
    fn is_stochastic(&self) -> bool {
        matches!(self, WorkloadSource::Model { .. })
    }
}

/// The What-if Model: workload source + cluster + SLOs → expected QS vector
/// per candidate configuration.
pub struct WhatIfModel {
    pub cluster: ClusterSpec,
    pub slos: SloSet,
    pub source: WorkloadSource,
    /// QS evaluation window `[start, end)`.
    pub window: (Time, Time),
    /// Samples averaged per evaluation (the `E[·]` in (SP1)).
    pub samples: u32,
    /// Noise injected into predictor runs. [`NoiseModel::NONE`] gives the
    /// paper's deterministic time-warp predictor; non-zero noise lets
    /// experiments study PALD's robustness to noisy QS measurements.
    pub noise: NoiseModel,
    /// Simulation cutoff (defaults to 2× the window end, leaving room for
    /// straggler jobs to finish and count).
    pub horizon: Option<Time>,
    /// Worker-thread override for batched evaluation (`None` = `TEMPO_THREADS`
    /// env var, falling back to the machine's available parallelism).
    threads: Option<usize>,
    /// Persistent worker pool backing batched and nested-sample evaluation.
    /// Lazily built at first parallel use (sized by [`Self::batch_threads`]),
    /// or installed up front with [`Self::set_pool`] to share one pool's
    /// threads across many models (tempo-serve gives every domain shard a
    /// clone of the runtime's pool).
    pool: OnceLock<crate::pool::WorkerPool>,
    /// Content hash of (source, window), mixed into every memo key so cached
    /// predictions are scoped to the workload context they were computed
    /// against. Kept in sync by [`WhatIfModel::set_source_window`] /
    /// [`WhatIfModel::refresh_context`].
    context: u64,
    cache: MemoCache,
    /// Simulations actually run (diagnostic: cache-hit/dedup accounting).
    sims: AtomicU64,
}

/// Telemetry families for the what-if layer. Process-global aggregates; the
/// per-model [`MemoCache`] atomics below feed per-domain `DomainMetrics`.
mod obs {
    pub(super) fn cache_hits() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_whatif_cache_hits_total",
            "Memoized what-if evaluations served from the cache"
        )
    }
    pub(super) fn cache_misses() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_whatif_cache_misses_total",
            "What-if evaluations that had to simulate"
        )
    }
    pub(super) fn cache_evictions() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_whatif_cache_evictions_total",
            "Memo-cache entries evicted by the LRU watermark"
        )
    }
    pub(super) fn sims() -> &'static tempo_obs::Counter {
        tempo_obs::counter!("tempo_whatif_sims_total", "Prediction simulations actually run")
    }
    pub(super) fn probe_batches() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_whatif_probe_batches_total",
            "Salted probe batches submitted by the optimizer"
        )
    }
    pub(super) fn probe_evals() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_whatif_probe_evals_total",
            "Configurations evaluated across probe batches"
        )
    }
}

/// Number of independently locked cache shards. Sixteen keeps lock
/// contention negligible for any plausible probe batch width while staying
/// cheap to scan for `len()`.
const CACHE_SHARDS: usize = 16;

/// One memoized configuration × prediction context: the QS vector once
/// computed, plus (in debug builds) the full key encoding so 64-bit key
/// collisions are detected instead of silently returning the wrong
/// prediction. `last_used` is the LRU clock reading of the most recent
/// lookup — the eviction watermark's victim-selection key.
struct CacheSlot {
    qs: OnceLock<Vec<f64>>,
    last_used: AtomicU64,
    /// `None` for entries imported from a snapshot, whose original full
    /// encoding is no longer available (their values were collision-checked
    /// when first computed).
    #[cfg(debug_assertions)]
    encoding: Option<String>,
}

/// Sharded memo cache keyed by a 64-bit hash of (workload/window context,
/// RM configuration).
///
/// The context half of the key lets entries from different re-tuning windows
/// coexist: [`crate::Tempo::set_workload`] swaps the window without clearing,
/// and revisiting an earlier window re-hits its entries.
///
/// Concurrency contract: the shard lock is held only to look up / insert the
/// slot, never during simulation. The slot's `OnceLock` serializes
/// computation per configuration — the first evaluator wins and everyone
/// else blocks until the value lands, so a batch containing the same
/// configuration twice simulates it exactly once.
#[derive(Default)]
struct MemoCache {
    shards: [Mutex<HashMap<u64, Arc<CacheSlot>>>; CACHE_SHARDS],
    /// Monotonic LRU clock; every lookup stamps its slot with a fresh tick.
    tick: AtomicU64,
    /// Total-entry watermark (0 = unbounded). Long-running serve domains
    /// accumulate contexts across re-tuning windows; the watermark evicts
    /// least-recently-used entries instead of growing without bound.
    capacity: AtomicUsize,
    /// Lifetime hit/miss/eviction tallies. Like `WhatIfModel::sims` these
    /// are diagnostics, not state: they are never snapshotted, so restored
    /// models start from zero and snapshot bytes stay identical.
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MemoCache {
    /// Looks up (or installs) the slot for `config` under context `token`.
    fn slot(&self, token: u64, config: &RmConfig) -> Arc<CacheSlot> {
        let hash = mix(token, config_hash(config));
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut shard = self.shards[hash as usize % CACHE_SHARDS].lock();
            let slot = Arc::clone(shard.entry(hash).or_insert_with(|| {
                Arc::new(CacheSlot {
                    qs: OnceLock::new(),
                    last_used: AtomicU64::new(now),
                    #[cfg(debug_assertions)]
                    encoding: Some(full_encoding(token, config)),
                })
            }));
            slot.last_used.store(now, Ordering::Relaxed);
            self.enforce_watermark(&mut shard, hash);
            slot
        };
        #[cfg(debug_assertions)]
        if let Some(encoding) = &slot.encoding {
            assert_eq!(
                *encoding,
                full_encoding(token, config),
                "64-bit memo key collision on {hash:#018x}; widen the key"
            );
        }
        slot
    }

    /// Evicts least-recently-used entries from `shard` until it is within
    /// its share of the watermark. The just-touched `keep` entry is never a
    /// victim. Evicting a still-computing slot is safe: waiters hold their
    /// own `Arc` and finish normally — only future lookups re-simulate.
    fn enforce_watermark(&self, shard: &mut HashMap<u64, Arc<CacheSlot>>, keep: u64) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        while shard.len() > per_shard {
            let victim = shard
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    shard.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    obs::cache_evictions().inc();
                }
                None => break,
            };
        }
    }

    /// Drops every entry across all contexts.
    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Number of fully computed entries.
    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().filter(|slot| slot.qs.get().is_some()).count())
            .sum()
    }

    /// Every fully computed `(key, qs)` pair, key-sorted so snapshots are
    /// byte-stable across runs.
    fn export(&self) -> Vec<(u64, Vec<f64>)> {
        let mut out: Vec<(u64, Vec<f64>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .filter_map(|(k, slot)| slot.qs.get().map(|qs| (*k, qs.clone())))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Re-installs exported entries as already-computed slots. Existing keys
    /// keep their current value (first writer wins, matching the OnceLock
    /// discipline).
    fn import(&self, entries: &[(u64, Vec<f64>)]) {
        for (key, qs) in entries {
            let now = self.tick.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shards[*key as usize % CACHE_SHARDS].lock();
            shard.entry(*key).or_insert_with(|| {
                let slot = CacheSlot {
                    qs: OnceLock::new(),
                    last_used: AtomicU64::new(now),
                    #[cfg(debug_assertions)]
                    encoding: None,
                };
                slot.qs.set(qs.clone()).expect("fresh slot accepts its value");
                Arc::new(slot)
            });
            self.enforce_watermark(&mut shard, *key);
        }
    }
}

/// Splitmix64-style field mixer shared by the memo-key hashes: strong enough
/// avalanche that accidental collisions are ~impossible at optimizer scales
/// (billions of keys for a 50% birthday bound); debug builds verify against
/// the full encoding anyway.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut x = (h ^ v).wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Simulation seed for expectation sample `s` of an evaluation salted with
/// `salt`: `salt` selects a splitmix64 stream, `s` steps it, and the mixer's
/// avalanche decorrelates neighbours.
///
/// Replaces the old `salt * 1000 + s` spacing, which aliased as soon as
/// `samples >= 1000` (sample 1000 of salt 0 collided with sample 0 of
/// salt 1), silently correlating supposedly independent noisy observations.
/// The mixer is a bijection of `salt ^ (s+1)·golden`, so two (salt, sample)
/// pairs collide only if those inputs do — which neighbouring salts and
/// sample indices up to millions cannot produce (pinned by regression test
/// up to `samples = 4096`).
#[inline]
fn sample_seed(salt: u64, s: u64) -> u64 {
    mix(salt, s.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Full (context, config) encoding backing the debug collision check.
#[cfg(debug_assertions)]
fn full_encoding(token: u64, config: &RmConfig) -> String {
    format!("{token:#018x}|{}", serde_json::to_string(config).expect("config serializes"))
}

/// Content hash of the prediction context — workload source identity plus
/// the QS window — mixed into every memo key. Replay sources hash the trace
/// *content*, so re-installing an equal trace (e.g. returning to an earlier
/// re-tuning window) lands on the same keys and re-hits the cache.
fn context_token(source: &WorkloadSource, window: (Time, Time)) -> u64 {
    let mut h = mix(0xC0_11_7E_57, window.0);
    h = mix(h, window.1);
    match source {
        WorkloadSource::Replay(trace) => {
            h = mix(h, trace.jobs.len() as u64);
            for j in &trace.jobs {
                h = mix(h, j.id);
                h = mix(h, j.tenant as u64);
                h = mix(h, j.submit);
                h = mix(h, j.deadline.map_or(u64::MAX, |d| d ^ 0x5851F42D4C957F2D));
                h = mix(h, j.slowstart.to_bits());
                h = mix(h, j.tasks.len() as u64);
                for t in &j.tasks {
                    h = mix(h, t.kind.index() as u64);
                    h = mix(h, t.duration);
                }
            }
        }
        // Stochastic sources are never memoized; a coarse tag suffices.
        WorkloadSource::Model { start, end, .. } => {
            h = mix(h, 1);
            h = mix(h, *start);
            h = mix(h, *end);
        }
    }
    h
}

/// 64-bit structural hash of an RM configuration — the config half of the
/// memo key.
fn config_hash(config: &RmConfig) -> u64 {
    let policy_tag = match config.policy {
        tempo_sim::SchedPolicy::FairShare => 0u64,
        tempo_sim::SchedPolicy::Drf => 1,
        tempo_sim::SchedPolicy::Capacity => 2,
        tempo_sim::SchedPolicy::Fifo => 3,
    };
    let mut h = mix(0x7E3A90_u64, policy_tag);
    h = mix(h, config.tenants.len() as u64);
    let opt = |t: Option<Time>| t.map_or(u64::MAX, |v| v ^ 0x5851F42D4C957F2D);
    for t in &config.tenants {
        h = mix(h, t.weight.to_bits());
        for pool in 0..NUM_KINDS {
            h = mix(h, t.min_share[pool] as u64);
            h = mix(h, t.max_share[pool] as u64);
        }
        h = mix(h, opt(t.fair_timeout));
        h = mix(h, opt(t.min_timeout));
    }
    h
}

impl WhatIfModel {
    pub fn new(
        cluster: ClusterSpec,
        slos: SloSet,
        source: WorkloadSource,
        window: (Time, Time),
    ) -> Self {
        assert!(window.0 < window.1, "empty QS window");
        let context = context_token(&source, window);
        Self {
            cluster,
            slos,
            source,
            window,
            samples: 1,
            noise: NoiseModel::NONE,
            horizon: None,
            threads: None,
            pool: OnceLock::new(),
            context,
            cache: MemoCache::default(),
            sims: AtomicU64::new(0),
        }
    }

    /// Swaps the workload source and QS window, re-deriving the memo-cache
    /// context. Cached predictions for *other* contexts stay: re-tuning
    /// loops that revisit a window (or re-install an identical trace) keep
    /// their hits instead of re-simulating from scratch.
    pub fn set_source_window(&mut self, source: WorkloadSource, window: (Time, Time)) {
        assert!(window.0 < window.1, "empty QS window");
        self.source = source;
        self.window = window;
        self.refresh_context();
    }

    /// Re-derives the memo context from the current `source`/`window`. Call
    /// after mutating those fields directly (prefer
    /// [`WhatIfModel::set_source_window`], which does it for you).
    pub fn refresh_context(&mut self) {
        self.context = context_token(&self.source, self.window);
    }

    pub fn with_samples(mut self, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Pins the worker-thread count used by batched evaluation.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(Some(threads));
        self
    }

    /// Bounds the memo cache to roughly `capacity` entries with
    /// least-recently-used eviction (see [`WhatIfModel::set_cache_capacity`]).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        self.set_cache_capacity(Some(capacity));
        self
    }

    /// Sets (or clears, with `None`) the memo-cache LRU watermark. The bound
    /// is enforced per shard, so the effective ceiling is `capacity` rounded
    /// up to a multiple of the shard count. Eviction only affects *when* a
    /// configuration is re-simulated, never the values returned —
    /// deterministic evaluations are identical either way.
    pub fn set_cache_capacity(&self, capacity: Option<usize>) {
        self.cache.capacity.store(capacity.unwrap_or(0), Ordering::Relaxed);
    }

    /// The configured LRU watermark (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        match self.cache.capacity.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Exports every computed memo entry as `(key, qs)` pairs, key-sorted —
    /// the warm-cache half of a daemon snapshot. Keys are the full 64-bit
    /// (context, config) hashes, so entries re-imported into a model with
    /// the same workload/window context hit immediately.
    pub fn export_cache(&self) -> Vec<(u64, Vec<f64>)> {
        self.cache.export()
    }

    /// Re-installs entries exported by [`WhatIfModel::export_cache`].
    /// Existing keys keep their current value.
    pub fn import_cache(&self, entries: &[(u64, Vec<f64>)]) {
        self.cache.import(entries);
    }

    /// Sets (or clears) the worker-thread override; `Some(1)` forces the
    /// serial path.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        if let Some(t) = threads {
            assert!(t >= 1, "need at least one worker thread");
        }
        self.threads = threads;
    }

    /// Worker threads a batched evaluation will use: the explicit override,
    /// else the `TEMPO_THREADS` environment variable, else every available
    /// core.
    pub fn batch_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t;
        }
        if let Some(t) =
            std::env::var("TEMPO_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok())
        {
            if t >= 1 {
                return t;
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Installs a shared [`WorkerPool`] for this model's parallel
    /// evaluation. No-op if a pool is already installed (or was lazily
    /// built); call before the first evaluation. Sharing one pool across
    /// models (e.g. every tempo-serve domain shard) keeps total thread
    /// count at the pool's width instead of multiplying per model —
    /// results are unaffected either way, by the determinism contract.
    pub fn set_pool(&self, pool: crate::pool::WorkerPool) {
        let _ = self.pool.set(pool);
    }

    /// The persistent pool backing parallel evaluation, built on first use.
    fn pool(&self) -> &crate::pool::WorkerPool {
        self.pool.get_or_init(|| crate::pool::WorkerPool::new(self.batch_threads()))
    }

    /// Number of QS objectives.
    pub fn k(&self) -> usize {
        self.slos.len()
    }

    fn sim_horizon(&self) -> Time {
        self.horizon.unwrap_or_else(|| self.window.1.saturating_mul(2).max(self.window.1 + 1))
    }

    /// One prediction sample: realize workload, simulate, evaluate QS.
    fn sample_qs(&self, config: &RmConfig, sample: u64) -> Vec<f64> {
        self.sims.fetch_add(1, Ordering::Relaxed);
        obs::sims().inc();
        let trace = self.source.realize(0x5EED ^ sample);
        let opts =
            SimOptions { horizon: Some(self.sim_horizon()), noise: self.noise, seed: sample };
        let schedule = simulate(&trace, &self.cluster, config, &opts);
        self.slos.evaluate(&schedule, self.window.0, self.window.1)
    }

    /// Uncached expectation estimate: mean of `samples` simulations (one for
    /// fully deterministic models).
    ///
    /// Multi-sample estimates fan the simulations out across the worker
    /// pool as nested tasks (this often runs *inside* a pooled batch
    /// evaluation; the pool's work-helping join makes that safe). Sample
    /// seeds are pre-assigned and the per-sample QS vectors are reduced in
    /// sample-index order, so the mean is bit-identical to the serial loop
    /// at any thread count.
    fn compute_qs(&self, config: &RmConfig, salt: u64) -> Vec<f64> {
        let n = if self.noise.is_none() && !self.source.is_stochastic() { 1 } else { self.samples };
        let per: Vec<Vec<f64>> = if n > 1 && self.batch_threads() > 1 {
            self.pool().map(n as usize, |s| self.sample_qs(config, sample_seed(salt, s as u64)))
        } else {
            (0..n as u64).map(|s| self.sample_qs(config, sample_seed(salt, s))).collect()
        };
        let mut acc = vec![0.0; self.k()];
        for qs in per {
            for (a, v) in acc.iter_mut().zip(qs) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= n as f64;
        }
        acc
    }

    /// Expected QS vector for a configuration (mean over samples), memoized.
    ///
    /// `salt` perturbs which sample seeds are drawn — optimizers that *want*
    /// independent noisy observations (to average across control-loop
    /// iterations) pass distinct salts and bypass the memo cache.
    pub fn evaluate_salted(&self, config: &RmConfig, salt: u64) -> Vec<f64> {
        let deterministic = salt == 0 && self.noise.is_none() && !self.source.is_stochastic();
        if !deterministic {
            return self.compute_qs(config, salt);
        }
        // First writer wins; concurrent evaluators of the same config block
        // on the OnceLock instead of racing duplicate simulations.
        let slot = self.cache.slot(self.context, config);
        // Approximate under contention (two threads may both tally a miss
        // before one wins the OnceLock); the tallies are diagnostics, never
        // inputs to control decisions.
        if slot.qs.get().is_some() {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            obs::cache_hits().inc();
        } else {
            self.cache.misses.fetch_add(1, Ordering::Relaxed);
            obs::cache_misses().inc();
        }
        slot.qs.get_or_init(|| self.compute_qs(config, 0)).clone()
    }

    /// Expected QS vector with the default salt.
    pub fn evaluate(&self, config: &RmConfig) -> Vec<f64> {
        self.evaluate_salted(config, 0)
    }

    /// Evaluates many candidates in parallel (the Optimizer explores several
    /// RM configurations per control-loop iteration — §8.2 uses 5), all with
    /// the default salt. Results are in input order; duplicate
    /// configurations in a deterministic batch simulate at most once (the
    /// memo cache serializes them).
    pub fn evaluate_batch(&self, configs: &[RmConfig]) -> Vec<Vec<f64>> {
        self.batch_map(configs.len(), |i| self.evaluate(&configs[i]))
    }

    /// Evaluates `configs[i]` with salt `first_salt + i`, in parallel. This
    /// is PALD's probe-batch entry point: the salts are the pre-assigned
    /// sample ids, so the result vector is byte-identical to calling
    /// [`Self::evaluate_salted`] serially in input order — regardless of the
    /// worker-thread count.
    pub fn evaluate_batch_salted(&self, configs: &[RmConfig], first_salt: u64) -> Vec<Vec<f64>> {
        obs::probe_batches().inc();
        obs::probe_evals().add(configs.len() as u64);
        self.batch_map(configs.len(), |i| {
            self.evaluate_salted(&configs[i], first_salt.wrapping_add(i as u64))
        })
    }

    /// Order-preserving parallel map over `0..n` evaluations on the
    /// persistent [`crate::pool::WorkerPool`]; serial when one thread (or
    /// one item) makes fan-out pointless. Result `i` always lands in slot
    /// `i`, so output is placement-independent. A panicking evaluation
    /// poisons only its own slot's batch — the remaining evaluations still
    /// complete and the pool stays serviceable — before the panic re-raises
    /// here.
    fn batch_map<F>(&self, n: usize, eval: F) -> Vec<Vec<f64>>
    where
        F: Fn(usize) -> Vec<f64> + Sync,
    {
        if self.batch_threads().min(n) <= 1 {
            return (0..n).map(eval).collect();
        }
        self.pool().map(n, eval)
    }

    /// Invalidates the memo cache across every context. Rarely needed now
    /// that the key carries the workload/window identity — use it after
    /// mutating something the context hash does *not* cover (e.g. `horizon`,
    /// `cluster`, or `slos` in place), or to bound memory across many
    /// windows.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Number of memoized evaluations (test/diagnostic hook).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Total simulations run so far (test/diagnostic hook: batch dedup and
    /// cache hits keep this below the evaluation count).
    pub fn sim_count(&self) -> u64 {
        self.sims.load(Ordering::Relaxed)
    }

    /// Lifetime memo-cache `(hits, misses, evictions)` for this model. Like
    /// [`Self::sim_count`] these reset to zero on snapshot restore — they
    /// describe work done by this process, not cache contents.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.misses.load(Ordering::Relaxed),
            self.cache.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_qs::{QsKind, SloSpec};
    use tempo_sim::TenantConfig;
    use tempo_workload::synthetic::ec2_experiment_model;
    use tempo_workload::time::{HOUR, MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn slos() -> SloSet {
        SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ])
    }

    fn replay_model() -> WhatIfModel {
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, vec![TaskSpec::map(30 * SEC)]).with_deadline(2 * MIN),
            JobSpec::new(1, 1, 10 * SEC, vec![TaskSpec::map(60 * SEC)]),
        ]);
        WhatIfModel::new(
            ClusterSpec::new(2, 1),
            slos(),
            WorkloadSource::replay(trace),
            (0, 10 * MIN),
        )
    }

    #[test]
    fn replay_evaluation_is_deterministic_and_cached() {
        let m = replay_model();
        let cfg = RmConfig::fair(2);
        let a = m.evaluate(&cfg);
        assert_eq!(m.cache_len(), 1);
        let b = m.evaluate(&cfg);
        assert_eq!(a, b);
        assert_eq!(m.cache_len(), 1, "second call hits the cache");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], 0.0, "deadline met");
        assert!((a[1] - 60.0).abs() < 1e-9, "tenant 1 ran unobstructed");
    }

    #[test]
    fn config_changes_change_qs() {
        let m = replay_model();
        let fair = m.evaluate(&RmConfig::fair(2));
        // Starve tenant 1 to one slot... cluster only has 2 map slots; cap
        // tenant 1 to share with tenant 0 running first.
        let capped = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_max_share(1, 1),
        ]);
        let qs_capped = m.evaluate(&capped);
        assert_eq!(m.cache_len(), 2);
        // Same deadline outcome; response time unchanged here (slots free),
        // but vectors must be well-formed.
        assert_eq!(qs_capped.len(), 2);
        assert!(qs_capped[1] >= fair[1] - 1e-9);
    }

    #[test]
    fn model_source_averages_over_workload_draws() {
        let m = WhatIfModel::new(
            ClusterSpec::new(40, 20),
            slos(),
            WorkloadSource::Model { model: ec2_experiment_model(0.3), start: 0, end: HOUR },
            (0, HOUR),
        )
        .with_samples(3);
        let cfg = RmConfig::fair(2);
        let a = m.evaluate(&cfg);
        let b = m.evaluate(&cfg);
        assert_eq!(a, b, "same salt ⇒ same expectation estimate");
        let c = m.evaluate_salted(&cfg, 7);
        assert_ne!(a, c, "different salt ⇒ different draws");
        assert_eq!(m.cache_len(), 0, "stochastic sources are not memoized");
        assert!(a[1] > 0.0, "best-effort AJR should be positive");
    }

    #[test]
    fn batch_matches_serial() {
        let m = replay_model();
        let cfgs = vec![
            RmConfig::fair(2),
            RmConfig::new(vec![
                TenantConfig::fair_default().with_weight(3.0),
                TenantConfig::fair_default(),
            ]),
            RmConfig::new(vec![
                TenantConfig::fair_default(),
                TenantConfig::fair_default().with_weight(3.0),
            ]),
        ];
        let batch = m.evaluate_batch(&cfgs);
        for (cfg, expect) in cfgs.iter().zip(&batch) {
            assert_eq!(&m.evaluate(cfg), expect);
        }
    }

    #[test]
    fn cache_entries_survive_window_swaps_and_rehit() {
        let mut m = replay_model();
        let cfg = RmConfig::fair(2);
        let first = m.evaluate(&cfg);
        assert_eq!(m.sim_count(), 1);

        // Shrink the window: same trace, different context → re-simulate.
        let original_source = m.source.clone();
        m.set_source_window(original_source.clone(), (0, 5 * MIN));
        let narrow = m.evaluate(&cfg);
        assert_eq!(m.sim_count(), 2, "window change is a distinct memo context");
        assert_eq!(m.cache_len(), 2, "old window's entry survives");

        // Swap back: pure hit, no third simulation.
        m.set_source_window(original_source, (0, 10 * MIN));
        assert_eq!(m.evaluate(&cfg), first);
        assert_eq!(m.sim_count(), 2, "revisited window re-hit its entry");

        // A content-identical trace built from scratch lands on the same
        // keys (the token hashes trace content, not identity).
        let rebuilt = Trace::new(vec![
            JobSpec::new(0, 0, 0, vec![TaskSpec::map(30 * SEC)]).with_deadline(2 * MIN),
            JobSpec::new(1, 1, 10 * SEC, vec![TaskSpec::map(60 * SEC)]),
        ]);
        m.set_source_window(WorkloadSource::replay(rebuilt), (0, 10 * MIN));
        assert_eq!(m.evaluate(&cfg), first);
        assert_eq!(m.sim_count(), 2, "equal content ⇒ equal context token ⇒ hit");
        let _ = narrow;
    }

    #[test]
    fn noisy_predictor_changes_results() {
        let mut m = replay_model();
        m = m.with_noise(NoiseModel::production()).with_samples(2);
        let qs = m.evaluate(&RmConfig::fair(2));
        assert_eq!(qs.len(), 2);
        assert_eq!(m.cache_len(), 0, "noisy evaluations are not memoized");
    }

    #[test]
    fn lru_watermark_bounds_entries_and_keeps_hot_ones() {
        let m = replay_model().with_cache_capacity(CACHE_SHARDS);
        // Per-shard bound is 1; generate enough distinct configs that some
        // shard sees more than one key and must evict.
        let configs: Vec<RmConfig> = (0..64)
            .map(|i| {
                RmConfig::new(vec![
                    TenantConfig::fair_default().with_weight(1.0 + i as f64),
                    TenantConfig::fair_default(),
                ])
            })
            .collect();
        for cfg in &configs {
            m.evaluate(cfg);
        }
        assert!(m.cache_len() <= CACHE_SHARDS, "watermark exceeded: {} entries", m.cache_len());
        assert!(m.sim_count() >= 64, "every distinct config simulated at least once");

        // A re-evaluated evicted config re-simulates but returns the same
        // value: eviction is invisible except for the extra work.
        let sims = m.sim_count();
        let again = m.evaluate(&configs[0]);
        assert_eq!(again, replay_model().evaluate(&configs[0]));
        assert!(m.sim_count() >= sims, "values never change, only re-simulation count");
    }

    #[test]
    fn export_import_round_trips_warm_entries() {
        let m = replay_model();
        let cfg_a = RmConfig::fair(2);
        let cfg_b = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(3.0),
            TenantConfig::fair_default(),
        ]);
        let qs_a = m.evaluate(&cfg_a);
        let qs_b = m.evaluate(&cfg_b);
        let exported = m.export_cache();
        assert_eq!(exported.len(), 2);
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "key-sorted for stable snapshots");

        // A fresh model with the same context answers from the imported
        // entries without simulating.
        let fresh = replay_model();
        fresh.import_cache(&exported);
        assert_eq!(fresh.cache_len(), 2);
        assert_eq!(fresh.evaluate(&cfg_a), qs_a);
        assert_eq!(fresh.evaluate(&cfg_b), qs_b);
        assert_eq!(fresh.sim_count(), 0, "warm restore: no re-simulation");
        // Importing on top of existing entries is idempotent.
        fresh.import_cache(&exported);
        assert_eq!(fresh.cache_len(), 2);
    }

    /// Regression for the pre-splitmix seed schedule `salt * 1000 + s`,
    /// which aliased whenever `samples >= 1000` (salt 0 sample 1000 ==
    /// salt 1 sample 0): distinct `(salt, sample)` pairs must map to
    /// distinct seeds well past any realistic sample count.
    #[test]
    fn sample_seeds_never_alias() {
        let mut seen = std::collections::HashSet::new();
        for salt in 0..=64u64 {
            for s in 0..4096u64 {
                assert!(
                    seen.insert(sample_seed(salt, s)),
                    "seed collision at salt={salt} sample={s}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty QS window")]
    fn rejects_empty_window() {
        let _ = WhatIfModel::new(
            ClusterSpec::new(1, 1),
            slos(),
            WorkloadSource::replay(Trace::default()),
            (MIN, MIN),
        );
    }
}
