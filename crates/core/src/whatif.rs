//! The What-if Model (§7): predicts QS metrics for a workload under a
//! candidate RM configuration.
//!
//! Prediction is split exactly as in Figure 3: the **Workload Generator**
//! supplies the workload (trace replay or statistical model), the **Schedule
//! Predictor** simulates the task schedule, and the QS metrics are evaluated
//! on the result. Because (SP1) minimizes *expectations*, the model can
//! average each candidate over several sampled workloads/noise draws, and a
//! memo cache avoids re-simulating configurations the optimizer revisits.

use parking_lot::Mutex;
use std::collections::HashMap;
use tempo_qs::SloSet;
use tempo_sim::{simulate, ClusterSpec, NoiseModel, RmConfig, SimOptions};
use tempo_workload::time::Time;
use tempo_workload::{Trace, WorkloadModel};

/// Where the What-if Model's workloads come from (§7.1: "replaying
/// historical traces or using a statistical model of the workload").
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Replay a fixed trace (identical for every sample).
    Replay(Trace),
    /// Sample fresh synthetic workloads from a model over `[start, end)`;
    /// each expectation sample uses a distinct generation seed.
    Model { model: WorkloadModel, start: Time, end: Time },
}

impl WorkloadSource {
    fn realize(&self, seed: u64) -> Trace {
        match self {
            WorkloadSource::Replay(trace) => trace.clone(),
            WorkloadSource::Model { model, start, end } => model.generate(*start, *end, seed),
        }
    }

    /// Whether distinct samples actually differ (drives how many samples are
    /// worth running).
    fn is_stochastic(&self) -> bool {
        matches!(self, WorkloadSource::Model { .. })
    }
}

/// The What-if Model: workload source + cluster + SLOs → expected QS vector
/// per candidate configuration.
pub struct WhatIfModel {
    pub cluster: ClusterSpec,
    pub slos: SloSet,
    pub source: WorkloadSource,
    /// QS evaluation window `[start, end)`.
    pub window: (Time, Time),
    /// Samples averaged per evaluation (the `E[·]` in (SP1)).
    pub samples: u32,
    /// Noise injected into predictor runs. [`NoiseModel::NONE`] gives the
    /// paper's deterministic time-warp predictor; non-zero noise lets
    /// experiments study PALD's robustness to noisy QS measurements.
    pub noise: NoiseModel,
    /// Simulation cutoff (defaults to 2× the window end, leaving room for
    /// straggler jobs to finish and count).
    pub horizon: Option<Time>,
    cache: Mutex<HashMap<String, Vec<f64>>>,
}

impl WhatIfModel {
    pub fn new(
        cluster: ClusterSpec,
        slos: SloSet,
        source: WorkloadSource,
        window: (Time, Time),
    ) -> Self {
        assert!(window.0 < window.1, "empty QS window");
        Self {
            cluster,
            slos,
            source,
            window,
            samples: 1,
            noise: NoiseModel::NONE,
            horizon: None,
            cache: Mutex::new(HashMap::new()),
        }
    }

    pub fn with_samples(mut self, samples: u32) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Number of QS objectives.
    pub fn k(&self) -> usize {
        self.slos.len()
    }

    fn sim_horizon(&self) -> Time {
        self.horizon.unwrap_or_else(|| self.window.1.saturating_mul(2).max(self.window.1 + 1))
    }

    /// One prediction sample: realize workload, simulate, evaluate QS.
    fn sample_qs(&self, config: &RmConfig, sample: u64) -> Vec<f64> {
        let trace = self.source.realize(0x5EED ^ sample);
        let opts =
            SimOptions { horizon: Some(self.sim_horizon()), noise: self.noise, seed: sample };
        let schedule = simulate(&trace, &self.cluster, config, &opts);
        self.slos.evaluate(&schedule, self.window.0, self.window.1)
    }

    /// Expected QS vector for a configuration (mean over samples), memoized.
    ///
    /// `salt` perturbs which sample seeds are drawn — optimizers that *want*
    /// independent noisy observations (to average across control-loop
    /// iterations) pass distinct salts and bypass the memo cache.
    pub fn evaluate_salted(&self, config: &RmConfig, salt: u64) -> Vec<f64> {
        let deterministic = salt == 0 && self.noise.is_none() && !self.source.is_stochastic();
        let key = if deterministic {
            Some(serde_json::to_string(config).expect("config serializes"))
        } else {
            None
        };
        if let Some(k) = &key {
            if let Some(hit) = self.cache.lock().get(k) {
                return hit.clone();
            }
        }
        let n = if self.noise.is_none() && !self.source.is_stochastic() { 1 } else { self.samples };
        let mut acc = vec![0.0; self.k()];
        for s in 0..n as u64 {
            let qs = self.sample_qs(config, salt.wrapping_mul(1000).wrapping_add(s));
            for (a, v) in acc.iter_mut().zip(qs) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= n as f64;
        }
        if let Some(k) = key {
            self.cache.lock().insert(k, acc.clone());
        }
        acc
    }

    /// Expected QS vector with the default salt.
    pub fn evaluate(&self, config: &RmConfig) -> Vec<f64> {
        self.evaluate_salted(config, 0)
    }

    /// Evaluates many candidates in parallel (the Optimizer explores several
    /// RM configurations per control-loop iteration — §8.2 uses 5).
    pub fn evaluate_batch(&self, configs: &[RmConfig]) -> Vec<Vec<f64>> {
        if configs.len() <= 1 {
            return configs.iter().map(|c| self.evaluate(c)).collect();
        }
        let mut out: Vec<Option<Vec<f64>>> = vec![None; configs.len()];
        crossbeam::scope(|scope| {
            let threads =
                std::thread::available_parallelism().map_or(4, |n| n.get()).min(configs.len());
            let chunk = configs.len().div_ceil(threads);
            for (slot_chunk, cfg_chunk) in out.chunks_mut(chunk).zip(configs.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (slot, cfg) in slot_chunk.iter_mut().zip(cfg_chunk) {
                        *slot = Some(self.evaluate(cfg));
                    }
                });
            }
        })
        .expect("what-if evaluation thread panicked");
        out.into_iter().map(|v| v.expect("all slots filled")).collect()
    }

    /// Number of memoized evaluations (test/diagnostic hook).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_qs::{QsKind, SloSpec};
    use tempo_sim::TenantConfig;
    use tempo_workload::synthetic::ec2_experiment_model;
    use tempo_workload::time::{HOUR, MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec};

    fn slos() -> SloSet {
        SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ])
    }

    fn replay_model() -> WhatIfModel {
        let trace = Trace::new(vec![
            JobSpec::new(0, 0, 0, vec![TaskSpec::map(30 * SEC)]).with_deadline(2 * MIN),
            JobSpec::new(1, 1, 10 * SEC, vec![TaskSpec::map(60 * SEC)]),
        ]);
        WhatIfModel::new(
            ClusterSpec::new(2, 1),
            slos(),
            WorkloadSource::Replay(trace),
            (0, 10 * MIN),
        )
    }

    #[test]
    fn replay_evaluation_is_deterministic_and_cached() {
        let m = replay_model();
        let cfg = RmConfig::fair(2);
        let a = m.evaluate(&cfg);
        assert_eq!(m.cache_len(), 1);
        let b = m.evaluate(&cfg);
        assert_eq!(a, b);
        assert_eq!(m.cache_len(), 1, "second call hits the cache");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], 0.0, "deadline met");
        assert!((a[1] - 60.0).abs() < 1e-9, "tenant 1 ran unobstructed");
    }

    #[test]
    fn config_changes_change_qs() {
        let m = replay_model();
        let fair = m.evaluate(&RmConfig::fair(2));
        // Starve tenant 1 to one slot... cluster only has 2 map slots; cap
        // tenant 1 to share with tenant 0 running first.
        let capped = RmConfig::new(vec![
            TenantConfig::fair_default(),
            TenantConfig::fair_default().with_max_share(1, 1),
        ]);
        let qs_capped = m.evaluate(&capped);
        assert_eq!(m.cache_len(), 2);
        // Same deadline outcome; response time unchanged here (slots free),
        // but vectors must be well-formed.
        assert_eq!(qs_capped.len(), 2);
        assert!(qs_capped[1] >= fair[1] - 1e-9);
    }

    #[test]
    fn model_source_averages_over_workload_draws() {
        let m = WhatIfModel::new(
            ClusterSpec::new(40, 20),
            slos(),
            WorkloadSource::Model { model: ec2_experiment_model(0.3), start: 0, end: HOUR },
            (0, HOUR),
        )
        .with_samples(3);
        let cfg = RmConfig::fair(2);
        let a = m.evaluate(&cfg);
        let b = m.evaluate(&cfg);
        assert_eq!(a, b, "same salt ⇒ same expectation estimate");
        let c = m.evaluate_salted(&cfg, 7);
        assert_ne!(a, c, "different salt ⇒ different draws");
        assert_eq!(m.cache_len(), 0, "stochastic sources are not memoized");
        assert!(a[1] > 0.0, "best-effort AJR should be positive");
    }

    #[test]
    fn batch_matches_serial() {
        let m = replay_model();
        let cfgs = vec![
            RmConfig::fair(2),
            RmConfig::new(vec![
                TenantConfig::fair_default().with_weight(3.0),
                TenantConfig::fair_default(),
            ]),
            RmConfig::new(vec![
                TenantConfig::fair_default(),
                TenantConfig::fair_default().with_weight(3.0),
            ]),
        ];
        let batch = m.evaluate_batch(&cfgs);
        for (cfg, expect) in cfgs.iter().zip(&batch) {
            assert_eq!(&m.evaluate(cfg), expect);
        }
    }

    #[test]
    fn noisy_predictor_changes_results() {
        let mut m = replay_model();
        m = m.with_noise(NoiseModel::production()).with_samples(2);
        let qs = m.evaluate(&RmConfig::fair(2));
        assert_eq!(qs.len(), 2);
        assert_eq!(m.cache_len(), 0, "noisy evaluations are not memoized");
    }

    #[test]
    #[should_panic(expected = "empty QS window")]
    fn rejects_empty_window() {
        let _ = WhatIfModel::new(
            ClusterSpec::new(1, 1),
            slos(),
            WorkloadSource::Replay(Trace::default()),
            (MIN, MIN),
        );
    }
}
