//! A persistent work-helping worker pool for what-if evaluation.
//!
//! The optimizer's probe batches used to spawn a fresh `crossbeam::scope`
//! per batch — cheap once, expensive at serving rates where every control
//! iteration fans out several batches. This pool keeps its threads alive
//! across batches and adds one property scoped threads cannot give:
//! **nested fan-out**. A task running on the pool may itself submit a batch
//! (the stochastic What-if Model fans each evaluation's expectation samples
//! out as sub-tasks) without risking deadlock, because joining is
//! *work-helping*: the submitter claims and executes its own batch's tasks
//! until none remain, then blocks only on tasks already claimed by other
//! threads. Leaf tasks never block, so every claimed task completes and
//! every join terminates.
//!
//! # Determinism
//!
//! The pool provides *placement-free* results: [`WorkerPool::map`] writes
//! task `i`'s output into slot `i`, so the caller observes results in index
//! order no matter which thread ran what, when, or how many workers exist.
//! Callers that reduce floats do so over the returned vector in index order
//! — making every reduction bit-identical at any thread count (including
//! one).
//!
//! # Panics
//!
//! A panicking task poisons only its own batch: the panic payload is parked
//! in the batch ([`catch_unwind`]), remaining tasks still run, the worker
//! survives to serve later batches, and the payload re-raises at the
//! joiner ([`resume_unwind`]). The pool itself is never wedged — a batch
//! whose task panicked leaves the queue exactly like a successful one.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Telemetry probes for the pool. Counters are write-only and never read
/// back by the pool, so instrumented and uninstrumented runs schedule
/// identically; the batch-latency stopwatch reads a wall clock only while
/// telemetry is enabled and never feeds back into results.
mod obs {
    pub(super) fn batches() -> &'static tempo_obs::Counter {
        tempo_obs::counter!("tempo_pool_batches_total", "Task batches submitted to the worker pool")
    }

    pub(super) fn tasks() -> &'static tempo_obs::Counter {
        tempo_obs::counter!("tempo_pool_tasks_total", "Tasks executed across all pool batches")
    }

    pub(super) fn steals() -> &'static tempo_obs::Counter {
        tempo_obs::counter!(
            "tempo_pool_steals_total",
            "Tasks claimed by background workers rather than the submitting thread"
        )
    }

    pub(super) fn queue_depth() -> &'static tempo_obs::Gauge {
        tempo_obs::gauge!("tempo_pool_queue_depth", "Claimable batches queued in the worker pool")
    }

    pub(super) fn batch_micros() -> &'static tempo_obs::Histogram {
        tempo_obs::histogram!(
            "tempo_pool_batch_duration_micros",
            "Wall time from batch submission to join, in microseconds"
        )
    }
}

/// How long an idle worker sleeps between checks that its pool is still
/// alive. Bounds both wake-up latency on a missed notify and thread
/// lifetime after the last handle drops.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// One submitted batch: `len` tasks, claimed by atomic cursor.
struct Batch {
    /// Type-erased borrowed task body. Lifetime-erased to `'static`;
    /// soundness argument at [`WorkerPool::run`].
    task: TaskRef,
    len: usize,
    /// Next unclaimed index (may overshoot `len` by one per racing thread).
    next: AtomicUsize,
    /// Completed-task count; the joiner's latch.
    done: Mutex<usize>,
    finished: Condvar,
    /// First panic payload raised by a task (later ones are dropped —
    /// resuming one is enough to fail the join loudly).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Raw pointer to the caller's `&dyn Fn(usize)` with the lifetime erased.
/// Send/Sync are asserted by the `run` contract: the referent outlives every
/// dereference because `run` does not return until `done == len`.
struct TaskRef(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

struct Inner {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_ready: Condvar,
    /// Total execution width (worker threads + the work-helping caller).
    width: usize,
}

/// Clonable handle to a persistent worker pool. All clones share the same
/// threads; dropping the last handle retires them (within [`IDLE_POLL`]).
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("width", &self.inner.width).finish()
    }
}

impl WorkerPool {
    /// A pool of total execution width `threads`: `threads - 1` background
    /// workers plus the submitting thread, which always work-helps its own
    /// batches. `threads <= 1` builds a zero-thread pool whose `run`/`map`
    /// degrade to the serial loop.
    pub fn new(threads: usize) -> Self {
        let width = threads.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            width,
        });
        for i in 0..width - 1 {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name(format!("tempo-pool-{i}"))
                .spawn(move || worker_loop(weak))
                .expect("spawn pool worker");
        }
        WorkerPool { inner }
    }

    /// Pool width (background workers + caller).
    pub fn width(&self) -> usize {
        self.inner.width
    }

    /// Pool width from the environment: `TEMPO_THREADS` if set (and ≥ 1),
    /// else the machine's available parallelism.
    pub fn default_width() -> usize {
        if let Some(t) =
            std::env::var("TEMPO_THREADS").ok().and_then(|s| s.trim().parse::<usize>().ok())
        {
            if t >= 1 {
                return t;
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// A pool sized by [`WorkerPool::default_width`].
    pub fn with_default_width() -> Self {
        Self::new(Self::default_width())
    }

    /// Runs `f(0..n)` across the pool and returns when all `n` calls have
    /// completed. The caller work-helps, so this makes progress even if
    /// every background worker is busy (or there are none). If any call
    /// panicked, the first payload is re-raised here after the rest of the
    /// batch has still run to completion.
    pub fn run<F>(&self, n: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        obs::batches().inc();
        obs::tasks().add(n as u64);
        let sw = tempo_obs::Stopwatch::start();
        if self.inner.width <= 1 || n == 1 {
            for i in 0..n {
                f(i);
            }
            sw.observe_into(obs::batch_micros);
            return;
        }
        // SAFETY: the erased borrow is dereferenced only by tasks of this
        // batch, and this function does not return (or unwind — the waits
        // below are not cancellable) until `done == n`, i.e. until after
        // the last dereference. The borrow therefore strictly outlives
        // every use despite the erased lifetime.
        let wide: &(dyn Fn(usize) + Sync) = f;
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
                as *const _
        });
        let batch = Arc::new(Batch {
            task,
            len: n,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            q.push_back(Arc::clone(&batch));
            obs::queue_depth().set(q.len() as i64);
        }
        self.inner.work_ready.notify_all();
        // Work-help until no task of our batch is left unclaimed...
        help(&batch);
        // ...then wait out the stragglers other threads claimed.
        let mut done = batch.done.lock().expect("pool latch poisoned");
        while *done < n {
            done = batch.finished.wait(done).expect("pool latch poisoned");
        }
        drop(done);
        sw.observe_into(obs::batch_micros);
        let payload = batch.panic.lock().expect("pool panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Order-preserving parallel map: returns `[f(0), f(1), .., f(n-1)]`
    /// with task `i`'s result in slot `i`, independent of scheduling.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SlotWriter(out.as_mut_ptr());
        // SAFETY: the atomic cursor hands each index to exactly one task,
        // so every slot is written by at most one thread; `run` joins the
        // batch before `out` is touched again.
        self.run(n, &|i| {
            let slots = &slots;
            unsafe { slots.0.add(i).write(Some(f(i))) }
        });
        out.into_iter().map(|v| v.expect("pool ran every index")).collect()
    }
}

/// Shareable base pointer for `map`'s output slots. Send/Sync hold because
/// the cursor gives each index a unique writer (see `map`).
struct SlotWriter<T>(*mut Option<T>);
unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// Claims and executes tasks of `batch` until its cursor is exhausted.
/// Returns how many tasks this thread executed.
fn help(batch: &Batch) -> u64 {
    let mut executed = 0u64;
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.len {
            return executed;
        }
        executed += 1;
        // SAFETY: see the erasure contract in `WorkerPool::run`.
        let f = unsafe { &*batch.task.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            let mut slot = batch.panic.lock().expect("pool panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = batch.done.lock().expect("pool latch poisoned");
        *done += 1;
        if *done == batch.len {
            batch.finished.notify_all();
        }
    }
}

fn worker_loop(weak: Weak<Inner>) {
    loop {
        // Holding only a Weak while idle lets the pool die when the last
        // handle drops: the upgrade fails and the thread retires.
        let Some(inner) = weak.upgrade() else { return };
        let next = {
            let mut q = inner.queue.lock().expect("pool queue poisoned");
            // Drop exhausted batches off the front (their joiners hold
            // their own Arcs; the queue only tracks claimable work).
            while q.front().is_some_and(|b| b.next.load(Ordering::Relaxed) >= b.len) {
                q.pop_front();
            }
            match q.front() {
                Some(b) => Some(Arc::clone(b)),
                None => {
                    let (guard, _) =
                        inner.work_ready.wait_timeout(q, IDLE_POLL).expect("pool queue poisoned");
                    q = guard;
                    q.front().cloned()
                }
            }
        };
        drop(inner);
        if let Some(batch) = next {
            let stolen = help(&batch);
            if stolen > 0 {
                obs::steals().add(stolen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel() {
        let serial = WorkerPool::new(1).map(37, |i| i as u64 + 1);
        for width in [2, 4, 7] {
            assert_eq!(WorkerPool::new(width).map(37, |i| i as u64 + 1), serial);
        }
    }

    #[test]
    fn nested_batches_complete() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        let inner_pool = pool.clone();
        pool.run(5, &|_| {
            let partial: u64 = inner_pool.map(8, |j| j as u64).iter().sum();
            total.fetch_add(partial, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5 * 28);
    }

    #[test]
    fn panic_poisons_batch_not_pool() {
        let pool = WorkerPool::new(3);
        let ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            })
        }));
        let payload = caught.expect_err("panic must propagate to the joiner");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 7 exploded");
        // Every other task still ran: the batch drained despite the poison.
        assert_eq!(ran.load(Ordering::Relaxed), 15);
        // And the pool is not wedged: the next batch completes normally.
        assert_eq!(pool.map(10, |i| i), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_task_batches() {
        let pool = WorkerPool::new(4);
        pool.run(0, &|_| panic!("never called"));
        assert_eq!(pool.map(1, |i| i + 41), vec![41]);
    }
}
