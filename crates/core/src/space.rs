//! Normalized encoding of the RM configuration space.
//!
//! Tempo's Optimizer works on a vector `x ∈ [0,1]^d` (problem (SP1)'s
//! `x ∈ X`); this module maps that vector to and from a concrete
//! [`RmConfig`]. The encoding is **per scheduler backend**: each
//! [`SchedPolicy`] exposes its native knobs, so PALD tunes exactly the
//! parameters the installed policy actually reads. Per tenant:
//!
//! | policy | dims | knobs |
//! |---|---|---|
//! | `FairShare` | 7 | share weight · min share ×2 · max share ×2 · preemption timeouts ×2 |
//! | `Capacity` | 6 | guaranteed capacity ×2 · maximum capacity ×2 · preemption timeouts ×2 |
//! | `Drf` | 2 | share weight · fair-level preemption timeout |
//! | `Fifo` | 2 | max share ×2 |
//!
//! Scalings: weights and timeouts are log-scaled because their effect is
//! multiplicative (going from 1→2 weight matters as much as 4→8); timeouts
//! in the top 2% of the range decode to *disabled*; share knobs are linear
//! in pool capacity, with min/guaranteed encoded as a fraction of the
//! decoded max so every point of the unit box is a valid configuration. The
//! normalized l2 distance `‖x − x'‖/√d` is the metric used for the
//! trust-region proposals of §4 (the DBA's risk budget).

use serde::{Deserialize, Serialize};
use tempo_sim::{ClusterSpec, RmConfig, SchedPolicy, TenantConfig};
use tempo_workload::time::{Time, HOUR, SEC};
use tempo_workload::{TaskKind, NUM_KINDS};

/// The searchable RM configuration space for a fixed tenant count, cluster,
/// and scheduler backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    pub num_tenants: usize,
    /// Pool capacities (bounds for the share knobs).
    pub capacity: [u32; NUM_KINDS],
    /// `(lo, hi)` for share weights; log-scaled.
    pub weight_range: (f64, f64),
    /// `(lo, hi)` for preemption timeouts; log-scaled. An encoded timeout in
    /// the top 2% of the range decodes to *disabled* — so "no preemption" is
    /// reachable by the optimizer rather than a special case.
    pub timeout_range: (Time, Time),
    /// The scheduler backend whose native knobs this space encodes; decoded
    /// configurations carry it as [`RmConfig::policy`].
    pub policy: SchedPolicy,
}

impl ConfigSpace {
    /// A space over the default fair-share backend.
    pub fn new(num_tenants: usize, cluster: &ClusterSpec) -> Self {
        assert!(num_tenants > 0, "need at least one tenant");
        Self {
            num_tenants,
            capacity: [cluster.capacity(TaskKind::Map), cluster.capacity(TaskKind::Reduce)],
            weight_range: (0.1, 10.0),
            timeout_range: (5 * SEC, 2 * HOUR),
            policy: SchedPolicy::FairShare,
        }
    }

    /// Re-targets the space at another backend's native knob set.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Encoded dimensions per tenant under this space's policy.
    pub fn dims_per_tenant(&self) -> usize {
        match self.policy {
            SchedPolicy::FairShare => 7,
            SchedPolicy::Capacity => 6,
            SchedPolicy::Drf => 2,
            SchedPolicy::Fifo => 2,
        }
    }

    /// Total dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.num_tenants * self.dims_per_tenant()
    }

    /// Decodes a normalized vector into a concrete RM configuration (with
    /// [`RmConfig::policy`] set to this space's backend).
    ///
    /// Values outside `[0,1]` are clamped. The min-share knob is encoded as
    /// a *fraction of the decoded max share*, which makes every point of the
    /// unit box decode to a valid configuration (min ≤ max by construction).
    pub fn decode(&self, x: &[f64]) -> RmConfig {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let k = self.dims_per_tenant();
        let mut tenants = Vec::with_capacity(self.num_tenants);
        for t in 0..self.num_tenants {
            let v = &x[t * k..(t + 1) * k];
            tenants.push(match self.policy {
                SchedPolicy::FairShare => {
                    let (min_share, max_share) = self.decode_shares(&v[1..5]);
                    TenantConfig {
                        weight: log_denorm(v[0], self.weight_range.0, self.weight_range.1),
                        min_share,
                        max_share,
                        fair_timeout: self.decode_timeout(v[5]),
                        min_timeout: self.decode_timeout(v[6]),
                    }
                }
                SchedPolicy::Capacity => {
                    // Guaranteed/maximum queue capacity; the backend ignores
                    // the weight field (borrowing is guarantee-proportional).
                    let (min_share, max_share) = self.decode_shares(&v[0..4]);
                    TenantConfig {
                        weight: 1.0,
                        min_share,
                        max_share,
                        fair_timeout: self.decode_timeout(v[4]),
                        min_timeout: self.decode_timeout(v[5]),
                    }
                }
                SchedPolicy::Drf => TenantConfig {
                    // DRF has no min/max queue capacities of its own: caps
                    // stay at the pool size (non-binding), so min-level
                    // starvation can never arm and only the fair-level
                    // timeout is a live knob.
                    weight: log_denorm(v[0], self.weight_range.0, self.weight_range.1),
                    min_share: [0; NUM_KINDS],
                    max_share: [self.capacity[0].max(1), self.capacity[1].max(1)],
                    fair_timeout: self.decode_timeout(v[1]),
                    min_timeout: None,
                },
                SchedPolicy::Fifo => {
                    // The degenerate baseline: only per-pool caps are
                    // tunable; no weights, guarantees, or preemption.
                    let mut max_share = [0u32; NUM_KINDS];
                    for p in 0..NUM_KINDS {
                        max_share[p] = self.decode_max(v[p], p);
                    }
                    TenantConfig {
                        weight: 1.0,
                        min_share: [0; NUM_KINDS],
                        max_share,
                        fair_timeout: None,
                        min_timeout: None,
                    }
                }
            });
        }
        RmConfig::new(tenants).with_policy(self.policy)
    }

    /// Decodes one max-share knob: linear in `[1, pool capacity]`.
    fn decode_max(&self, v: f64, pool: usize) -> u32 {
        let cap = self.capacity[pool].max(1);
        1 + (clamp01(v) * (cap - 1) as f64).round() as u32
    }

    /// Encodes one max-share value (inverse of [`ConfigSpace::decode_max`]).
    fn encode_max(&self, max_share: u32, pool: usize) -> f64 {
        let cap = self.capacity[pool].max(1);
        let max = max_share.min(cap).max(1);
        if cap == 1 {
            1.0
        } else {
            (max - 1) as f64 / (cap - 1) as f64
        }
    }

    /// Decodes the 4-knob share block `[min frac ×2, max ×2]` shared by the
    /// FairShare and Capacity layouts.
    fn decode_shares(&self, v: &[f64]) -> ([u32; NUM_KINDS], [u32; NUM_KINDS]) {
        let mut max_share = [0u32; NUM_KINDS];
        let mut min_share = [0u32; NUM_KINDS];
        for p in 0..NUM_KINDS {
            max_share[p] = self.decode_max(v[2 + p], p);
            min_share[p] = (clamp01(v[p]) * max_share[p] as f64).round() as u32;
        }
        (min_share, max_share)
    }

    /// Encodes a configuration into the normalized vector. Inverse of
    /// [`ConfigSpace::decode`] up to rounding. The configuration's policy
    /// must match the space's.
    pub fn encode(&self, config: &RmConfig) -> Vec<f64> {
        assert_eq!(config.num_tenants(), self.num_tenants, "tenant count mismatch");
        assert_eq!(config.policy, self.policy, "scheduler policy mismatch");
        let mut x = Vec::with_capacity(self.dim());
        for tc in &config.tenants {
            match self.policy {
                SchedPolicy::FairShare => {
                    x.push(log_norm(tc.weight, self.weight_range.0, self.weight_range.1));
                    self.encode_shares(tc, &mut x);
                    x.push(self.encode_timeout(tc.fair_timeout));
                    x.push(self.encode_timeout(tc.min_timeout));
                }
                SchedPolicy::Capacity => {
                    self.encode_shares(tc, &mut x);
                    x.push(self.encode_timeout(tc.fair_timeout));
                    x.push(self.encode_timeout(tc.min_timeout));
                }
                SchedPolicy::Drf => {
                    x.push(log_norm(tc.weight, self.weight_range.0, self.weight_range.1));
                    x.push(self.encode_timeout(tc.fair_timeout));
                }
                SchedPolicy::Fifo => {
                    for p in 0..NUM_KINDS {
                        x.push(self.encode_max(tc.max_share[p], p));
                    }
                }
            }
        }
        x
    }

    /// Encodes the 4-knob share block `[min frac ×2, max ×2]`.
    fn encode_shares(&self, tc: &TenantConfig, x: &mut Vec<f64>) {
        for p in 0..NUM_KINDS {
            let max = tc.max_share[p].min(self.capacity[p]).max(1);
            x.push(clamp01(tc.min_share[p] as f64 / max as f64));
        }
        for p in 0..NUM_KINDS {
            x.push(self.encode_max(tc.max_share[p], p));
        }
    }

    fn decode_timeout(&self, v: f64) -> Option<Time> {
        let v = clamp01(v);
        if v > 0.98 {
            return None; // disabled
        }
        let (lo, hi) = self.timeout_range;
        let t = log_denorm(v / 0.98, lo as f64, hi as f64);
        Some(t.round() as Time)
    }

    fn encode_timeout(&self, t: Option<Time>) -> f64 {
        match t {
            None => 1.0,
            Some(t) => {
                let (lo, hi) = self.timeout_range;
                0.98 * log_norm(t as f64, lo as f64, hi as f64)
            }
        }
    }

    /// Normalized l2 distance `‖a − b‖ / √d ∈ [0, 1]` — the §4 risk metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim());
        assert_eq!(b.len(), self.dim());
        let d: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (d / self.dim() as f64).sqrt()
    }
}

#[inline]
fn clamp01(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(0.0, 1.0)
    }
}

fn log_denorm(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    (lo.ln() + clamp01(v) * (hi.ln() - lo.ln())).exp()
}

fn log_norm(value: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    clamp01((value.clamp(lo, hi).ln() - lo.ln()) / (hi.ln() - lo.ln()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::MIN;

    fn space() -> ConfigSpace {
        ConfigSpace::new(2, &ClusterSpec::new(100, 60))
    }

    #[test]
    fn dim_accounting() {
        assert_eq!(space().dim(), 14);
        assert_eq!(space().with_policy(SchedPolicy::Capacity).dim(), 12);
        assert_eq!(space().with_policy(SchedPolicy::Drf).dim(), 4);
        assert_eq!(space().with_policy(SchedPolicy::Fifo).dim(), 4);
    }

    #[test]
    fn every_policy_decodes_validly_across_the_unit_box() {
        for policy in SchedPolicy::ALL {
            let s = space().with_policy(policy);
            for seed in 0..25u64 {
                let x: Vec<f64> = (0..s.dim())
                    .map(|i| ((seed * 31 + i as u64 * 17) % 101) as f64 / 100.0)
                    .collect();
                let cfg = s.decode(&x);
                assert_eq!(cfg.policy, policy);
                assert!(cfg.validate().is_ok(), "{policy}: invalid decode at seed {seed}: {cfg:?}");
            }
            assert!(s.decode(&vec![0.0; s.dim()]).validate().is_ok(), "{policy}: zero corner");
            assert!(s.decode(&vec![1.0; s.dim()]).validate().is_ok(), "{policy}: one corner");
        }
    }

    #[test]
    fn per_policy_roundtrips() {
        // Capacity: guarantees + caps + timeouts survive the roundtrip.
        let s = space().with_policy(SchedPolicy::Capacity);
        let cfg = RmConfig::new(vec![
            TenantConfig::fair_default()
                .with_min_share(30, 12)
                .with_max_share(80, 40)
                .with_fair_timeout(5 * MIN)
                .with_min_timeout(MIN),
            TenantConfig::fair_default().with_min_share(10, 6).with_max_share(100, 60),
        ])
        .with_policy(SchedPolicy::Capacity);
        let back = s.decode(&s.encode(&cfg));
        assert_eq!(back.policy, SchedPolicy::Capacity);
        for (orig, dec) in cfg.tenants.iter().zip(&back.tenants) {
            assert_eq!(orig.min_share, dec.min_share);
            assert_eq!(orig.max_share, dec.max_share);
        }
        assert!(back.tenants[0].fair_timeout.is_some());
        assert_eq!(back.tenants[1].fair_timeout, None);

        // DRF: the weight and fair-level timeout survive; caps pin to the
        // pool sizes and the (inert) min-level timeout is dropped.
        let s = space().with_policy(SchedPolicy::Drf);
        let cfg = RmConfig::new(vec![
            TenantConfig::fair_default().with_weight(4.0).with_fair_timeout(5 * MIN),
            TenantConfig::fair_default().with_weight(0.5),
        ])
        .with_policy(SchedPolicy::Drf);
        let back = s.decode(&s.encode(&cfg));
        for (orig, dec) in cfg.tenants.iter().zip(&back.tenants) {
            assert!((orig.weight - dec.weight).abs() / orig.weight < 0.02);
            assert_eq!(dec.min_share, [0, 0]);
            assert_eq!(dec.max_share, [100, 60]);
            assert_eq!(dec.min_timeout, None, "min-level preemption can never arm under DRF");
        }
        assert!(back.tenants[0].fair_timeout.is_some());

        // FIFO: only the caps are knobs.
        let s = space().with_policy(SchedPolicy::Fifo);
        let cfg = RmConfig::new(vec![
            TenantConfig::fair_default().with_max_share(70, 25),
            TenantConfig::fair_default(),
        ])
        .with_policy(SchedPolicy::Fifo);
        let back = s.decode(&s.encode(&cfg));
        assert_eq!(back.tenants[0].max_share, [70, 25]);
        assert_eq!(back.tenants[0].fair_timeout, None);
        assert_eq!(back.tenants[0].min_timeout, None);
    }

    #[test]
    #[should_panic(expected = "scheduler policy mismatch")]
    fn encode_rejects_policy_mismatch() {
        let s = space().with_policy(SchedPolicy::Drf);
        let _ = s.encode(&RmConfig::fair(2));
    }

    #[test]
    fn decode_is_always_valid() {
        let s = space();
        // Corners and a few interior points of the unit box all decode to
        // valid configs.
        for seed in 0..50u64 {
            let x: Vec<f64> =
                (0..s.dim()).map(|i| ((seed * 31 + i as u64 * 17) % 101) as f64 / 100.0).collect();
            let cfg = s.decode(&x);
            assert!(cfg.validate().is_ok(), "invalid decode at seed {seed}: {cfg:?}");
        }
        // All-zero and all-one corners.
        assert!(s.decode(&vec![0.0; s.dim()]).validate().is_ok());
        assert!(s.decode(&vec![1.0; s.dim()]).validate().is_ok());
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let s = space();
        let cfg = s.decode(&vec![7.5; s.dim()]);
        assert!(cfg.validate().is_ok());
        let cfg2 = s.decode(&vec![-3.0; s.dim()]);
        assert!(cfg2.validate().is_ok());
        assert!((cfg2.tenants[0].weight - 0.1).abs() < 1e-9, "clamps to weight lo");
    }

    #[test]
    fn roundtrip_through_encode() {
        let s = space();
        let cfg = RmConfig::new(vec![
            TenantConfig::fair_default()
                .with_weight(2.0)
                .with_min_share(20, 10)
                .with_max_share(80, 40)
                .with_fair_timeout(5 * MIN)
                .with_min_timeout(MIN),
            TenantConfig::fair_default().with_max_share(100, 60),
        ]);
        let x = s.encode(&cfg);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = s.decode(&x);
        for (orig, dec) in cfg.tenants.iter().zip(&back.tenants) {
            assert!((orig.weight - dec.weight).abs() / orig.weight < 0.02);
            assert_eq!(orig.min_share, dec.min_share);
            assert_eq!(orig.max_share, dec.max_share);
            match (orig.fair_timeout, dec.fair_timeout) {
                (Some(a), Some(b)) => {
                    assert!((a as f64 - b as f64).abs() / (a as f64) < 0.02, "{a} vs {b}")
                }
                (None, None) => {}
                other => panic!("timeout mismatch {other:?}"),
            }
        }
        // Tenant 1 had no timeouts: encodes to 1.0, decodes to None.
        assert_eq!(back.tenants[1].fair_timeout, None);
        assert_eq!(back.tenants[1].min_timeout, None);
    }

    #[test]
    fn min_share_never_exceeds_max() {
        let s = space();
        // min knob at 1.0 with a small max knob.
        let mut x = vec![0.5; s.dim()];
        x[1] = 1.0; // min map fraction
        x[3] = 0.0; // max map at its floor (1)
        let cfg = s.decode(&x);
        assert!(cfg.tenants[0].min_share[0] <= cfg.tenants[0].max_share[0]);
        assert_eq!(cfg.tenants[0].max_share[0], 1);
    }

    #[test]
    fn weight_is_log_scaled() {
        let s = space();
        let mut lo = vec![0.5; s.dim()];
        lo[0] = 0.0;
        let mut mid = lo.clone();
        mid[0] = 0.5;
        let mut hi = lo.clone();
        hi[0] = 1.0;
        let w_lo = s.decode(&lo).tenants[0].weight;
        let w_mid = s.decode(&mid).tenants[0].weight;
        let w_hi = s.decode(&hi).tenants[0].weight;
        assert!((w_lo - 0.1).abs() < 1e-9);
        assert!((w_hi - 10.0).abs() < 1e-9);
        assert!((w_mid - 1.0).abs() < 1e-9, "log midpoint of 0.1..10 is 1: {w_mid}");
    }

    #[test]
    fn distance_is_normalized() {
        let s = space();
        let a = vec![0.0; s.dim()];
        let b = vec![1.0; s.dim()];
        assert!((s.distance(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(s.distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn decode_rejects_wrong_dim() {
        let _ = space().decode(&[0.5; 3]);
    }
}
