//! Normalized encoding of the RM configuration space.
//!
//! Tempo's Optimizer works on a vector `x ∈ [0,1]^d` (problem (SP1)'s
//! `x ∈ X`); this module maps that vector to and from a concrete
//! [`RmConfig`]. Per tenant, seven knobs are encoded:
//!
//! | dims | knob | scaling |
//! |---|---|---|
//! | 1 | share weight | log-scale over `weight_range` |
//! | 2 | min share (map, reduce) | linear in `[0, pool capacity]` |
//! | 2 | max share (map, reduce) | linear in `[1, pool capacity]` |
//! | 2 | preemption timeouts (fair, min) | log-scale over `timeout_range`; the top of the range disables preemption |
//!
//! Weights and timeouts are log-scaled because their effect is
//! multiplicative: going from 1→2 weight matters as much as 4→8. The
//! normalized l2 distance `‖x − x'‖/√d` is the metric used for the
//! trust-region proposals of §4 (the DBA's risk budget).

use serde::{Deserialize, Serialize};
use tempo_sim::{ClusterSpec, RmConfig, TenantConfig};
use tempo_workload::time::{Time, HOUR, SEC};
use tempo_workload::{TaskKind, NUM_KINDS};

/// Number of encoded dimensions per tenant.
pub const DIMS_PER_TENANT: usize = 7;

/// The searchable RM configuration space for a fixed tenant count and
/// cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    pub num_tenants: usize,
    /// Pool capacities (bounds for the share knobs).
    pub capacity: [u32; NUM_KINDS],
    /// `(lo, hi)` for share weights; log-scaled.
    pub weight_range: (f64, f64),
    /// `(lo, hi)` for preemption timeouts; log-scaled. An encoded timeout in
    /// the top 2% of the range decodes to *disabled* — so "no preemption" is
    /// reachable by the optimizer rather than a special case.
    pub timeout_range: (Time, Time),
}

impl ConfigSpace {
    pub fn new(num_tenants: usize, cluster: &ClusterSpec) -> Self {
        assert!(num_tenants > 0, "need at least one tenant");
        Self {
            num_tenants,
            capacity: [cluster.capacity(TaskKind::Map), cluster.capacity(TaskKind::Reduce)],
            weight_range: (0.1, 10.0),
            timeout_range: (5 * SEC, 2 * HOUR),
        }
    }

    /// Total dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.num_tenants * DIMS_PER_TENANT
    }

    /// Decodes a normalized vector into a concrete RM configuration.
    ///
    /// Values outside `[0,1]` are clamped. The min-share knob is encoded as
    /// a *fraction of the decoded max share*, which makes every point of the
    /// unit box decode to a valid configuration (min ≤ max by construction).
    pub fn decode(&self, x: &[f64]) -> RmConfig {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mut tenants = Vec::with_capacity(self.num_tenants);
        for t in 0..self.num_tenants {
            let v = &x[t * DIMS_PER_TENANT..(t + 1) * DIMS_PER_TENANT];
            let weight = log_denorm(v[0], self.weight_range.0, self.weight_range.1);
            let mut max_share = [0u32; NUM_KINDS];
            let mut min_share = [0u32; NUM_KINDS];
            for p in 0..NUM_KINDS {
                let cap = self.capacity[p].max(1);
                max_share[p] = 1 + (clamp01(v[3 + p]) * (cap - 1) as f64).round() as u32;
                min_share[p] = (clamp01(v[1 + p]) * max_share[p] as f64).round() as u32;
            }
            let fair_timeout = self.decode_timeout(v[5]);
            let min_timeout = self.decode_timeout(v[6]);
            tenants.push(TenantConfig { weight, min_share, max_share, fair_timeout, min_timeout });
        }
        RmConfig::new(tenants)
    }

    /// Encodes a configuration into the normalized vector. Inverse of
    /// [`ConfigSpace::decode`] up to rounding.
    pub fn encode(&self, config: &RmConfig) -> Vec<f64> {
        assert_eq!(config.num_tenants(), self.num_tenants, "tenant count mismatch");
        let mut x = Vec::with_capacity(self.dim());
        for tc in &config.tenants {
            x.push(log_norm(tc.weight, self.weight_range.0, self.weight_range.1));
            for p in 0..NUM_KINDS {
                let max = tc.max_share[p].min(self.capacity[p]).max(1);
                x.push(clamp01(tc.min_share[p] as f64 / max as f64));
            }
            for p in 0..NUM_KINDS {
                let cap = self.capacity[p].max(1);
                let max = tc.max_share[p].min(cap).max(1);
                x.push(if cap == 1 { 1.0 } else { (max - 1) as f64 / (cap - 1) as f64 });
            }
            x.push(self.encode_timeout(tc.fair_timeout));
            x.push(self.encode_timeout(tc.min_timeout));
        }
        x
    }

    fn decode_timeout(&self, v: f64) -> Option<Time> {
        let v = clamp01(v);
        if v > 0.98 {
            return None; // disabled
        }
        let (lo, hi) = self.timeout_range;
        let t = log_denorm(v / 0.98, lo as f64, hi as f64);
        Some(t.round() as Time)
    }

    fn encode_timeout(&self, t: Option<Time>) -> f64 {
        match t {
            None => 1.0,
            Some(t) => {
                let (lo, hi) = self.timeout_range;
                0.98 * log_norm(t as f64, lo as f64, hi as f64)
            }
        }
    }

    /// Normalized l2 distance `‖a − b‖ / √d ∈ [0, 1]` — the §4 risk metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.dim());
        assert_eq!(b.len(), self.dim());
        let d: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (d / self.dim() as f64).sqrt()
    }
}

#[inline]
fn clamp01(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(0.0, 1.0)
    }
}

fn log_denorm(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    (lo.ln() + clamp01(v) * (hi.ln() - lo.ln())).exp()
}

fn log_norm(value: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo);
    clamp01((value.clamp(lo, hi).ln() - lo.ln()) / (hi.ln() - lo.ln()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::time::MIN;

    fn space() -> ConfigSpace {
        ConfigSpace::new(2, &ClusterSpec::new(100, 60))
    }

    #[test]
    fn dim_accounting() {
        assert_eq!(space().dim(), 14);
    }

    #[test]
    fn decode_is_always_valid() {
        let s = space();
        // Corners and a few interior points of the unit box all decode to
        // valid configs.
        for seed in 0..50u64 {
            let x: Vec<f64> =
                (0..s.dim()).map(|i| ((seed * 31 + i as u64 * 17) % 101) as f64 / 100.0).collect();
            let cfg = s.decode(&x);
            assert!(cfg.validate().is_ok(), "invalid decode at seed {seed}: {cfg:?}");
        }
        // All-zero and all-one corners.
        assert!(s.decode(&vec![0.0; s.dim()]).validate().is_ok());
        assert!(s.decode(&vec![1.0; s.dim()]).validate().is_ok());
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let s = space();
        let cfg = s.decode(&vec![7.5; s.dim()]);
        assert!(cfg.validate().is_ok());
        let cfg2 = s.decode(&vec![-3.0; s.dim()]);
        assert!(cfg2.validate().is_ok());
        assert!((cfg2.tenants[0].weight - 0.1).abs() < 1e-9, "clamps to weight lo");
    }

    #[test]
    fn roundtrip_through_encode() {
        let s = space();
        let cfg = RmConfig::new(vec![
            TenantConfig::fair_default()
                .with_weight(2.0)
                .with_min_share(20, 10)
                .with_max_share(80, 40)
                .with_fair_timeout(5 * MIN)
                .with_min_timeout(MIN),
            TenantConfig::fair_default().with_max_share(100, 60),
        ]);
        let x = s.encode(&cfg);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let back = s.decode(&x);
        for (orig, dec) in cfg.tenants.iter().zip(&back.tenants) {
            assert!((orig.weight - dec.weight).abs() / orig.weight < 0.02);
            assert_eq!(orig.min_share, dec.min_share);
            assert_eq!(orig.max_share, dec.max_share);
            match (orig.fair_timeout, dec.fair_timeout) {
                (Some(a), Some(b)) => {
                    assert!((a as f64 - b as f64).abs() / (a as f64) < 0.02, "{a} vs {b}")
                }
                (None, None) => {}
                other => panic!("timeout mismatch {other:?}"),
            }
        }
        // Tenant 1 had no timeouts: encodes to 1.0, decodes to None.
        assert_eq!(back.tenants[1].fair_timeout, None);
        assert_eq!(back.tenants[1].min_timeout, None);
    }

    #[test]
    fn min_share_never_exceeds_max() {
        let s = space();
        // min knob at 1.0 with a small max knob.
        let mut x = vec![0.5; s.dim()];
        x[1] = 1.0; // min map fraction
        x[3] = 0.0; // max map at its floor (1)
        let cfg = s.decode(&x);
        assert!(cfg.tenants[0].min_share[0] <= cfg.tenants[0].max_share[0]);
        assert_eq!(cfg.tenants[0].max_share[0], 1);
    }

    #[test]
    fn weight_is_log_scaled() {
        let s = space();
        let mut lo = vec![0.5; s.dim()];
        lo[0] = 0.0;
        let mut mid = lo.clone();
        mid[0] = 0.5;
        let mut hi = lo.clone();
        hi[0] = 1.0;
        let w_lo = s.decode(&lo).tenants[0].weight;
        let w_mid = s.decode(&mid).tenants[0].weight;
        let w_hi = s.decode(&hi).tenants[0].weight;
        assert!((w_lo - 0.1).abs() < 1e-9);
        assert!((w_hi - 10.0).abs() < 1e-9);
        assert!((w_mid - 1.0).abs() < 1e-9, "log midpoint of 0.1..10 is 1: {w_mid}");
    }

    #[test]
    fn distance_is_normalized() {
        let s = space();
        let a = vec![0.0; s.dim()];
        let b = vec![1.0; s.dim()];
        assert!((s.distance(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(s.distance(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn decode_rejects_wrong_dim() {
        let _ = space().decode(&[0.5; 3]);
    }
}
