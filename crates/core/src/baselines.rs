//! Baseline optimizers for PALD's ablation studies (§6.3, §9).
//!
//! The paper positions PALD against three families: weighted-sum
//! scalarization (fails the constraint semantics — the §6.3 counterexample),
//! evolutionary/random search (noise-sensitive, evaluation-hungry), and
//! plain greedy candidate selection. Implementations here share PALD's
//! probing budget so comparisons are apples-to-apples in evaluations used.

use crate::pald::QsObjective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_solver::loess::loess_jacobian;
use tempo_solver::project::project_box_ball;

/// A single-step optimizer interface shared by PALD and the baselines: given
/// the current point and constraint bounds, propose the next point.
pub trait Optimizer {
    fn propose<O: QsObjective + ?Sized>(&mut self, objective: &O, x: &[f64], r: &[f64])
        -> Vec<f64>;
    fn name(&self) -> &'static str;
}

impl Optimizer for crate::pald::Pald {
    fn propose<O: QsObjective + ?Sized>(
        &mut self,
        objective: &O,
        x: &[f64],
        r: &[f64],
    ) -> Vec<f64> {
        self.step(objective, x, r).x_new
    }
    fn name(&self) -> &'static str {
        "pald"
    }
}

/// Weighted-sum scalarization: descend `Σ w_i f_i` with fixed weights,
/// ignoring the `r_i` constraints entirely. This is the §6.3 strawman: with
/// QS vectors (5,5) and (0,7) against r=(6,6), equal weights pick (0,7) and
/// violate the second constraint.
pub struct WeightedSum {
    pub weights: Vec<f64>,
    pub trust_radius: f64,
    pub probes: usize,
    pub step_frac: f64,
    history_x: Vec<Vec<f64>>,
    history_f: Vec<Vec<f64>>,
    rng: StdRng,
    samples: u64,
}

impl WeightedSum {
    pub fn new(weights: Vec<f64>, trust_radius: f64, probes: usize, seed: u64) -> Self {
        assert!(!weights.is_empty() && weights.iter().all(|&w| w >= 0.0), "bad weights");
        Self {
            weights,
            trust_radius,
            probes,
            step_frac: 0.6,
            history_x: Vec::new(),
            history_f: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            samples: 0,
        }
    }

    fn probe(&mut self, x: &[f64], radius: f64) -> Vec<f64> {
        let d = x.len();
        let mut p: Vec<f64> = x
            .iter()
            .map(|&xi| xi + radius * (self.rng.gen::<f64>() * 2.0 - 1.0) / (d as f64).sqrt())
            .collect();
        project_box_ball(&mut p, 0.0, 1.0, x, radius);
        p
    }
}

impl Optimizer for WeightedSum {
    fn propose<O: QsObjective + ?Sized>(
        &mut self,
        objective: &O,
        x: &[f64],
        _r: &[f64],
    ) -> Vec<f64> {
        let dim = objective.dim();
        let radius = self.trust_radius * (dim as f64).sqrt();
        let bandwidth = 2.5 * radius;
        let mut pts = vec![x.to_vec()];
        for _ in 0..self.probes {
            pts.push(self.probe(x, radius));
        }
        let near = self
            .history_x
            .iter()
            .filter(|hx| tempo_solver::norm(&tempo_solver::linalg::sub(hx, x)) < bandwidth)
            .count();
        for _ in 0..(dim + 2).saturating_sub(near + pts.len()) {
            pts.push(self.probe(x, radius));
        }
        for p in pts {
            let s = self.samples;
            self.samples += 1;
            let f = objective.eval(&p, s);
            self.history_x.push(p);
            self.history_f.push(f);
        }
        let Some((jac, _)) = loess_jacobian(&self.history_x, &self.history_f, x, bandwidth) else {
            return x.to_vec();
        };
        let grad = jac.matvec_t(&self.weights);
        let gnorm = tempo_solver::norm(&grad);
        let mut x_new = x.to_vec();
        if gnorm > 1e-12 {
            let step = self.step_frac * radius / gnorm;
            for (xi, gi) in x_new.iter_mut().zip(&grad) {
                *xi -= step * gi;
            }
            project_box_ball(&mut x_new, 0.0, 1.0, x, radius);
        }
        x_new
    }

    fn name(&self) -> &'static str {
        "weighted-sum"
    }
}

/// Random search with greedy acceptance on the scalarized objective —
/// the simplest noise-exposed baseline.
pub struct RandomSearch {
    pub trust_radius: f64,
    pub probes: usize,
    rng: StdRng,
    samples: u64,
}

impl RandomSearch {
    pub fn new(trust_radius: f64, probes: usize, seed: u64) -> Self {
        Self { trust_radius, probes, rng: StdRng::seed_from_u64(seed), samples: 0 }
    }
}

impl Optimizer for RandomSearch {
    fn propose<O: QsObjective + ?Sized>(
        &mut self,
        objective: &O,
        x: &[f64],
        r: &[f64],
    ) -> Vec<f64> {
        let dim = objective.dim();
        let radius = self.trust_radius * (dim as f64).sqrt();
        // Scalarization that at least knows about constraints: violations
        // are penalized heavily.
        let score = |f: &[f64]| -> f64 {
            f.iter()
                .zip(r)
                .map(|(fi, ri)| if ri.is_finite() && fi > ri { fi + 10.0 * (fi - ri) } else { *fi })
                .sum()
        };
        let s0 = self.samples;
        self.samples += 1;
        let mut best = x.to_vec();
        let mut best_score = score(&objective.eval(x, s0));
        for _ in 0..self.probes {
            let mut p: Vec<f64> = x
                .iter()
                .map(|&xi| xi + radius * (self.rng.gen::<f64>() * 2.0 - 1.0) / (dim as f64).sqrt())
                .collect();
            project_box_ball(&mut p, 0.0, 1.0, x, radius);
            let s = self.samples;
            self.samples += 1;
            let sc = score(&objective.eval(&p, s));
            if sc < best_score {
                best_score = sc;
                best = p;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "random-search"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pald::{Pald, PaldConfig};

    /// f1 = ‖x − a‖², f2 = ‖x − b‖² — the shared toy problem.
    fn toy() -> impl QsObjective {
        (2usize, 2usize, |x: &[f64], _s: u64| {
            let d2 = |p: [f64; 2]| (x[0] - p[0]).powi(2) + (x[1] - p[1]).powi(2);
            vec![d2([0.2, 0.2]), d2([0.8, 0.8])]
        })
    }

    fn drive<Opt: Optimizer>(opt: &mut Opt, iters: usize) -> Vec<f64> {
        let obj = toy();
        let mut x = vec![0.95, 0.05];
        for _ in 0..iters {
            x = opt.propose(&obj, &x, &[10.0, 10.0]);
        }
        x
    }

    #[test]
    fn weighted_sum_descends_the_scalarization() {
        let mut ws = WeightedSum::new(vec![0.5, 0.5], 0.15, 6, 1);
        let x = drive(&mut ws, 20);
        let obj = toy();
        let f = obj.eval(&x, 0);
        // Scalarized optimum is the midpoint (0.5, 0.5) with Σf = 0.36.
        assert!(f[0] + f[1] < 0.55, "Σf = {}", f[0] + f[1]);
    }

    #[test]
    fn random_search_improves_somewhat() {
        let mut rs = RandomSearch::new(0.15, 6, 2);
        let obj = toy();
        let start = obj.eval(&[0.95, 0.05], 0);
        let x = drive(&mut rs, 20);
        let end = obj.eval(&x, 0);
        assert!(
            end.iter().sum::<f64>() < start.iter().sum::<f64>(),
            "random search should not regress on a smooth problem"
        );
    }

    #[test]
    fn scalarization_counterexample_from_section_6_3() {
        // Two configurations with QS vectors (5,5) and (0,7); r = (6,6).
        // Weighted sum prefers (0,7) — violating constraint 2 — while the
        // constraint-aware score prefers (5,5).
        let weighted = |f: &[f64]| 0.5 * f[0] + 0.5 * f[1];
        assert!(weighted(&[0.0, 7.0]) < weighted(&[5.0, 5.0]), "weighted sum picks the violator");
        let r = [6.0, 6.0];
        let penalized = |f: &[f64]| -> f64 {
            f.iter().zip(&r).map(|(fi, ri)| if fi > ri { fi + 10.0 * (fi - ri) } else { *fi }).sum()
        };
        assert!(penalized(&[5.0, 5.0]) < penalized(&[0.0, 7.0]), "constraint-aware pick");
    }

    #[test]
    fn optimizer_trait_is_object_usable_via_generics() {
        // All three optimizers run through the same driver.
        let mut pald =
            Pald::new(PaldConfig { trust_radius: 0.15, probes: 5, seed: 3, ..Default::default() });
        let x_pald = drive(&mut pald, 10);
        assert!(x_pald.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(pald.name(), "pald");
        assert_eq!(WeightedSum::new(vec![1.0], 0.1, 3, 0).name(), "weighted-sum");
        assert_eq!(RandomSearch::new(0.1, 3, 0).name(), "random-search");
    }
}
