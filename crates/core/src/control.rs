//! Tempo's control loop (§4, Figure 3).
//!
//! Each iteration executes the eight steps of the architecture diagram:
//!
//! 1. extract the recent task schedule and evaluate the observed QS metrics
//!    under the current RM configuration;
//! 2. through 7. drive the Optimizer (PALD) over the What-if Model —
//!    replaying the recent job traces through the Schedule Predictor to
//!    explore candidate configurations;
//! 8. install a new RM configuration, bounded by the trust-region distance.
//!
//! **Robustness guard**: "the Tempo control loop will revert the RM
//! configuration x′ back to x if the currently observed QS metrics do not
//! dominate the previously observed ones" — implemented with a configurable
//! [`RevertPolicy`], since the literal rule is noise-hostile and the
//! softened variant (revert only when measurably *worse*) is what survives
//! production noise. The ablation bench compares the policies.

use crate::pald::{Pald, PaldConfig, PaldSnapshot, QsObjective};
use crate::space::ConfigSpace;
use crate::whatif::WhatIfModel;
use serde::{Deserialize, Serialize};
use tempo_sim::{RmConfig, Schedule};

/// When to undo the previous configuration change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RevertPolicy {
    /// Never revert (ablation baseline).
    Off,
    /// Revert unless the new observation dominates the previous one — the
    /// paper's literal wording. Aggressive under noise.
    Strict,
    /// Revert when the previous observation dominates the new one (the new
    /// config made things strictly worse somewhere and better nowhere,
    /// within tolerance). Default.
    Dominated,
}

/// Does `a` Pareto-dominate `b`? (`a_i ≤ b_i + tol` everywhere and
/// `a_j < b_j − tol` somewhere.)
pub fn dominates(a: &[f64], b: &[f64], tol: f64) -> bool {
    assert_eq!(a.len(), b.len(), "QS vector arity mismatch");
    let mut strictly = false;
    for (ai, bi) in a.iter().zip(b) {
        if *ai > bi + tol {
            return false;
        }
        if *ai < bi - tol {
            strictly = true;
        }
    }
    strictly
}

/// Control-loop settings.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopConfig {
    pub pald: PaldConfig,
    pub revert: RevertPolicy,
    /// Domination tolerance as a fraction of each metric's magnitude.
    pub revert_tol: f64,
    /// Ratchet best-effort SLOs: use the best QS value attained so far as
    /// the next iteration's bound `r_i` (§6.1).
    pub ratchet: bool,
    /// Clear the What-if memo cache after this many [`Tempo::set_workload`]
    /// window swaps (`None` = never). Entries from different windows coexist
    /// in the cache (the key carries the workload context), which is what
    /// makes revisited windows cheap — but a daemon that re-tunes every few
    /// minutes for weeks accumulates contexts it will never revisit. Pair
    /// with [`WhatIfModel::set_cache_capacity`] for an entry-level LRU bound.
    pub clear_cache_windows: Option<u32>,
}

impl Default for LoopConfig {
    fn default() -> Self {
        Self {
            pald: PaldConfig::default(),
            revert: RevertPolicy::Dominated,
            revert_tol: 0.02,
            ratchet: true,
            clear_cache_windows: None,
        }
    }
}

/// What one control-loop iteration did.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    pub iteration: usize,
    /// Configuration the observation was taken under.
    pub config: RmConfig,
    /// Observed (priority-weighted) QS vector.
    pub observed_qs: Vec<f64>,
    /// Constraint bounds `r` used for this iteration's optimization.
    pub r: Vec<f64>,
    /// Whether the previous change was rolled back this iteration.
    pub reverted: bool,
}

/// The Tempo controller: owns the optimizer state and the current RM
/// configuration; the caller owns the cluster (real or simulated) and feeds
/// observations in.
pub struct Tempo {
    pub space: ConfigSpace,
    pub whatif: WhatIfModel,
    config: LoopConfig,
    pald: Pald,
    x: Vec<f64>,
    prev: Option<(Vec<f64>, Vec<f64>)>, // (x before last change, its observed QS)
    r: Vec<f64>,
    iteration: usize,
    /// Window swaps since the memo cache was last cleared (the
    /// [`LoopConfig::clear_cache_windows`] counter).
    windows_since_clear: u32,
}

/// Resumable controller state — everything [`Tempo`] mutates across
/// iterations, detached from the (re-constructible) space/What-if wiring.
///
/// Restoring into a controller built with the same `space`, `whatif`
/// context, and `config` ([`Tempo::restore_state`]) continues bit-identically
/// to the never-snapshotted run; pair with [`WhatIfModel::export_cache`] to
/// also resume with a warm memo cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TempoSnapshot {
    /// Current normalized configuration vector.
    pub x: Vec<f64>,
    /// `(x before last change, its observed QS)` for the revert guard.
    pub prev: Option<(Vec<f64>, Vec<f64>)>,
    /// Current constraint bounds (including ratchet progress).
    pub r: Vec<f64>,
    pub iteration: u64,
    pub windows_since_clear: u32,
    pub pald: PaldSnapshot,
}

/// Adapter exposing the What-if Model to PALD as a vector objective over
/// normalized configuration vectors.
///
/// Probe batches are evaluated in parallel: each point decodes to an
/// `RmConfig` and the whole batch goes through
/// [`WhatIfModel::evaluate_batch_salted`], which fans the simulations out
/// across [`WhatIfModel::batch_threads`] workers while preserving the serial
/// path's per-point sample ids — so trajectories are bit-identical under any
/// thread count.
pub struct WhatIfObjective<'a> {
    space: &'a ConfigSpace,
    whatif: &'a WhatIfModel,
}

impl<'a> WhatIfObjective<'a> {
    pub fn new(space: &'a ConfigSpace, whatif: &'a WhatIfModel) -> Self {
        Self { space, whatif }
    }
}

impl QsObjective for WhatIfObjective<'_> {
    fn dim(&self) -> usize {
        self.space.dim()
    }
    fn k(&self) -> usize {
        self.whatif.k()
    }
    fn eval(&self, x: &[f64], sample: u64) -> Vec<f64> {
        self.whatif.evaluate_salted(&self.space.decode(x), sample)
    }
    fn eval_batch(&self, points: &[Vec<f64>], first_sample: u64) -> Vec<Vec<f64>> {
        let configs: Vec<_> = points.iter().map(|x| self.space.decode(x)).collect();
        self.whatif.evaluate_batch_salted(&configs, first_sample)
    }
}

impl Tempo {
    /// Creates a controller starting from `initial` (e.g. the expert
    /// configuration). `whatif.slos` defines the QS vector; SLOs without
    /// thresholds start with `r_i = +∞` and are ratcheted from observations.
    pub fn new(
        space: ConfigSpace,
        whatif: WhatIfModel,
        config: LoopConfig,
        initial: &RmConfig,
    ) -> Self {
        let x = space.encode(initial);
        let r = whatif.slos.thresholds().iter().map(|t| t.unwrap_or(f64::INFINITY)).collect();
        let pald = Pald::new(config.pald.clone());
        Self { space, whatif, config, pald, x, prev: None, r, iteration: 0, windows_since_clear: 0 }
    }

    /// Captures the controller's resumable state (see [`TempoSnapshot`]).
    pub fn snapshot(&self) -> TempoSnapshot {
        TempoSnapshot {
            x: self.x.clone(),
            prev: self.prev.clone(),
            r: self.r.clone(),
            iteration: self.iteration as u64,
            windows_since_clear: self.windows_since_clear,
            pald: self.pald.snapshot(),
        }
    }

    /// Restores state captured by [`Tempo::snapshot`]. The controller must
    /// have been built with the same `space`, What-if context, and
    /// [`LoopConfig`] as the snapshotted one; subsequent
    /// [`Tempo::iterate`] calls are then bit-identical to a
    /// never-snapshotted controller fed the same observations.
    pub fn restore_state(&mut self, snapshot: TempoSnapshot) {
        assert_eq!(snapshot.x.len(), self.space.dim(), "snapshot dimension mismatch");
        assert_eq!(snapshot.r.len(), self.whatif.k(), "snapshot QS arity mismatch");
        self.x = snapshot.x;
        self.prev = snapshot.prev;
        self.r = snapshot.r;
        self.iteration = snapshot.iteration as usize;
        self.windows_since_clear = snapshot.windows_since_clear;
        self.pald = Pald::restore(self.config.pald.clone(), snapshot.pald);
    }

    /// The PALD optimizer driving this controller (read-only: trajectory
    /// diagnostics and the serve/direct parity suite).
    pub fn pald(&self) -> &Pald {
        &self.pald
    }

    /// Control-loop iterations run so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// The configuration the cluster should currently run.
    pub fn current_config(&self) -> RmConfig {
        self.space.decode(&self.x)
    }

    /// Current normalized configuration vector.
    pub fn current_x(&self) -> &[f64] {
        &self.x
    }

    /// Current constraint bounds.
    pub fn current_r(&self) -> &[f64] {
        &self.r
    }

    /// Runs one control-loop iteration given the schedule observed on the
    /// (real or stand-in) cluster since the last iteration, and installs the
    /// next configuration.
    pub fn iterate(&mut self, observed: &Schedule) -> IterationRecord {
        tempo_obs::counter!("tempo_pald_iterations_total", "PALD control-loop iterations executed")
            .inc();
        let (w0, w1) = self.whatif.window;
        let observed_qs = self.whatif.slos.evaluate(observed, w0, w1);
        let under_config = self.current_config();
        let iteration = self.iteration;
        self.iteration += 1;

        // Step 1 guard: revert if the last change regressed.
        let mut reverted = false;
        if let Some((prev_x, prev_qs)) = self.prev.take() {
            let scale: f64 = prev_qs.iter().map(|v| v.abs()).fold(1e-9, f64::max);
            let tol = self.config.revert_tol * scale;
            let undo = match self.config.revert {
                RevertPolicy::Off => false,
                RevertPolicy::Strict => !dominates(&observed_qs, &prev_qs, tol),
                RevertPolicy::Dominated => dominates(&prev_qs, &observed_qs, tol),
            };
            if undo {
                self.x = prev_x;
                reverted = true;
            }
        }

        // Feed the live observation into the gradient history.
        self.pald.record(self.space.encode(&under_config), observed_qs.clone());

        // Ratchet best-effort bounds (threshold-less SLOs) to the best
        // observation so far: "use the QS value attained ... as the r_i for
        // the next iteration" (§6.1).
        if self.config.ratchet {
            for (i, t) in self.whatif.slos.thresholds().iter().enumerate() {
                if t.is_none() {
                    let candidate = observed_qs[i];
                    if candidate.is_finite() {
                        self.r[i] = if self.r[i].is_finite() {
                            self.r[i].min(candidate)
                        } else {
                            candidate
                        };
                    }
                }
            }
        }

        // Steps 2–8: optimize over the What-if Model and install the result.
        let base_x = self.x.clone();
        let objective = WhatIfObjective::new(&self.space, &self.whatif);
        let step = self.pald.step(&objective, &base_x, &self.r);
        self.prev = Some((base_x, observed_qs.clone()));
        self.x = step.x_new;

        IterationRecord {
            iteration,
            config: under_config,
            observed_qs,
            r: self.r.clone(),
            reverted,
        }
    }

    /// Swaps the workload window the What-if Model optimizes over — the
    /// adaptivity mechanism of §8.2.3 (each iteration uses a fixed-length
    /// interval of the most recent job traces).
    ///
    /// Two kinds of accumulated state are treated differently:
    ///
    /// * the **optimizer's evaluation history** is cleared — QS values
    ///   measured against the old window are evaluations of a *different*
    ///   objective and would poison the LOESS fit;
    /// * the **What-if memo cache survives** — its key hashes the
    ///   workload/window context, so old-window entries can never answer for
    ///   the new window, and revisiting a window (or re-installing a
    ///   content-identical trace) re-hits its entries without re-simulating.
    ///
    /// Unbounded context accumulation is capped by
    /// [`LoopConfig::clear_cache_windows`]: after that many swaps the cache
    /// is dropped wholesale (long-running daemons also bound entries with
    /// [`WhatIfModel::set_cache_capacity`]).
    pub fn set_workload(
        &mut self,
        source: crate::whatif::WorkloadSource,
        window: (tempo_workload::Time, tempo_workload::Time),
    ) {
        self.whatif.set_source_window(source, window);
        self.pald.clear_history();
        self.prev = None;
        self.windows_since_clear += 1;
        if let Some(n) = self.config.clear_cache_windows {
            if self.windows_since_clear >= n.max(1) {
                self.whatif.clear_cache();
                self.windows_since_clear = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whatif::WorkloadSource;
    use tempo_qs::{QsKind, SloSet, SloSpec};
    use tempo_sim::{observe, ClusterSpec, NoiseModel, TenantConfig};
    use tempo_workload::time::{MIN, SEC};
    use tempo_workload::trace::{JobSpec, TaskSpec, Trace};

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0], 0.0));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0], 0.0), "equal vectors don't dominate");
        assert!(!dominates(&[1.0, 3.0], &[2.0, 1.0], 0.0), "trade-off isn't dominance");
        assert!(dominates(&[1.0, 1.0], &[1.01, 1.5], 0.05), "tolerance absorbs ties");
    }

    fn contention_trace() -> Trace {
        // Deadline tenant bursts every 2 minutes; best-effort stream fills
        // the rest. Tight cluster so the config matters.
        let mut jobs = Vec::new();
        let mut id = 0;
        for burst in 0..5u64 {
            for j in 0..2u64 {
                jobs.push(
                    JobSpec::new(
                        id,
                        0,
                        burst * 2 * MIN + j * SEC,
                        vec![
                            TaskSpec::map(20 * SEC),
                            TaskSpec::map(20 * SEC),
                            TaskSpec::reduce(40 * SEC),
                        ],
                    )
                    .with_deadline(burst * 2 * MIN + 2 * MIN),
                );
                id += 1;
            }
        }
        for i in 0..40u64 {
            jobs.push(JobSpec::new(
                id,
                1,
                i * 15 * SEC,
                vec![TaskSpec::map(30 * SEC), TaskSpec::reduce(60 * SEC)],
            ));
            id += 1;
        }
        let mut t = Trace::new(jobs);
        t.sort_by_submit();
        t
    }

    fn slos() -> SloSet {
        SloSet::new(vec![
            SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.0),
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
        ])
    }

    fn bad_initial() -> RmConfig {
        // Pathological: best-effort tenant hard-capped, deadline tenant has
        // aggressive preemption.
        RmConfig::new(vec![
            TenantConfig::fair_default()
                .with_weight(4.0)
                .with_min_timeout(10 * SEC)
                .with_min_share(4, 2),
            TenantConfig::fair_default().with_max_share(2, 1),
        ])
    }

    fn make_tempo(revert: RevertPolicy, seed: u64) -> Tempo {
        let cluster = ClusterSpec::new(8, 4);
        let trace = contention_trace();
        let window = (0, 12 * MIN);
        let whatif = WhatIfModel::new(cluster, slos(), WorkloadSource::replay(trace), window);
        let space = ConfigSpace::new(2, &ClusterSpec::new(8, 4));
        let cfg = LoopConfig {
            pald: PaldConfig { probes: 4, trust_radius: 0.2, seed, ..Default::default() },
            revert,
            ..Default::default()
        };
        Tempo::new(space, whatif, cfg, &bad_initial())
    }

    fn observe_current(t: &Tempo, seed: u64) -> Schedule {
        observe(
            &contention_trace(),
            &ClusterSpec::new(8, 4),
            &t.current_config(),
            NoiseModel { duration_sigma: 0.05, task_failure_prob: 0.0, job_kill_prob: 0.0 },
            seed,
        )
    }

    #[test]
    fn loop_improves_best_effort_latency() {
        let mut tempo = make_tempo(RevertPolicy::Dominated, 11);
        let mut records = Vec::new();
        for i in 0..8 {
            let sched = observe_current(&tempo, 100 + i);
            records.push(tempo.iterate(&sched));
        }
        let first_ajr = records[0].observed_qs[1];
        let best_ajr = records.iter().map(|r| r.observed_qs[1]).fold(f64::INFINITY, f64::min);
        assert!(
            best_ajr < 0.9 * first_ajr,
            "loop should find a better config: first {first_ajr}, best {best_ajr}"
        );
    }

    #[test]
    fn ratchet_tightens_best_effort_bound() {
        let mut tempo = make_tempo(RevertPolicy::Dominated, 12);
        assert!(tempo.current_r()[1].is_infinite(), "best-effort starts unbounded");
        let sched = observe_current(&tempo, 1);
        tempo.iterate(&sched);
        let r1 = tempo.current_r()[1];
        assert!(r1.is_finite(), "ratchet captured an observation");
        for i in 0..3 {
            let sched = observe_current(&tempo, 200 + i);
            tempo.iterate(&sched);
        }
        assert!(tempo.current_r()[1] <= r1, "ratchet never loosens");
    }

    #[test]
    fn strict_revert_rolls_back_on_non_domination() {
        let mut tempo = make_tempo(RevertPolicy::Strict, 13);
        let sched = observe_current(&tempo, 1);
        let rec0 = tempo.iterate(&sched);
        assert!(!rec0.reverted, "nothing to revert on the first iteration");
        let x_before = tempo.current_x().to_vec();
        let sched = observe_current(&tempo, 2);
        let rec1 = tempo.iterate(&sched);
        // Under Strict, a non-improving observation forces a rollback of the
        // previous x (then a fresh proposal is made from it).
        if rec1.reverted {
            assert_ne!(x_before, tempo.current_x(), "a new proposal still happens after revert");
        }
    }

    #[test]
    fn off_policy_never_reverts() {
        let mut tempo = make_tempo(RevertPolicy::Off, 14);
        for i in 0..4 {
            let sched = observe_current(&tempo, 300 + i);
            let rec = tempo.iterate(&sched);
            assert!(!rec.reverted);
        }
    }

    #[test]
    fn constraint_bounds_track_thresholds() {
        let tempo = make_tempo(RevertPolicy::Dominated, 15);
        // Deadline SLO has an explicit threshold 0.0; best-effort is ∞ until
        // ratcheted.
        assert_eq!(tempo.current_r()[0], 0.0);
        assert!(tempo.current_r()[1].is_infinite());
    }

    #[test]
    fn set_workload_swaps_window() {
        let mut tempo = make_tempo(RevertPolicy::Dominated, 16);
        tempo.set_workload(WorkloadSource::replay(contention_trace()), (MIN, 5 * MIN));
        assert_eq!(tempo.whatif.window, (MIN, 5 * MIN));
    }

    #[test]
    fn clear_cache_windows_drops_cache_at_threshold() {
        let mut tempo = make_tempo(RevertPolicy::Dominated, 18);
        tempo.config.clear_cache_windows = Some(2);
        let cfg = tempo.current_config();
        tempo.whatif.evaluate(&cfg);
        assert_eq!(tempo.whatif.cache_len(), 1);
        // First swap: under threshold, entries survive.
        tempo.set_workload(WorkloadSource::replay(contention_trace()), (0, 11 * MIN));
        assert_eq!(tempo.whatif.cache_len(), 1);
        // Second swap: threshold reached, cache dropped across all contexts.
        tempo.set_workload(WorkloadSource::replay(contention_trace()), (0, 10 * MIN));
        assert_eq!(tempo.whatif.cache_len(), 0, "window-count watermark clears the cache");
        // Counter resets: the next swap is under threshold again.
        tempo.whatif.evaluate(&tempo.current_config());
        tempo.set_workload(WorkloadSource::replay(contention_trace()), (0, 9 * MIN));
        assert_eq!(tempo.whatif.cache_len(), 1);
    }

    #[test]
    fn snapshot_restore_resumes_the_loop_bit_identically() {
        let mut straight = make_tempo(RevertPolicy::Dominated, 19);
        for i in 0..3 {
            let sched = observe_current(&straight, 400 + i);
            straight.iterate(&sched);
        }
        let snap = straight.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let parsed: TempoSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, snap, "snapshot survives its wire encoding");

        // A freshly built controller with the same wiring, restored from the
        // snapshot, must continue exactly like the uninterrupted one.
        let mut resumed = make_tempo(RevertPolicy::Dominated, 19);
        resumed.whatif.import_cache(&straight.whatif.export_cache());
        resumed.restore_state(parsed);
        assert_eq!(resumed.current_config(), straight.current_config());
        for i in 0..3 {
            let sched = observe_current(&straight, 500 + i);
            let a = straight.iterate(&sched);
            let b = resumed.iterate(&sched);
            assert_eq!(a, b, "restored controller diverged at step {i}");
        }
        assert_eq!(resumed.current_x(), straight.current_x());
        assert_eq!(resumed.pald().history(), straight.pald().history());
    }

    #[test]
    fn set_workload_scopes_memo_entries_to_their_window() {
        // The memo key carries the workload/window identity: after a swap
        // the same config must be re-simulated (old entries can't answer for
        // the new context), but returning to the original workload re-hits
        // the surviving entries without a single new simulation.
        let mut tempo = make_tempo(RevertPolicy::Dominated, 17);
        let cfg = tempo.current_config();
        let qs_before = tempo.whatif.evaluate(&cfg);
        assert_eq!(tempo.whatif.cache_len(), 1);
        assert_eq!(tempo.whatif.sim_count(), 1);
        // A much lighter workload: only the best-effort stream.
        let light = Trace::new(vec![JobSpec::new(
            0,
            1,
            0,
            vec![TaskSpec::map(30 * SEC), TaskSpec::reduce(60 * SEC)],
        )]);
        tempo.set_workload(WorkloadSource::replay(light), (0, 10 * MIN));
        let qs_after = tempo.whatif.evaluate(&cfg);
        assert_ne!(qs_before, qs_after, "same config re-evaluated against the new workload");
        assert_eq!(tempo.whatif.sim_count(), 2, "new context forced a fresh simulation");
        assert_eq!(tempo.whatif.cache_len(), 2, "both contexts' entries coexist");
        // Back to the original workload/window: pure cache hit.
        tempo.set_workload(WorkloadSource::replay(contention_trace()), (0, 12 * MIN));
        assert_eq!(tempo.whatif.evaluate(&cfg), qs_before, "revisited window answers identically");
        assert_eq!(tempo.whatif.sim_count(), 2, "no re-simulation on the revisited window");
    }
}
