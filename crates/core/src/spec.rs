//! `ScenarioSpec`: the N-tenant scenario pipeline.
//!
//! Every end-to-end artifact in the workspace — examples, integration tests,
//! figure harnesses — needs the same assembly: compose *tenants* (a workload
//! archetype from `tempo-workload`, an SLO set from `tempo-qs`, and a
//! share/limit/preemption configuration from `tempo-sim`) on a *cluster*
//! under a *noise model*, then wire the What-if Model, the normalized
//! configuration space, and the Tempo controller together. The seed repo
//! hardcoded that glue for the paper's §8.2 two-tenant EC2 setup and every
//! call site re-derived it by hand; this module is the general, validated
//! pipeline that those setups are now thin presets over (see
//! [`crate::scenario`]).
//!
//! ```
//! use tempo_core::spec::{ScenarioSpec, TenantSpec};
//! use tempo_qs::QsKind;
//! use tempo_sim::ClusterSpec;
//! use tempo_workload::synthetic::{cloudera_like_tenant, facebook_like_tenant};
//! use tempo_workload::time::HOUR;
//!
//! let mut scenario = ScenarioSpec::new(ClusterSpec::new(24, 12))
//!     .tenant(
//!         TenantSpec::new(facebook_like_tenant("adhoc", 60.0))
//!             .with_slo(QsKind::AvgResponseTime),
//!     )
//!     .tenant(
//!         TenantSpec::new(cloudera_like_tenant("batch", 20.0))
//!             .with_slo_bound(QsKind::ResponseTimePercentile { q: 0.9 }, 1800.0),
//!     )
//!     .span(HOUR)
//!     .seed(7)
//!     .build()
//!     .expect("valid two-tenant scenario");
//! let records = scenario.run(2, 1);
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].observed_qs.len(), 2);
//! ```

use crate::control::{IterationRecord, LoopConfig, RevertPolicy, Tempo};
use crate::pald::PaldConfig;
use crate::space::ConfigSpace;
use crate::whatif::{WhatIfModel, WorkloadSource};
use std::collections::BTreeMap;
use std::fmt;
use tempo_qs::{ParseError, QsKind, SloSet, SloSpec};
use tempo_sim::{
    observe, ClusterSpec, ConfigError, NoiseModel, RmConfig, SchedPolicy, Schedule, TenantConfig,
};
use tempo_workload::time::{Time, HOUR};
use tempo_workload::{TenantId, TenantModel, Trace, WorkloadModel};

/// One tenant of a scenario: workload archetype + SLOs + initial RM config.
///
/// The tenant's id is its position in the [`ScenarioSpec`] — ids are dense
/// and assigned at [`ScenarioSpec::build`] time, so specs compose without
/// manual id bookkeeping.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (used in SLO names and reports). Defaults to the
    /// workload archetype's name.
    pub name: String,
    /// The statistical workload model that generates this tenant's jobs.
    pub workload: TenantModel,
    /// SLOs scoped to this tenant. `tenant` ids inside are assigned at build
    /// time; auto-generated names are rewritten to `"{name}:{metric}"`.
    pub slos: Vec<SloSpec>,
    /// Initial RM configuration (the starting point the optimizer tunes
    /// from). Defaults to plain weighted fair sharing.
    pub rm: TenantConfig,
}

impl TenantSpec {
    /// A tenant named after its workload archetype, with fair-sharing
    /// defaults and no SLOs.
    pub fn new(workload: TenantModel) -> Self {
        Self {
            name: workload.name.clone(),
            workload,
            slos: Vec::new(),
            rm: TenantConfig::fair_default(),
        }
    }

    /// Overrides the display name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the initial share/limit/preemption configuration.
    pub fn with_rm(mut self, rm: TenantConfig) -> Self {
        self.rm = rm;
        self
    }

    /// Adds a best-effort SLO (no threshold: the control loop ratchets the
    /// best value attained so far, §6.1).
    pub fn with_slo(mut self, kind: QsKind) -> Self {
        self.slos.push(SloSpec::new(None, kind));
        self
    }

    /// Adds a constrained SLO `E[f] ≤ r`.
    pub fn with_slo_bound(mut self, kind: QsKind, r: f64) -> Self {
        self.slos.push(SloSpec::new(None, kind).with_threshold(r));
        self
    }

    /// Adds a fully specified SLO (priorities, custom names). The `tenant`
    /// field is overwritten with this tenant's id at build time.
    pub fn with_slo_spec(mut self, slo: SloSpec) -> Self {
        self.slos.push(slo);
        self
    }
}

/// What the What-if Model replays when predicting candidate configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIfSource {
    /// Replay the one concrete trace the scenario generated (the paper's
    /// default: "replaying the recent job traces").
    Replay,
    /// Resample fresh workloads from the statistical model per evaluation —
    /// the expectation in (SP1) is then estimated over workload draws.
    Model,
}

/// Validation failures from [`ScenarioSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A scenario needs at least one tenant.
    NoTenants,
    /// A scenario needs at least one SLO to optimize for.
    NoSlos,
    /// Tenant display names must be unique (they key SLO parsing/reports).
    DuplicateTenant(String),
    /// The QS evaluation window is empty or inverted.
    EmptyWindow { start: Time, end: Time },
    /// The trace-generation span is zero.
    EmptySpan,
    /// The per-tenant RM configurations do not validate.
    InvalidRm(ConfigError),
    /// A declarative SLO block failed to parse.
    SloParse(ParseError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoTenants => write!(f, "scenario has no tenants"),
            SpecError::NoSlos => write!(f, "scenario has no SLOs"),
            SpecError::DuplicateTenant(name) => write!(f, "duplicate tenant name '{name}'"),
            SpecError::EmptyWindow { start, end } => {
                write!(f, "empty QS window [{start}, {end})")
            }
            SpecError::EmptySpan => write!(f, "trace-generation span is zero"),
            SpecError::InvalidRm(e) => write!(f, "invalid initial RM configuration: {e}"),
            SpecError::SloParse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConfigError> for SpecError {
    fn from(e: ConfigError) -> Self {
        SpecError::InvalidRm(e)
    }
}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::SloParse(e)
    }
}

/// Declarative description of an N-tenant end-to-end scenario; build it into
/// a runnable [`Scenario`] with [`ScenarioSpec::build`].
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Tenants in id order (tenant `i` in traces/configs is `tenants[i]`).
    pub tenants: Vec<TenantSpec>,
    /// The cluster the RM schedules onto.
    pub cluster: ClusterSpec,
    /// The scheduler backend the RM runs (and whose native knobs the
    /// optimizer tunes). Defaults to the paper's fair-share substrate.
    pub backend: SchedPolicy,
    /// Cluster-level SLOs (utilization, total throughput, ...).
    pub cluster_slos: Vec<SloSpec>,
    /// Trace-generation horizon `[0, span)`.
    pub span: Time,
    /// QS evaluation window; defaults to `[0, span + span/4)` so straggler
    /// jobs submitted near the end still count.
    pub window: Option<(Time, Time)>,
    /// Noise injected when *observing* the stand-in cluster
    /// ([`Scenario::observe_current`]).
    pub observation_noise: NoiseModel,
    /// Noise injected into What-if predictions (default none: the paper's
    /// deterministic time-warp predictor).
    pub whatif_noise: NoiseModel,
    /// Samples averaged per What-if evaluation.
    pub whatif_samples: u32,
    /// Whether the What-if Model replays the generated trace or resamples
    /// from the statistical model.
    pub whatif_source: WhatIfSource,
    /// Master seed: drives trace generation and (unless overridden via
    /// [`ScenarioSpec::loop_config`]/[`ScenarioSpec::pald`]) probe placement.
    pub seed: u64,
    /// Control-loop settings.
    pub loop_config: LoopConfig,
    /// Pre-recorded trace replayed instead of generating from the tenant
    /// models (§7.1's "replaying historical traces" mode).
    pub trace_override: Option<Trace>,
}

impl ScenarioSpec {
    /// A spec with no tenants yet, default two-hour span, no noise, and
    /// default loop settings.
    pub fn new(cluster: ClusterSpec) -> Self {
        Self {
            tenants: Vec::new(),
            cluster,
            backend: SchedPolicy::FairShare,
            cluster_slos: Vec::new(),
            span: 2 * HOUR,
            window: None,
            observation_noise: NoiseModel::NONE,
            whatif_noise: NoiseModel::NONE,
            whatif_samples: 1,
            whatif_source: WhatIfSource::Replay,
            seed: 0,
            loop_config: LoopConfig::default(),
            trace_override: None,
        }
    }

    /// Adds a tenant; its id is its insertion position.
    pub fn tenant(mut self, tenant: TenantSpec) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Swaps the scheduler backend (fair-share, DRF, capacity, FIFO). The
    /// per-tenant RM configs are carried over and interpreted in the new
    /// backend's native terms; the optimizer searches that backend's knobs.
    pub fn backend(mut self, backend: SchedPolicy) -> Self {
        self.backend = backend;
        self
    }

    /// Adds a cluster-level SLO (the `tenant` field is forced to `None`).
    pub fn cluster_slo(mut self, slo: SloSpec) -> Self {
        self.cluster_slos.push(SloSpec { tenant: None, ..slo });
        self
    }

    /// Sets the trace-generation horizon.
    pub fn span(mut self, span: Time) -> Self {
        self.span = span;
        self
    }

    /// Sets an explicit QS evaluation window.
    pub fn window(mut self, start: Time, end: Time) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Sets the observation noise for stand-in cluster runs.
    pub fn observation_noise(mut self, noise: NoiseModel) -> Self {
        self.observation_noise = noise;
        self
    }

    /// Sets prediction noise and sample count for the What-if Model
    /// (robustness-under-noise experiments).
    pub fn whatif_noise(mut self, noise: NoiseModel, samples: u32) -> Self {
        self.whatif_noise = noise;
        self.whatif_samples = samples;
        self
    }

    /// Switches the What-if Model to resample workloads from the statistical
    /// model instead of replaying the generated trace.
    pub fn whatif_from_model(mut self) -> Self {
        self.whatif_source = WhatIfSource::Model;
        self
    }

    /// Replays a pre-recorded trace (production logs, drifting-workload
    /// experiments) instead of generating one from the tenant models. The
    /// tenant list still defines SLOs, RM configs, and ids; with
    /// [`WhatIfSource::Model`] the models still drive What-if resampling.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace_override = Some(trace);
        self
    }

    /// Sets the master seed (trace generation *and* optimizer probe
    /// placement; call [`ScenarioSpec::pald`] afterwards to decouple them).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.loop_config.pald.seed = seed;
        self
    }

    /// Replaces the whole control-loop configuration.
    pub fn loop_config(mut self, config: LoopConfig) -> Self {
        self.loop_config = config;
        self
    }

    /// Overrides just the PALD optimizer settings.
    pub fn pald(mut self, pald: PaldConfig) -> Self {
        self.loop_config.pald = pald;
        self
    }

    /// Overrides just the revert policy.
    pub fn revert(mut self, revert: RevertPolicy) -> Self {
        self.loop_config.revert = revert;
        self
    }

    /// Attaches SLOs written in the declarative template language of §5.2,
    /// scoping `tenant <name>` lines by this spec's tenant names:
    ///
    /// ```text
    /// tenant etl: deadline_miss(slack=25%) <= 0%
    /// tenant adhoc: avg_response_time
    /// cluster: utilization(reduce) >= 40%
    /// ```
    pub fn parsed_slos(mut self, text: &str) -> Result<Self, SpecError> {
        let ids: BTreeMap<String, TenantId> =
            self.tenants.iter().enumerate().map(|(i, t)| (t.name.clone(), i as TenantId)).collect();
        let set = SloSet::parse(text, &ids)?;
        for slo in set.slos {
            match slo.tenant {
                Some(id) => self.tenants[id as usize].slos.push(slo),
                None => self.cluster_slos.push(slo),
            }
        }
        Ok(self)
    }

    /// Number of tenants added so far.
    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The multi-tenant workload model this spec composes (tenant index =
    /// tenant id).
    pub fn workload_model(&self) -> WorkloadModel {
        WorkloadModel::new(self.tenants.iter().map(|t| t.workload.clone()).collect())
    }

    /// The initial RM configuration this spec composes (under this spec's
    /// scheduler backend).
    pub fn initial_config(&self) -> RmConfig {
        RmConfig::new(self.tenants.iter().map(|t| t.rm.clone()).collect()).with_policy(self.backend)
    }

    /// The full SLO set (tenant SLOs in tenant order, then cluster SLOs),
    /// with tenant ids assigned and auto-generated names rewritten to
    /// `"{tenant}:{metric}"`.
    pub fn slo_set(&self) -> SloSet {
        let mut slos = Vec::new();
        for (id, t) in self.tenants.iter().enumerate() {
            for slo in &t.slos {
                let mut s = SloSpec { tenant: Some(id as TenantId), ..slo.clone() };
                if auto_named(slo) {
                    s.name = format!("{}:{}", t.name, s.kind.label());
                }
                slos.push(s);
            }
        }
        for slo in &self.cluster_slos {
            slos.push(SloSpec { tenant: None, ..slo.clone() });
        }
        SloSet::new(slos)
    }

    /// Validates the spec and assembles the runnable scenario: generates the
    /// trace, wires the What-if Model, configuration space, and Tempo
    /// controller, and seats the initial RM configuration.
    pub fn build(mut self) -> Result<Scenario, SpecError> {
        if self.tenants.is_empty() {
            return Err(SpecError::NoTenants);
        }
        let mut seen = std::collections::BTreeSet::new();
        for t in &self.tenants {
            if !seen.insert(t.name.as_str()) {
                return Err(SpecError::DuplicateTenant(t.name.clone()));
            }
        }
        if self.span == 0 {
            return Err(SpecError::EmptySpan);
        }
        let window = self.window.unwrap_or((0, self.span + self.span / 4));
        if window.0 >= window.1 {
            return Err(SpecError::EmptyWindow { start: window.0, end: window.1 });
        }
        let slos = self.slo_set();
        if slos.is_empty() {
            return Err(SpecError::NoSlos);
        }
        let initial = self.initial_config();
        initial.validate()?;

        // The tenant models are only materialized where actually consumed;
        // a historical-trace replay never clones them.
        let trace = match self.trace_override.take() {
            Some(trace) => trace,
            None => self.workload_model().generate(0, self.span, self.seed),
        };
        let source = match self.whatif_source {
            WhatIfSource::Replay => WorkloadSource::replay(trace.clone()),
            WhatIfSource::Model => {
                WorkloadSource::Model { model: self.workload_model(), start: 0, end: self.span }
            }
        };
        let whatif = WhatIfModel::new(self.cluster.clone(), slos, source, window)
            .with_samples(self.whatif_samples.max(1))
            .with_noise(self.whatif_noise);
        let space = ConfigSpace::new(self.tenants.len(), &self.cluster).with_policy(self.backend);
        let tempo = Tempo::new(space, whatif, self.loop_config, &initial);
        Ok(Scenario {
            names: self.tenants.iter().map(|t| t.name.clone()).collect(),
            cluster: self.cluster,
            trace,
            window,
            noise: self.observation_noise,
            tempo,
        })
    }
}

/// Whether an SLO still carries the default name [`SloSpec::new`] generated
/// (in which case the build rewrites it to use the tenant's display name).
fn auto_named(slo: &SloSpec) -> bool {
    slo.name == SloSpec::new(slo.tenant, slo.kind).name
}

/// A fully assembled scenario: cluster, generated trace, QS window, and a
/// Tempo controller seated on the initial configuration.
pub struct Scenario {
    /// Tenant display names, in tenant-id order.
    pub names: Vec<String>,
    pub cluster: ClusterSpec,
    pub trace: Trace,
    /// QS evaluation window `[start, end)`.
    pub window: (Time, Time),
    /// Noise model for "observed" runs on the stand-in cluster.
    pub noise: NoiseModel,
    pub tempo: Tempo,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("names", &self.names)
            .field("cluster", &self.cluster)
            .field("jobs", &self.trace.len())
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Observes the trace on the stand-in cluster under the controller's
    /// current configuration (the "run the production workload for one
    /// interval" step).
    pub fn observe_current(&self, seed: u64) -> Schedule {
        observe(&self.trace, &self.cluster, &self.tempo.current_config(), self.noise, seed)
    }

    /// Runs `iters` control-loop iterations, returning the per-iteration
    /// records (Figure 6's x-axis).
    pub fn run(&mut self, iters: usize, seed: u64) -> Vec<IterationRecord> {
        let mut out = Vec::with_capacity(iters);
        for i in 0..iters {
            let sched = self.observe_current(seed.wrapping_add(i as u64 * 7919));
            out.push(self.tempo.iterate(&sched));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_workload::synthetic::facebook_like_tenant;
    use tempo_workload::time::MIN;

    fn tiny_tenant(name: &str) -> TenantSpec {
        TenantSpec::new(facebook_like_tenant(name, 30.0)).with_slo(QsKind::AvgResponseTime)
    }

    #[test]
    fn build_rejects_degenerate_specs() {
        let cluster = ClusterSpec::new(8, 4);
        assert_eq!(ScenarioSpec::new(cluster.clone()).build().unwrap_err(), SpecError::NoTenants);

        let no_slos = ScenarioSpec::new(cluster.clone())
            .tenant(TenantSpec::new(facebook_like_tenant("a", 10.0)))
            .build();
        assert_eq!(no_slos.unwrap_err(), SpecError::NoSlos);

        let dup = ScenarioSpec::new(cluster.clone())
            .tenant(tiny_tenant("a"))
            .tenant(tiny_tenant("a"))
            .build();
        assert_eq!(dup.unwrap_err(), SpecError::DuplicateTenant("a".into()));

        let window =
            ScenarioSpec::new(cluster.clone()).tenant(tiny_tenant("a")).window(MIN, MIN).build();
        assert_eq!(window.unwrap_err(), SpecError::EmptyWindow { start: MIN, end: MIN });

        let bad_rm = ScenarioSpec::new(cluster.clone())
            .tenant(tiny_tenant("a").with_rm(TenantConfig::fair_default().with_weight(0.0)))
            .build();
        assert!(matches!(bad_rm.unwrap_err(), SpecError::InvalidRm(_)));

        let no_span = ScenarioSpec::new(cluster).tenant(tiny_tenant("a")).span(0).build();
        assert_eq!(no_span.unwrap_err(), SpecError::EmptySpan);
    }

    #[test]
    fn slo_names_use_tenant_names_and_ids_are_dense() {
        let spec = ScenarioSpec::new(ClusterSpec::new(8, 4))
            .tenant(tiny_tenant("alpha"))
            .tenant(
                tiny_tenant("beta").with_slo_spec(
                    SloSpec::new(None, QsKind::DeadlineMiss { gamma: 0.25 })
                        .with_threshold(0.0)
                        .with_priority(2.0),
                ),
            )
            .cluster_slo(SloSpec::new(Some(9), QsKind::Throughput).with_threshold(-10.0));
        let set = spec.slo_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set.slos[0].tenant, Some(0));
        assert_eq!(set.slos[0].name, format!("alpha:{}", QsKind::AvgResponseTime.label()));
        assert_eq!(set.slos[1].tenant, Some(1));
        assert_eq!(set.slos[2].tenant, Some(1));
        assert_eq!(set.slos[2].priority, 2.0);
        // Cluster SLOs are forced to cluster scope even if misdeclared.
        assert_eq!(set.slos[3].tenant, None);
    }

    #[test]
    fn parsed_slos_scope_by_tenant_name() {
        let spec = ScenarioSpec::new(ClusterSpec::new(8, 4))
            .tenant(TenantSpec::new(facebook_like_tenant("etl", 10.0)))
            .tenant(TenantSpec::new(facebook_like_tenant("adhoc", 40.0)))
            .parsed_slos(
                "tenant etl: deadline_miss(slack=25%) <= 0%\n\
                 tenant adhoc: avg_response_time\n\
                 cluster: utilization(reduce) >= 40%\n",
            )
            .expect("parses");
        let set = spec.slo_set();
        assert_eq!(set.len(), 3);
        assert_eq!(set.slos[0].tenant, Some(0));
        assert_eq!(set.slos[0].threshold, Some(0.0));
        assert_eq!(set.slos[1].tenant, Some(1));
        assert_eq!(set.slos[2].tenant, None);
        assert!(spec.parsed_slos("tenant nosuch: avg_response_time").is_err());
    }

    #[test]
    fn built_scenario_runs_and_matches_spec_arity() {
        let mut sc = ScenarioSpec::new(ClusterSpec::new(10, 5))
            .tenant(tiny_tenant("a"))
            .tenant(tiny_tenant("b"))
            .tenant(tiny_tenant("c"))
            .span(20 * MIN)
            .seed(5)
            .build()
            .expect("valid spec");
        assert_eq!(sc.names, vec!["a", "b", "c"]);
        assert_eq!(sc.tempo.current_config().num_tenants(), 3);
        let recs = sc.run(2, 9);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].observed_qs.len(), 3);
    }

    #[test]
    fn backend_flows_to_initial_config_and_config_space() {
        let spec = ScenarioSpec::new(ClusterSpec::new(10, 5))
            .tenant(tiny_tenant("a"))
            .tenant(tiny_tenant("b"))
            .span(20 * MIN)
            .backend(SchedPolicy::Drf);
        assert_eq!(spec.initial_config().policy, SchedPolicy::Drf);
        let mut sc = spec.build().expect("valid DRF scenario");
        assert_eq!(sc.tempo.current_config().policy, SchedPolicy::Drf);
        // The optimizer searches DRF's native knobs: 2 dims × 2 tenants.
        assert_eq!(sc.tempo.current_x().len(), 4);
        let recs = sc.run(1, 2);
        assert_eq!(recs[0].observed_qs.len(), 2);
    }

    #[test]
    fn seed_controls_both_trace_and_probes() {
        let spec = |seed| {
            ScenarioSpec::new(ClusterSpec::new(10, 5))
                .tenant(tiny_tenant("a"))
                .span(20 * MIN)
                .seed(seed)
        };
        let a = spec(3);
        assert_eq!(a.loop_config.pald.seed, 3);
        let t1 = a.build().unwrap().trace;
        let t2 = spec(3).build().unwrap().trace;
        let t3 = spec(4).build().unwrap().trace;
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }
}
