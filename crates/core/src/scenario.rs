//! Preset scenarios: thin, shared setups over the [`crate::spec`] pipeline.
//!
//! Two families are packaged here so the examples, integration tests, and
//! figure harnesses agree on them:
//!
//! * **§8.2 EC2** — the paper's end-to-end setting: a deadline-driven tenant
//!   and a best-effort tenant on a 20-node EC2-like cluster, starting from
//!   the RM configuration "derived directly from the expert one created by
//!   DBAs for Company ABC's production database" ([`ec2_scenario`]).
//! * **Company ABC** — the six-tenant production mix of Table 1 with its
//!   deadline/best-effort SLO classes ([`abc_scenario`]).
//!
//! Everything is a preset over [`ScenarioSpec`]: grab the spec, customize
//! (swap SLOs, add tenants, change noise), then `build()`.

use crate::pald::PaldConfig;
use crate::spec::{ScenarioSpec, TenantSpec};
use tempo_qs::{PoolScope, QsKind, SloSet, SloSpec};
use tempo_sim::{ClusterSpec, NoiseModel, RmConfig, SchedPolicy, TenantConfig};
use tempo_workload::abc::{self, TENANT_DEADLINE_DRIVEN};
use tempo_workload::synthetic::ec2_experiment_trace;
use tempo_workload::time::{HOUR, SEC};
use tempo_workload::{TaskKind, Trace};

pub use crate::spec::Scenario;

/// Tenant ids in the EC2 experiment traces.
pub use tempo_workload::synthetic::ec2_tenant as tenant;

/// The 20-node EC2-like cluster: m3.xlarge-era Hadoop sizing of ~6 map and
/// ~3 reduce containers per node.
pub fn ec2_cluster() -> ClusterSpec {
    ClusterSpec::new(120, 60)
}

/// The expert-DBA starting configuration, encoding the production
/// pathologies the paper documents:
///
/// * the best-effort tenant is hard-capped at under half the cluster
///   (Figure 2's "configured resource limit prevents one tenant from using
///   the resources unused by the other");
/// * the deadline tenant preempts aggressively on both levels, killing the
///   best-effort tenant's long reduces and wasting their work (Figures 1
///   and 7);
/// * shares otherwise favour the deadline tenant 2:1 — sensible-looking,
///   brittle in practice.
pub fn expert_config() -> RmConfig {
    RmConfig::new(vec![
        TenantConfig::fair_default()
            .with_weight(2.0)
            .with_min_share(48, 24)
            .with_max_share(120, 60)
            .with_fair_timeout(45 * SEC)
            .with_min_timeout(15 * SEC),
        TenantConfig::fair_default().with_weight(1.0).with_min_share(0, 0).with_max_share(96, 48),
    ])
}

/// The §8.2.1 SLO set: the deadline tenant's violations (with the given
/// slack) must stay at zero, while the best-effort tenant's average job
/// response time is minimized (ratcheted best-effort objective).
pub fn mixed_slos(slack: f64) -> SloSet {
    SloSet::new(vec![
        SloSpec::new(Some(tenant::DEADLINE), QsKind::DeadlineMiss { gamma: slack })
            .with_threshold(0.0),
        SloSpec::new(Some(tenant::BEST_EFFORT), QsKind::AvgResponseTime),
    ])
}

/// The §8.2.2 SLO set: §8.2.1 plus map/reduce container-utilization
/// constraints whose bounds `r_i` are "set according to the measured map and
/// reduce container utilization under the expert RM configuration".
pub fn utilization_slos(slack: f64, expert_map_util: f64, expert_reduce_util: f64) -> SloSet {
    SloSet::new(vec![
        SloSpec::new(Some(tenant::DEADLINE), QsKind::DeadlineMiss { gamma: slack })
            .with_threshold(0.0),
        SloSpec::new(Some(tenant::BEST_EFFORT), QsKind::AvgResponseTime),
        SloSpec::new(None, QsKind::Utilization { pool: PoolScope::Map, effective: true })
            .with_threshold(-expert_map_util),
        SloSpec::new(None, QsKind::Utilization { pool: PoolScope::Reduce, effective: true })
            .with_threshold(-expert_reduce_util),
    ])
}

/// The standard two-hour experiment trace (≈30k tasks at scale 1.0; use a
/// smaller scale with a proportionally smaller cluster for quick runs).
pub fn experiment_trace(scale: f64, seed: u64) -> Trace {
    ec2_experiment_trace(scale, 2 * HOUR, seed)
}

/// Measurement noise for "observed" runs in the end-to-end scenarios:
/// moderate duration jitter and rare failures.
pub fn observation_noise() -> NoiseModel {
    NoiseModel { duration_sigma: 0.12, task_failure_prob: 0.005, job_kill_prob: 0.0 }
}

/// The §8.2 two-tenant EC2 scenario as a [`ScenarioSpec`].
///
/// * `scale` shrinks the cluster (and the expert configuration's shares)
///   onto a stand-in size;
/// * `load_boost` multiplies workload intensity only — the heavy-tailed job
///   widths in the trace do not grow with the cluster, so relative
///   contention *falls* as the stand-in cluster grows; full-scale
///   experiments boost the workload (~1.4×) to keep pool pressure
///   comparable to the paper's saturated clusters;
/// * `slack` is the deadline-miss slack γ of the §8.2.1 SLO set.
///
/// Customize the returned spec before `build()` for variants (utilization
/// constraints, different revert policies, What-if noise, ...).
pub fn ec2_scenario(scale: f64, load_boost: f64, slack: f64, seed: u64) -> ScenarioSpec {
    let cluster = ec2_cluster().scaled(scale);
    let model = tempo_workload::synthetic::ec2_experiment_model(scale * load_boost);
    let expert = scaled_expert(scale);
    let [deadline_model, best_effort_model]: [tempo_workload::TenantModel; 2] =
        model.tenants.try_into().expect("EC2 model has exactly two tenants");
    let [deadline_rm, best_effort_rm]: [TenantConfig; 2] =
        expert.tenants.try_into().expect("expert config has exactly two tenants");
    ScenarioSpec::new(cluster)
        .tenant(
            TenantSpec::new(deadline_model)
                .with_rm(deadline_rm)
                .with_slo_bound(QsKind::DeadlineMiss { gamma: slack }, 0.0),
        )
        .tenant(
            TenantSpec::new(best_effort_model)
                .with_rm(best_effort_rm)
                .with_slo(QsKind::AvgResponseTime),
        )
        .span(2 * HOUR)
        .observation_noise(observation_noise())
        .seed(seed)
        .pald(PaldConfig { probes: 5, trust_radius: 0.18, seed, ..Default::default() })
}

/// The six-tenant Company-ABC scenario of Table 1 as a [`ScenarioSpec`]:
/// deadline-driven tenants (APP, MV, ETL) carry deadline-miss bounds, the
/// best-effort tenants (BI, DEV, STR) carry ratcheted response-time
/// objectives, and the initial configuration is the production-flavoured
/// [`abc_production_config`].
///
/// `scale = 1.0` is a ~600-node-class cluster's worth of load; tests use
/// 0.05–0.2.
pub fn abc_scenario(scale: f64, slack: f64, seed: u64) -> ScenarioSpec {
    let cluster = ClusterSpec::new(1200, 600).scaled(scale);
    let production = abc_production_config(&cluster);
    let model = abc::abc_model(scale);
    let mut spec = ScenarioSpec::new(cluster)
        .span(tempo_workload::time::DAY)
        .observation_noise(observation_noise())
        .seed(seed);
    for ((tenant_model, rm), &deadline_driven) in
        model.tenants.into_iter().zip(production.tenants).zip(&TENANT_DEADLINE_DRIVEN)
    {
        let mut t = TenantSpec::new(tenant_model).with_rm(rm);
        t = if deadline_driven {
            t.with_slo_bound(QsKind::DeadlineMiss { gamma: slack }, 0.05)
        } else {
            t.with_slo(QsKind::AvgResponseTime)
        };
        spec = spec.tenant(t);
    }
    spec
}

/// A production-flavoured six-tenant ABC configuration: deadline pipelines
/// (APP, MV, ETL) get guarantees and preemption; best-effort tenants get
/// weights only. MV's long reduces plus ETL's bursty preemption reproduce
/// the paper's observation that MV has the worst prediction error.
pub fn abc_production_config(cluster: &ClusterSpec) -> RmConfig {
    let m = cluster.capacity(TaskKind::Map);
    let r = cluster.capacity(TaskKind::Reduce);
    let frac = |c: u32, f: f64| ((c as f64 * f) as u32).max(1);
    RmConfig::new(vec![
        // BI
        TenantConfig::fair_default().with_weight(1.5).with_max_share(frac(m, 0.5), frac(r, 0.5)),
        // DEV
        TenantConfig::fair_default().with_weight(1.0).with_max_share(frac(m, 0.4), frac(r, 0.4)),
        // APP
        TenantConfig::fair_default()
            .with_weight(3.0)
            .with_min_share(frac(m, 0.1), frac(r, 0.1))
            .with_min_timeout(30 * SEC),
        // STR
        TenantConfig::fair_default().with_weight(1.0).with_max_share(frac(m, 0.4), frac(r, 0.4)),
        // MV
        TenantConfig::fair_default()
            .with_weight(2.0)
            .with_min_share(frac(m, 0.15), frac(r, 0.25))
            .with_fair_timeout(2 * tempo_workload::time::MIN)
            .with_min_timeout(45 * SEC),
        // ETL
        TenantConfig::fair_default()
            .with_weight(2.5)
            .with_min_share(frac(m, 0.2), frac(r, 0.15))
            .with_fair_timeout(tempo_workload::time::MIN)
            .with_min_timeout(20 * SEC),
    ])
}

impl Scenario {
    /// Builds the §8.2.1 mixed deadline/best-effort scenario at a given
    /// workload scale (cluster scales along to keep contention comparable).
    /// Thin preset over [`ec2_scenario`].
    pub fn mixed(scale: f64, slack: f64, seed: u64) -> Self {
        ec2_scenario(scale, 1.0, slack, seed).build().expect("EC2 preset is always valid")
    }
}

/// The §8.2 two-tenant EC2 spec under each stock scheduler backend, in
/// [`SchedPolicy::ALL`] order — the comparison set of `examples/backends.rs`
/// and the backend figures.
pub fn ec2_backend_specs(
    scale: f64,
    load_boost: f64,
    slack: f64,
    seed: u64,
) -> Vec<(SchedPolicy, ScenarioSpec)> {
    SchedPolicy::ALL
        .into_iter()
        .map(|p| (p, ec2_scenario(scale, load_boost, slack, seed).backend(p)))
        .collect()
}

/// The six-tenant Company-ABC spec under each stock scheduler backend, in
/// [`SchedPolicy::ALL`] order (the `fig_backends` comparison set).
pub fn abc_backend_specs(scale: f64, slack: f64, seed: u64) -> Vec<(SchedPolicy, ScenarioSpec)> {
    SchedPolicy::ALL.into_iter().map(|p| (p, abc_scenario(scale, slack, seed).backend(p))).collect()
}

/// The expert configuration scaled to a smaller stand-in cluster.
pub fn scaled_expert(scale: f64) -> RmConfig {
    let base = expert_config();
    if (scale - 1.0).abs() < 1e-9 {
        return base;
    }
    let s = |v: u32| ((v as f64 * scale).round() as u32).max(1);
    RmConfig::new(
        base.tenants
            .iter()
            .map(|t| TenantConfig {
                weight: t.weight,
                min_share: [s(t.min_share[0]), s(t.min_share[1])],
                max_share: [s(t.max_share[0]), s(t.max_share[1])],
                fair_timeout: t.fair_timeout,
                min_timeout: t.min_timeout,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_config_is_valid_and_pathological() {
        let cfg = expert_config();
        assert!(cfg.validate().is_ok());
        let cluster = ec2_cluster();
        // Best-effort tenant cannot borrow the whole cluster.
        assert!(
            cfg.tenants[tenant::BEST_EFFORT as usize].max_share[0]
                < cluster.capacity(tempo_workload::TaskKind::Map)
        );
        // Deadline tenant preempts on both levels.
        assert!(cfg.tenants[tenant::DEADLINE as usize].fair_timeout.is_some());
        assert!(cfg.tenants[tenant::DEADLINE as usize].min_timeout.is_some());
    }

    #[test]
    fn scaled_expert_shrinks_with_cluster() {
        let half = scaled_expert(0.5);
        assert!(half.validate().is_ok());
        assert_eq!(half.tenants[0].min_share, [24, 12]);
        assert_eq!(half.tenants[1].max_share, [48, 24]);
    }

    #[test]
    fn slo_sets_have_expected_arities() {
        assert_eq!(mixed_slos(0.25).len(), 2);
        assert_eq!(utilization_slos(0.0, 0.5, 0.5).len(), 4);
        // Utilization thresholds are the negated expert measurements.
        let set = utilization_slos(0.0, 0.6, 0.4);
        assert_eq!(set.slos[2].threshold, Some(-0.6));
        assert_eq!(set.slos[3].threshold, Some(-0.4));
    }

    #[test]
    fn ec2_preset_matches_the_hand_assembled_setup() {
        // The spec must reproduce the seed repo's §8.2 glue exactly: same
        // trace, same SLO arity/bounds, same expert starting configuration.
        let spec = ec2_scenario(0.1, 1.0, 0.25, 7);
        assert_eq!(spec.initial_config(), scaled_expert(0.1));
        let set = spec.slo_set();
        let reference = mixed_slos(0.25);
        assert_eq!(set.len(), reference.len());
        for (a, b) in set.slos.iter().zip(&reference.slos) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.threshold, b.threshold);
        }
        let sc = spec.build().expect("valid preset");
        assert_eq!(sc.trace, experiment_trace(0.1, 7));
        assert_eq!(sc.window, (0, 2 * HOUR + 30 * tempo_workload::time::MIN));
        assert_eq!(sc.names, vec!["deadline-driven", "best-effort"]);
    }

    #[test]
    fn small_scenario_smoke() {
        let mut sc = Scenario::mixed(0.08, 0.25, 7);
        let recs = sc.run(2, 1);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].observed_qs.len(), 2);
        assert!(recs[0].observed_qs[1] > 0.0, "best-effort AJR is positive");
        // Deadline-miss fraction is a valid fraction.
        assert!((0.0..=1.0).contains(&recs[0].observed_qs[0]));
    }

    #[test]
    fn abc_preset_builds_six_tenants_with_table1_slo_classes() {
        let spec = abc_scenario(0.05, 0.25, 3);
        assert_eq!(spec.num_tenants(), 6);
        let set = spec.slo_set();
        assert_eq!(set.len(), 6);
        for (i, slo) in set.slos.iter().enumerate() {
            assert_eq!(slo.tenant, Some(i as u16));
            if TENANT_DEADLINE_DRIVEN[i] {
                assert!(matches!(slo.kind, QsKind::DeadlineMiss { .. }), "tenant {i}: {slo:?}");
            } else {
                assert_eq!(slo.kind, QsKind::AvgResponseTime);
            }
        }
        let sc = spec.build().expect("valid ABC preset");
        assert_eq!(sc.names, abc::TENANT_NAMES);
        assert_eq!(sc.trace.tenants(), vec![0, 1, 2, 3, 4, 5]);
    }
}
