//! The shared §8.2 end-to-end experiment setup.
//!
//! All four end-to-end scenarios in the paper run two tenants — one
//! deadline-driven, one best-effort — on a 20-node EC2 cluster, replaying
//! scaled production traces, starting from the RM configuration "derived
//! directly from the expert one created by DBAs for Company ABC's production
//! database". This module packages that setup so the examples, integration
//! tests, and every figure harness agree on it.

use crate::control::{LoopConfig, Tempo};
use crate::pald::PaldConfig;
use crate::space::ConfigSpace;
use crate::whatif::{WhatIfModel, WorkloadSource};
use tempo_qs::{PoolScope, QsKind, SloSet, SloSpec};
use tempo_sim::{observe, ClusterSpec, NoiseModel, RmConfig, Schedule, TenantConfig};
use tempo_workload::synthetic::ec2_experiment_trace;
use tempo_workload::time::{Time, HOUR, MIN, SEC};
use tempo_workload::Trace;

/// Tenant ids in the experiment traces.
pub use tempo_workload::synthetic::ec2_tenant as tenant;

/// The 20-node EC2-like cluster: m3.xlarge-era Hadoop sizing of ~6 map and
/// ~3 reduce containers per node.
pub fn ec2_cluster() -> ClusterSpec {
    ClusterSpec::new(120, 60)
}

/// The expert-DBA starting configuration, encoding the production
/// pathologies the paper documents:
///
/// * the best-effort tenant is hard-capped at under half the cluster
///   (Figure 2's "configured resource limit prevents one tenant from using
///   the resources unused by the other");
/// * the deadline tenant preempts aggressively on both levels, killing the
///   best-effort tenant's long reduces and wasting their work (Figures 1
///   and 7);
/// * shares otherwise favour the deadline tenant 2:1 — sensible-looking,
///   brittle in practice.
pub fn expert_config() -> RmConfig {
    RmConfig::new(vec![
        TenantConfig::fair_default()
            .with_weight(2.0)
            .with_min_share(48, 24)
            .with_max_share(120, 60)
            .with_fair_timeout(45 * SEC)
            .with_min_timeout(15 * SEC),
        TenantConfig::fair_default()
            .with_weight(1.0)
            .with_min_share(0, 0)
            .with_max_share(96, 48),
    ])
}

/// The §8.2.1 SLO set: the deadline tenant's violations (with the given
/// slack) must stay at zero, while the best-effort tenant's average job
/// response time is minimized (ratcheted best-effort objective).
pub fn mixed_slos(slack: f64) -> SloSet {
    SloSet::new(vec![
        SloSpec::new(Some(tenant::DEADLINE), QsKind::DeadlineMiss { gamma: slack }).with_threshold(0.0),
        SloSpec::new(Some(tenant::BEST_EFFORT), QsKind::AvgResponseTime),
    ])
}

/// The §8.2.2 SLO set: §8.2.1 plus map/reduce container-utilization
/// constraints whose bounds `r_i` are "set according to the measured map and
/// reduce container utilization under the expert RM configuration".
pub fn utilization_slos(slack: f64, expert_map_util: f64, expert_reduce_util: f64) -> SloSet {
    SloSet::new(vec![
        SloSpec::new(Some(tenant::DEADLINE), QsKind::DeadlineMiss { gamma: slack }).with_threshold(0.0),
        SloSpec::new(Some(tenant::BEST_EFFORT), QsKind::AvgResponseTime),
        SloSpec::new(None, QsKind::Utilization { pool: PoolScope::Map, effective: true })
            .with_threshold(-expert_map_util),
        SloSpec::new(None, QsKind::Utilization { pool: PoolScope::Reduce, effective: true })
            .with_threshold(-expert_reduce_util),
    ])
}

/// The standard two-hour experiment trace (≈30k tasks at scale 1.0; use a
/// smaller scale with a proportionally smaller cluster for quick runs).
pub fn experiment_trace(scale: f64, seed: u64) -> Trace {
    ec2_experiment_trace(scale, 2 * HOUR, seed)
}

/// Measurement noise for "observed" runs in the end-to-end scenarios:
/// moderate duration jitter and rare failures.
pub fn observation_noise() -> NoiseModel {
    NoiseModel { duration_sigma: 0.12, task_failure_prob: 0.005, job_kill_prob: 0.0 }
}

/// A fully assembled §8.2 scenario: cluster, trace, SLOs and a Tempo
/// controller initialized from the expert configuration.
pub struct Scenario {
    pub cluster: ClusterSpec,
    pub trace: Trace,
    pub window: (Time, Time),
    pub tempo: Tempo,
}

impl Scenario {
    /// Builds the mixed deadline/best-effort scenario at a given workload
    /// scale (cluster scales along to keep contention comparable).
    pub fn mixed(scale: f64, slack: f64, seed: u64) -> Self {
        Self::with_slos(scale, mixed_slos(slack), seed)
    }

    /// Builds a scenario with custom SLOs.
    pub fn with_slos(scale: f64, slos: SloSet, seed: u64) -> Self {
        Self::with_load(scale, 1.0, slos, seed)
    }

    /// Builds a scenario whose workload intensity is `load_boost` × the
    /// cluster scale. The heavy-tailed job widths in the trace do not grow
    /// with the cluster, so relative contention *falls* as the stand-in
    /// cluster grows; full-scale experiments boost the workload (~1.4×) to
    /// keep pool pressure comparable to the paper's saturated clusters.
    pub fn with_load(scale: f64, load_boost: f64, slos: SloSet, seed: u64) -> Self {
        let cluster = ec2_cluster().scaled(scale);
        let trace = experiment_trace(scale * load_boost, seed);
        let window = (0, 2 * HOUR + 30 * MIN);
        let whatif = WhatIfModel::new(cluster.clone(), slos, WorkloadSource::Replay(trace.clone()), window);
        let space = ConfigSpace::new(2, &cluster);
        let loop_cfg = LoopConfig {
            pald: PaldConfig { probes: 5, trust_radius: 0.18, seed, ..Default::default() },
            ..Default::default()
        };
        let expert = scaled_expert(scale);
        let tempo = Tempo::new(space, whatif, loop_cfg, &expert);
        Scenario { cluster, trace, window, tempo }
    }

    /// Observes the trace on the stand-in cluster under the controller's
    /// current configuration (the "run the production workload for one
    /// interval" step).
    pub fn observe_current(&self, seed: u64) -> Schedule {
        observe(&self.trace, &self.cluster, &self.tempo.current_config(), observation_noise(), seed)
    }

    /// Runs `iters` control-loop iterations, returning the per-iteration
    /// records (Figure 6's x-axis).
    pub fn run(&mut self, iters: usize, seed: u64) -> Vec<crate::control::IterationRecord> {
        let mut out = Vec::with_capacity(iters);
        for i in 0..iters {
            let sched = self.observe_current(seed.wrapping_add(i as u64 * 7919));
            out.push(self.tempo.iterate(&sched));
        }
        out
    }
}

/// The expert configuration scaled to a smaller stand-in cluster.
pub fn scaled_expert(scale: f64) -> RmConfig {
    let base = expert_config();
    if (scale - 1.0).abs() < 1e-9 {
        return base;
    }
    let s = |v: u32| ((v as f64 * scale).round() as u32).max(1);
    RmConfig::new(
        base.tenants
            .iter()
            .map(|t| TenantConfig {
                weight: t.weight,
                min_share: [s(t.min_share[0]), s(t.min_share[1])],
                max_share: [s(t.max_share[0]), s(t.max_share[1])],
                fair_timeout: t.fair_timeout,
                min_timeout: t.min_timeout,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_config_is_valid_and_pathological() {
        let cfg = expert_config();
        assert!(cfg.validate().is_ok());
        let cluster = ec2_cluster();
        // Best-effort tenant cannot borrow the whole cluster.
        assert!(cfg.tenants[tenant::BEST_EFFORT as usize].max_share[0] < cluster.capacity(tempo_workload::TaskKind::Map));
        // Deadline tenant preempts on both levels.
        assert!(cfg.tenants[tenant::DEADLINE as usize].fair_timeout.is_some());
        assert!(cfg.tenants[tenant::DEADLINE as usize].min_timeout.is_some());
    }

    #[test]
    fn scaled_expert_shrinks_with_cluster() {
        let half = scaled_expert(0.5);
        assert!(half.validate().is_ok());
        assert_eq!(half.tenants[0].min_share, [24, 12]);
        assert_eq!(half.tenants[1].max_share, [48, 24]);
    }

    #[test]
    fn slo_sets_have_expected_arities() {
        assert_eq!(mixed_slos(0.25).len(), 2);
        assert_eq!(utilization_slos(0.0, 0.5, 0.5).len(), 4);
        // Utilization thresholds are the negated expert measurements.
        let set = utilization_slos(0.0, 0.6, 0.4);
        assert_eq!(set.slos[2].threshold, Some(-0.6));
        assert_eq!(set.slos[3].threshold, Some(-0.4));
    }

    #[test]
    fn small_scenario_smoke() {
        let mut sc = Scenario::mixed(0.08, 0.25, 42);
        let recs = sc.run(2, 1);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].observed_qs.len(), 2);
        assert!(recs[0].observed_qs[1] > 0.0, "best-effort AJR is positive");
        // Deadline-miss fraction is a valid fraction.
        assert!((0.0..=1.0).contains(&recs[0].observed_qs[0]));
    }
}
