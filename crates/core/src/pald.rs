//! PALD — PAreto Local Descent (§6 of the paper).
//!
//! PALD solves the multi-objective QS optimization problem (SP1)
//!
//! ```text
//! minimize   E[(f₁(x;w), …, f_k(x;w))]           (Pareto sense)
//! subject to E[f_i(x;w)] ≤ r_i  ∀i,   x ∈ X
//! ```
//!
//! through the proxy problem (SP2)
//!
//! ```text
//! minimize cᵀ [ f(x) − ρ·max(f(x), r) ]
//! ```
//!
//! whose every solution is a solution of (SP1) for any `c > 0`, `ρ < 1`
//! (Theorem 1 — strict monotonicity of the proxy in each `f_i`). One PALD
//! iteration:
//!
//! 1. **Probe**: evaluate a handful of configurations inside the trust
//!    region (the paper's Optimizer explores 5 candidates per control loop);
//! 2. **Fit**: estimate the Jacobian `J` of the QS vector at `x` by LOESS
//!    over the accumulated evaluation history (§6.3.1);
//! 3. **Weights `c`**: if constraints are violated, solve the max-min LP
//!    (improve the most-violated constraint fastest — max-min fairness over
//!    SLO satisfactions); otherwise use MGDA min-norm weights (common
//!    descent on every objective);
//! 4. **Penalty `ρ*`**: the closed form of §6.3.1, keeping the step from
//!    increasing any violated `f_i`;
//! 5. **Step**: projected SGD `x ← Π(x − α∇s)` onto `box ∩ trust ball`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use tempo_solver::loess::loess_jacobian;
use tempo_solver::mgda::min_norm_weights;
use tempo_solver::project::project_box_ball;
use tempo_solver::simplex::max_min_weights;
use tempo_solver::Matrix;

/// A (possibly noisy) vector-valued objective over normalized configuration
/// vectors: the QS functions `f(x; w)`. `sample` indexes the stochastic
/// draw (workload seed / noise seed); deterministic objectives ignore it.
pub trait QsObjective: Sync {
    fn dim(&self) -> usize;
    fn k(&self) -> usize;
    fn eval(&self, x: &[f64], sample: u64) -> Vec<f64>;

    /// Evaluates a batch of points whose sample ids are
    /// `first_sample..first_sample + points.len()`, in input order.
    ///
    /// The default is the serial loop. Implementations may evaluate
    /// concurrently (the What-if objective fans probes out across cores),
    /// but must return exactly what the serial loop would: `out[i] ==
    /// eval(points[i], first_sample + i)`, so the optimizer's recorded
    /// history — and therefore its trajectory — is identical under any
    /// thread count.
    fn eval_batch(&self, points: &[Vec<f64>], first_sample: u64) -> Vec<Vec<f64>> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| self.eval(p, first_sample.wrapping_add(i as u64)))
            .collect()
    }
}

/// Blanket adapter so closures can be used in tests and ablations.
impl<F> QsObjective for (usize, usize, F)
where
    F: Fn(&[f64], u64) -> Vec<f64> + Sync,
{
    fn dim(&self) -> usize {
        self.0
    }
    fn k(&self) -> usize {
        self.1
    }
    fn eval(&self, x: &[f64], sample: u64) -> Vec<f64> {
        (self.2)(x, sample)
    }
}

/// PALD hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PaldConfig {
    /// Trust-region radius in *normalized* distance (‖·‖/√d) — §4's maximum
    /// distance to the current configuration, set by the DBA's risk
    /// tolerance.
    pub trust_radius: f64,
    /// Candidate configurations probed per iteration (the paper uses 5).
    pub probes: usize,
    /// Step length as a fraction of the (raw) trust radius.
    pub step_frac: f64,
    /// LOESS bandwidth as a multiple of the raw trust radius.
    pub bandwidth_mult: f64,
    /// Cap `ε` for the max-min LP's `z` variable. The default (∞) leaves z
    /// bounded only by the Σc ≤ 1 scale constraint, which yields the
    /// genuine max-min weighting; a binding finite cap degenerates c.
    pub epsilon: f64,
    /// RNG seed for probe placement.
    pub seed: u64,
}

impl Default for PaldConfig {
    fn default() -> Self {
        Self {
            trust_radius: 0.15,
            probes: 5,
            step_frac: 0.6,
            bandwidth_mult: 2.5,
            epsilon: f64::INFINITY,
            seed: 0,
        }
    }
}

/// Diagnostics of one PALD iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct PaldStep {
    /// The proposed next configuration.
    pub x_new: Vec<f64>,
    /// LOESS-fitted QS values at the current point.
    pub fitted: Vec<f64>,
    /// Objective weights used (max-min LP or MGDA).
    pub c: Vec<f64>,
    /// The proxy penalty ρ* (0 when nothing is violated).
    pub rho: f64,
    /// Which constraints were treated as violated (`f_i ≥ r_i`).
    pub violated: Vec<bool>,
    /// ‖∇s‖ before normalization (0 ⇒ stationary, no move proposed).
    pub grad_norm: f64,
}

/// Probe-placement RNG with a draw odometer.
///
/// Serializing the generator's internal state would couple snapshots to the
/// vendored RNG's representation; counting `next_u64` draws instead makes a
/// [`PaldSnapshot`] portable — restore re-seeds from `config.seed` and
/// replays the stream to the recorded position, which works for any
/// deterministic generator behind the `rand` facade.
struct CountedRng {
    inner: StdRng,
    draws: u64,
}

impl CountedRng {
    fn seeded(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed), draws: 0 }
    }

    /// Re-seeds and fast-forwards the stream to `draws`.
    fn replayed(seed: u64, draws: u64) -> Self {
        let mut rng = Self::seeded(seed);
        for _ in 0..draws {
            rng.next_u64();
        }
        rng
    }
}

impl RngCore for CountedRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Resumable optimizer state: the evaluation history LOESS fits over plus
/// the sample/RNG stream positions. Restoring into a [`Pald`] built from the
/// same [`PaldConfig`] continues bit-identically to the never-snapshotted
/// run ([`Pald::restore`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaldSnapshot {
    pub history_x: Vec<Vec<f64>>,
    pub history_f: Vec<Vec<f64>>,
    pub sample_counter: u64,
    /// `next_u64` draws consumed by probe placement so far.
    pub rng_draws: u64,
}

/// The PALD optimizer. Holds the evaluation history that LOESS fits over;
/// one instance should live as long as the control loop that drives it.
pub struct Pald {
    pub config: PaldConfig,
    history_x: Vec<Vec<f64>>,
    history_f: Vec<Vec<f64>>,
    rng: CountedRng,
    sample_counter: u64,
}

impl Pald {
    pub fn new(config: PaldConfig) -> Self {
        assert!(config.trust_radius > 0.0 && config.trust_radius <= 1.0, "trust radius in (0,1]");
        assert!(config.probes >= 1, "need at least one probe");
        assert!(config.step_frac > 0.0, "step fraction must be positive");
        let rng = CountedRng::seeded(config.seed);
        Self { config, history_x: Vec::new(), history_f: Vec::new(), rng, sample_counter: 0 }
    }

    /// Captures the optimizer's resumable state (history + stream
    /// positions). Pair with [`Pald::restore`] for warm daemon restarts.
    pub fn snapshot(&self) -> PaldSnapshot {
        PaldSnapshot {
            history_x: self.history_x.clone(),
            history_f: self.history_f.clone(),
            sample_counter: self.sample_counter,
            rng_draws: self.rng.draws,
        }
    }

    /// Rebuilds an optimizer from a snapshot taken under the same `config`.
    /// The probe RNG is re-seeded from `config.seed` and fast-forwarded to
    /// the snapshot's draw position, so subsequent [`Pald::step`]s are
    /// bit-identical to a never-snapshotted instance.
    pub fn restore(config: PaldConfig, snapshot: PaldSnapshot) -> Self {
        let mut pald = Pald::new(config);
        pald.rng = CountedRng::replayed(pald.config.seed, snapshot.rng_draws);
        pald.history_x = snapshot.history_x;
        pald.history_f = snapshot.history_f;
        pald.sample_counter = snapshot.sample_counter;
        pald
    }

    /// Number of stored evaluations.
    pub fn history_len(&self) -> usize {
        self.history_x.len()
    }

    /// The full evaluation history `(x, f)` in record order (diagnostics and
    /// the thread-count determinism suite).
    pub fn history(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.history_x, &self.history_f)
    }

    /// Records an externally observed evaluation (e.g. the control loop's
    /// measurement of the live cluster) so LOESS can use it.
    pub fn record(&mut self, x: Vec<f64>, f: Vec<f64>) {
        self.history_x.push(x);
        self.history_f.push(f);
    }

    /// Drops all stored evaluations. Call when the objective itself changes
    /// (e.g. the control loop re-targets a new workload window): evaluations
    /// of *different* objectives at the same x would otherwise poison the
    /// LOESS fit.
    pub fn clear_history(&mut self) {
        self.history_x.clear();
        self.history_f.clear();
    }

    fn raw_radius(&self, dim: usize) -> f64 {
        self.config.trust_radius * (dim as f64).sqrt()
    }

    /// Samples a probe point uniformly from `ball(x, raw_radius) ∩ box`.
    fn sample_probe(&mut self, x: &[f64], radius: f64) -> Vec<f64> {
        let d = x.len();
        // Uniform in the ball: Gaussian direction scaled by U^(1/d).
        let mut dir: Vec<f64> = (0..d).map(|_| standard_normal(&mut self.rng)).collect();
        let n = tempo_solver::norm(&dir);
        if n > 0.0 {
            for v in &mut dir {
                *v /= n;
            }
        }
        let u: f64 = self.rng.gen::<f64>();
        let r = radius * u.powf(1.0 / d as f64);
        let mut p: Vec<f64> = x.iter().zip(&dir).map(|(xi, di)| xi + r * di).collect();
        project_box_ball(&mut p, 0.0, 1.0, x, radius);
        p
    }

    /// Runs one PALD iteration at `x` with constraint bounds `r` (length k;
    /// use the current attained value for best-effort SLOs — §6.1's
    /// ratchet). Probes the objective, refits gradients, and proposes the
    /// next configuration.
    pub fn step<O: QsObjective + ?Sized>(
        &mut self,
        objective: &O,
        x: &[f64],
        r: &[f64],
    ) -> PaldStep {
        let dim = objective.dim();
        let k = objective.k();
        assert_eq!(x.len(), dim, "x dimension mismatch");
        assert_eq!(r.len(), k, "r dimension mismatch");
        let radius = self.raw_radius(dim);
        let bandwidth = self.config.bandwidth_mult * radius;

        // 1. Probe: the current point plus `probes` candidates in the trust
        //    region; keep probing (bounded) until LOESS has enough support.
        let mut new_points: Vec<Vec<f64>> = vec![x.to_vec()];
        for _ in 0..self.config.probes {
            new_points.push(self.sample_probe(x, radius));
        }
        let needed_support = dim + 2;
        let have_near = self
            .history_x
            .iter()
            .filter(|hx| tempo_solver::norm(&tempo_solver::linalg::sub(hx, x)) < bandwidth)
            .count();
        let extra = needed_support.saturating_sub(have_near + new_points.len());
        for _ in 0..extra {
            new_points.push(self.sample_probe(x, radius));
        }
        // Sample ids are pre-assigned in probe order, then the whole batch is
        // handed to the objective at once — a parallel objective evaluates
        // the probes concurrently, yet the recorded history below is
        // byte-identical to the old one-by-one loop.
        let first_sample = self.sample_counter;
        self.sample_counter += new_points.len() as u64;
        let evals = objective.eval_batch(&new_points, first_sample);
        assert_eq!(evals.len(), new_points.len(), "objective returned wrong batch size");
        let mut new_evals = 0;
        let mut f_center: Option<Vec<f64>> = None;
        for (p, f) in new_points.into_iter().zip(evals) {
            assert_eq!(f.len(), k, "objective returned wrong arity");
            if f_center.is_none() {
                f_center = Some(f.clone()); // new_points[0] is x itself
            }
            self.record(p, f);
            new_evals += 1;
        }
        let f_center = f_center.expect("center point evaluated");

        // 2. Fit the Jacobian by LOESS over in-bandwidth history.
        let Some((jac, fitted)) = loess_jacobian(&self.history_x, &self.history_f, x, bandwidth)
        else {
            // Degenerate geometry: stay put this iteration.
            return PaldStep {
                x_new: x.to_vec(),
                fitted: vec![0.0; k],
                c: vec![1.0 / k as f64; k],
                rho: 0.0,
                violated: vec![false; k],
                grad_norm: 0.0,
            };
        };

        // 3. Violated set and the weight vector c. The paper's §6.3.1
        //    formulas quantify over `i : ∇f_i ≠ 0 ∧ f_i ≥ r_i`: a violated
        //    constraint whose gradient (numerically) vanishes cannot be
        //    improved locally and would only degenerate the LP (its Gram row
        //    is ~0, forcing z ≤ 0), so it is excluded from the rows — it
        //    still receives weight through the other objectives' columns.
        let violated: Vec<bool> = fitted.iter().zip(r).map(|(f, ri)| f >= ri).collect();
        let gram = jac.gram();
        let gnorm_max = (0..k).map(|i| gram[(i, i)].sqrt()).fold(0.0_f64, f64::max);
        let grad_alive = |i: usize| gram[(i, i)].sqrt() > (1e-6 * gnorm_max).max(1e-12);
        let vrows: Vec<usize> = (0..k).filter(|&i| violated[i] && grad_alive(i)).collect();
        let any_violated = !vrows.is_empty();
        let c = if any_violated {
            // Max-min LP over the (live) violated rows: J_V Jᵀ c ≥ z·1.
            let mut g_v = Matrix::zeros(vrows.len(), k);
            for (a, &i) in vrows.iter().enumerate() {
                for j in 0..k {
                    g_v[(a, j)] = gram[(i, j)];
                }
            }
            max_min_weights(&g_v, self.config.epsilon)
                .unwrap_or_else(|| vec![1.0 / (k as f64).sqrt(); k])
        } else {
            // Feasible (or only dead-gradient violations): MGDA min-norm
            // weights descend every objective.
            min_norm_weights(&jac, 300).weights
        };

        // 4. ρ* by the §6.3.1 closed form (0 when nothing is violated),
        //    over the live violated rows only.
        let live_violated: Vec<bool> = (0..k).map(|i| violated[i] && grad_alive(i)).collect();
        let rho = if any_violated { optimal_rho(&gram, &c, &live_violated) } else { 0.0 };

        // 5. Projected SGD step on ∇s = Σ_{i∉V} c_i g_i + (1−ρ) Σ_{i∈V} c_i g_i.
        let mut weighted = vec![0.0; k];
        for i in 0..k {
            weighted[i] = if violated[i] { (1.0 - rho) * c[i] } else { c[i] };
        }
        let grad = jac.matvec_t(&weighted);
        let grad_norm = tempo_solver::norm(&grad);
        let mut x_sgd = x.to_vec();
        if grad_norm > 1e-12 {
            let step = self.config.step_frac * radius / grad_norm;
            for (xi, gi) in x_sgd.iter_mut().zip(&grad) {
                *xi -= step * gi;
            }
            project_box_ball(&mut x_sgd, 0.0, 1.0, x, radius);
            let s = self.sample_counter;
            self.sample_counter += 1;
            let f_sgd = objective.eval(&x_sgd, s);
            self.record(x_sgd.clone(), f_sgd);
            new_evals += 1;
        }

        // 6. Pareto-improving selection (Figure 3, step 8): among everything
        //    evaluated in the trust region this iteration — the SGD proposal
        //    and the probes — install the candidate with the lowest proxy
        //    objective s(f) = Σ c_i [f_i − ρ·max(f_i, r_i)], staying put if
        //    the fitted current value already wins. By Theorem 1, a strictly
        //    smaller proxy value cannot be Pareto-dominated by the current
        //    point.
        let proxy = |f: &[f64]| -> f64 {
            f.iter()
                .zip(&c)
                .zip(r)
                .map(|((fi, ci), ri)| {
                    let cap = if ri.is_finite() { fi.max(*ri) } else { *fi };
                    ci * (fi - rho * cap)
                })
                .sum()
        };
        // Candidates are judged on raw evaluations throughout — comparing a
        // raw candidate against the *fitted* center value would freeze the
        // loop whenever the local fit is biased low.
        let mut best_x = x.to_vec();
        let mut best_s = proxy(&f_center);
        for (hx, hf) in self.history_x.iter().zip(&self.history_f).rev().take(new_evals) {
            let d = tempo_solver::norm(&tempo_solver::linalg::sub(hx, x));
            if d > radius + 1e-9 {
                continue;
            }
            let s = proxy(hf);
            if s < best_s - 1e-12 {
                best_s = s;
                best_x = hx.clone();
            }
        }

        PaldStep { x_new: best_x, fitted, c, rho, violated, grad_norm }
    }
}

/// The optimal proxy penalty ρ* of §6.3.1.
///
/// Feasible range: the update must not increase any violated `f_i`, i.e.
/// `∇f_iᵀ∇s ≥ 0` for all `i ∈ V`; within that range, ρ maximizes the
/// worst-case improvement `min_{i∈V} ∇f_iᵀ∇s`. Both the bounds and the
/// objective are linear in ρ, so the 1-D concave problem is solved by a
/// dense scan (k is tiny). Falls back to 0 when conditions (9) fail (the
/// paper guarantees them only for convex QS with an MGDA-style c).
fn optimal_rho(gram: &Matrix, c: &[f64], violated: &[bool]) -> f64 {
    let k = c.len();
    let vset: Vec<usize> = (0..k).filter(|&i| violated[i]).collect();
    if vset.is_empty() {
        return 0.0;
    }
    // num_i = Σ_j c_j ⟨g_i, g_j⟩ ; vnum_i = Σ_{j∈V} c_j ⟨g_i, g_j⟩.
    let mut num = Vec::with_capacity(vset.len());
    let mut vnum = Vec::with_capacity(vset.len());
    for &i in &vset {
        let mut n = 0.0;
        let mut vn = 0.0;
        for j in 0..k {
            let term = c[j] * gram[(i, j)];
            n += term;
            if violated[j] {
                vn += term;
            }
        }
        num.push(n);
        vnum.push(vn);
    }
    // Conditions (9): Σ_j c_j⟨g_i, g_j⟩ ≥ 0 for all violated i.
    if num.iter().any(|&n| n < 0.0) {
        return 0.0;
    }
    // Feasible interval for ρ from num_i − ρ·vnum_i ≥ 0.
    let mut lo = -10.0_f64;
    let mut hi = 0.999_f64;
    for (n, vn) in num.iter().zip(&vnum) {
        if *vn > 1e-12 {
            hi = hi.min(n / vn);
        } else if *vn < -1e-12 {
            lo = lo.max(n / vn);
        }
    }
    if lo > hi {
        return 0.0;
    }
    // Maximize min_i (num_i − ρ·vnum_i) over [lo, hi] by dense scan.
    let mut best_rho = 0.0_f64.clamp(lo, hi);
    let mut best_obj = f64::NEG_INFINITY;
    let steps = 200;
    for s in 0..=steps {
        let rho = lo + (hi - lo) * s as f64 / steps as f64;
        let obj = num.iter().zip(&vnum).map(|(n, vn)| n - rho * vn).fold(f64::INFINITY, f64::min);
        if obj > best_obj + 1e-15 {
            best_obj = obj;
            best_rho = rho;
        }
    }
    best_rho
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller (same rationale as the workload samplers: fixed RNG
    // consumption per draw keeps runs reproducible).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Convenience driver: runs `iters` PALD iterations from `x0`, returning the
/// trajectory of accepted points (used by tests and the ablation benches;
/// the production path is the control loop, which interleaves observation
/// and reversion).
pub fn run_pald<O: QsObjective + ?Sized>(
    objective: &O,
    config: PaldConfig,
    x0: Vec<f64>,
    r: &[f64],
    iters: usize,
) -> Vec<PaldStep> {
    let mut pald = Pald::new(config);
    let mut x = x0;
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        let step = pald.step(objective, &x, r);
        x = step.x_new.clone();
        out.push(step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_solver::linalg::sub;
    use tempo_solver::norm;

    /// Noisy two-objective quadratic: f1 = ‖x−a‖², f2 = ‖x−b‖². The Pareto
    /// set is the segment [a, b].
    fn two_quadratics(noise: f64) -> impl QsObjective {
        let a = vec![0.2, 0.2];
        let b = vec![0.8, 0.8];
        (2usize, 2usize, move |x: &[f64], sample: u64| {
            let jitter = |s: u64| {
                // Deterministic pseudo-noise keyed by the sample index.
                let h = s.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
                noise * (((h % 1000) as f64 / 1000.0) - 0.5)
            };
            let f1 = norm(&sub(x, &a)).powi(2) + jitter(sample);
            let f2 = norm(&sub(x, &b)).powi(2) + jitter(sample.wrapping_add(1));
            vec![f1, f2]
        })
    }

    #[test]
    fn converges_to_pareto_segment() {
        let obj = two_quadratics(0.0);
        let steps = run_pald(
            &obj,
            PaldConfig { trust_radius: 0.12, probes: 6, seed: 3, ..Default::default() },
            vec![0.9, 0.1],
            &[10.0, 10.0], // both satisfied: pure Pareto descent
            25,
        );
        let last = steps.last().unwrap();
        // Distance to the segment [a,b] (the diagonal x₁=x₂ between 0.2 and
        // 0.8): for points with coordinates in range, it is |x₁−x₂|/√2.
        let x = &last.x_new;
        let seg_dist = (x[0] - x[1]).abs() / 2f64.sqrt();
        assert!(seg_dist < 0.1, "far from Pareto set: {x:?}");
        assert!(x[0] > 0.1 && x[0] < 0.9, "inside the segment span: {x:?}");
    }

    #[test]
    fn respects_constraint_via_max_min() {
        // f1 constrained tightly (r=0.05 ⇒ stay near a), f2 best-effort.
        let obj = two_quadratics(0.0);
        let steps = run_pald(
            &obj,
            PaldConfig { trust_radius: 0.12, probes: 6, seed: 4, ..Default::default() },
            vec![0.9, 0.1],
            &[0.05, 10.0],
            30,
        );
        let last = steps.last().unwrap();
        let f = obj.eval(&last.x_new, u64::MAX);
        assert!(f[0] < 0.12, "constraint not driven down: f1={}", f[0]);
    }

    #[test]
    fn noisy_objective_still_improves() {
        let obj = two_quadratics(0.05);
        let x0 = vec![0.95, 0.05];
        let f0 = obj.eval(&x0, u64::MAX);
        let steps = run_pald(
            &obj,
            PaldConfig { trust_radius: 0.1, probes: 8, seed: 5, ..Default::default() },
            x0,
            &[10.0, 10.0],
            25,
        );
        let xf = &steps.last().unwrap().x_new;
        let ff = obj.eval(xf, u64::MAX);
        // Σf must drop markedly despite the noise (LOESS smoothing).
        let s0: f64 = f0.iter().sum();
        let sf: f64 = ff.iter().sum();
        assert!(sf < 0.6 * s0, "no improvement under noise: {s0} → {sf}");
    }

    #[test]
    fn step_stays_in_trust_region_and_box() {
        let obj = two_quadratics(0.0);
        let mut pald =
            Pald::new(PaldConfig { trust_radius: 0.05, probes: 5, seed: 6, ..Default::default() });
        let x = vec![0.5, 0.02];
        let step = pald.step(&obj, &x, &[10.0, 10.0]);
        let raw_radius = 0.05 * (2f64).sqrt();
        assert!(norm(&sub(&step.x_new, &x)) <= raw_radius + 1e-9);
        assert!(step.x_new.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn stationary_point_proposes_no_move() {
        // Single objective with minimum at the current point.
        let obj = (2usize, 1usize, |x: &[f64], _s: u64| {
            vec![(x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2)]
        });
        let mut pald =
            Pald::new(PaldConfig { trust_radius: 0.2, probes: 12, seed: 7, ..Default::default() });
        let step = pald.step(&obj, &[0.5, 0.5], &[10.0]);
        // Every trust-region candidate has a worse proxy value than the
        // minimum itself, so the Pareto-improving selection stays put.
        assert!(norm(&sub(&step.x_new, &[0.5, 0.5])) < 1e-9, "{:?}", step.x_new);
    }

    #[test]
    fn violated_constraints_get_nonzero_weights() {
        let obj = two_quadratics(0.0);
        let mut pald = Pald::new(PaldConfig { seed: 8, ..Default::default() });
        // Both constraints violated at this point with r = 0.
        let step = pald.step(&obj, &[0.5, 0.5], &[0.0, 0.0]);
        assert!(step.violated.iter().all(|&v| v));
        assert!(step.c.iter().all(|&ci| ci >= -1e-9));
        assert!(step.c.iter().sum::<f64>() > 0.0);
        assert!(step.rho < 1.0);
    }

    #[test]
    fn history_accumulates_across_steps() {
        let obj = two_quadratics(0.0);
        let mut pald = Pald::new(PaldConfig { probes: 5, seed: 9, ..Default::default() });
        let mut x = vec![0.3, 0.7];
        let h0 = pald.history_len();
        for _ in 0..3 {
            let s = pald.step(&obj, &x, &[10.0, 10.0]);
            x = s.x_new;
        }
        assert!(pald.history_len() >= h0 + 3 * 6, "probes + center recorded each step");
    }

    #[test]
    fn optimal_rho_zero_when_conditions_fail() {
        // Gram with a negative row sum under c → conditions (9) fail.
        let gram = Matrix::from_rows(&[vec![1.0, -3.0], vec![-3.0, 1.0]]);
        let rho = optimal_rho(&gram, &[0.5, 0.5], &[true, true]);
        assert_eq!(rho, 0.0);
    }

    #[test]
    fn optimal_rho_bounded_below_one() {
        let gram = Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]);
        let rho = optimal_rho(&gram, &[0.7, 0.3], &[true, false]);
        assert!(rho < 1.0);
    }

    #[test]
    #[should_panic(expected = "trust radius")]
    fn rejects_bad_radius() {
        let _ = Pald::new(PaldConfig { trust_radius: 0.0, ..Default::default() });
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let obj = two_quadratics(0.02);
        let config = PaldConfig { trust_radius: 0.12, probes: 5, seed: 21, ..Default::default() };
        let r = [10.0, 10.0];

        // Reference: uninterrupted run.
        let mut straight = Pald::new(config.clone());
        let mut x = vec![0.85, 0.15];
        for _ in 0..3 {
            x = straight.step(&obj, &x, &r).x_new;
        }
        let mid = straight.snapshot();
        let json = serde_json::to_string(&mid).unwrap();
        let parsed: PaldSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, mid, "snapshot survives its wire encoding");

        // Restored copy must walk the same trajectory as the original.
        let mut resumed = Pald::restore(config, parsed);
        let mut xr = x.clone();
        for _ in 0..3 {
            let a = straight.step(&obj, &x, &r);
            let b = resumed.step(&obj, &xr, &r);
            assert_eq!(a, b, "restored optimizer diverged");
            x = a.x_new;
            xr = b.x_new;
        }
        assert_eq!(straight.history(), resumed.history());
    }
}
