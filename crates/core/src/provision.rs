//! Resource provisioning: estimating SLOs on a differently-sized cluster
//! (§8.2.4).
//!
//! The use case: traces were collected on the *current* cluster; the
//! operator wants to know the SLOs the same workload would see on a bigger
//! (or smaller) cluster before paying for it. Tempo answers by
//! reconstructing the workload from the observed task schedule and replaying
//! it through the Schedule Predictor against the hypothetical cluster.
//!
//! The reconstruction is deliberately what an operator can actually measure
//! from RM logs: a task's "duration" is the launch→finish span of its
//! successful attempt. On a congested small cluster that span absorbs
//! shuffle waits and noise, so estimates degrade as the source cluster
//! shrinks — exactly the error growth Figure 12 reports (≤ ~20% from a
//! half-size cluster, ≤ ~35% from a quarter-size one).

use tempo_qs::SloSet;
use tempo_sim::{predict, ClusterSpec, RmConfig, Schedule};
use tempo_workload::time::Time;
use tempo_workload::{JobSpec, TaskSpec, Trace};

/// Rebuilds a replayable trace from an observed schedule.
///
/// Jobs keep their observed submission times and deadlines; every task's
/// duration is taken from its completed attempt's occupancy (launch→end).
/// Tasks that never completed (cut off at the horizon / killed jobs) are
/// dropped, as are jobs left with no tasks.
pub fn reconstruct_trace(observed: &Schedule) -> Trace {
    use std::collections::HashMap;
    let mut tasks_by_job: HashMap<u64, Vec<TaskSpec>> = HashMap::new();
    for t in observed.tasks() {
        let Some(done) =
            t.attempts.iter().find(|a| a.outcome == tempo_sim::AttemptOutcome::Completed)
        else {
            continue;
        };
        let duration = (done.end - done.launch).max(1);
        tasks_by_job.entry(t.job).or_default().push(TaskSpec { kind: t.kind, duration });
    }
    let mut jobs = Vec::new();
    for j in observed.jobs() {
        let Some(tasks) = tasks_by_job.remove(&j.id) else { continue };
        if tasks.is_empty() {
            continue;
        }
        jobs.push(JobSpec {
            id: j.id,
            tenant: j.tenant,
            submit: j.submit,
            deadline: j.deadline,
            slowstart: 1.0,
            tasks,
        });
    }
    let mut trace = Trace::new(jobs);
    trace.sort_by_submit();
    trace
}

/// Estimates the QS vector the reconstructed workload would attain on
/// `target` under `config`.
pub fn estimate_slos(
    observed: &Schedule,
    target: &ClusterSpec,
    config: &RmConfig,
    slos: &SloSet,
    window: (Time, Time),
) -> Vec<f64> {
    let trace = reconstruct_trace(observed);
    let schedule = predict(&trace, target, config);
    slos.evaluate(&schedule, window.0, window.1)
}

/// Signed relative estimation errors in percent:
/// `100 × (estimate − truth) / |truth|` per SLO (0 when the truth is 0 and
/// the estimate matches; ±∞ clamped to ±1000 for degenerate truths).
pub fn estimation_error_pct(estimated: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(estimated.len(), truth.len(), "QS arity mismatch");
    estimated
        .iter()
        .zip(truth)
        .map(|(e, t)| {
            if t.abs() < 1e-12 {
                if e.abs() < 1e-12 {
                    0.0
                } else {
                    1000.0_f64.copysign(*e)
                }
            } else {
                (100.0 * (e - t) / t.abs()).clamp(-1000.0, 1000.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_qs::{PoolScope, QsKind, SloSpec};
    use tempo_sim::{observe, NoiseModel, SimOptions};
    use tempo_workload::synthetic::ec2_experiment_trace;
    use tempo_workload::time::{HOUR, MIN, SEC};
    use tempo_workload::TaskKind;

    fn slos() -> SloSet {
        SloSet::new(vec![
            SloSpec::new(Some(1), QsKind::AvgResponseTime),
            SloSpec::new(None, QsKind::Utilization { pool: PoolScope::Map, effective: false }),
        ])
    }

    #[test]
    fn reconstruction_preserves_job_structure() {
        let trace = ec2_experiment_trace(0.2, 30 * MIN, 1);
        let cluster = ClusterSpec::new(24, 12);
        let observed = predict(&trace, &cluster, &RmConfig::fair(2));
        let rebuilt = reconstruct_trace(&observed);
        assert_eq!(rebuilt.len(), trace.len());
        assert!(rebuilt.validate().is_ok());
        for (orig, back) in trace.jobs.iter().zip(&rebuilt.jobs) {
            assert_eq!(orig.id, back.id);
            assert_eq!(orig.submit, back.submit);
            assert_eq!(orig.deadline, back.deadline);
            assert_eq!(orig.tasks.len(), back.tasks.len());
        }
    }

    #[test]
    fn map_durations_survive_reconstruction_exactly() {
        // On an uncontended cluster with no noise, map occupancy == duration.
        let trace = ec2_experiment_trace(0.1, 20 * MIN, 2);
        let cluster = ClusterSpec::new(400, 200);
        let observed = predict(&trace, &cluster, &RmConfig::fair(2));
        let rebuilt = reconstruct_trace(&observed);
        for (orig, back) in trace.jobs.iter().zip(&rebuilt.jobs) {
            let om: Vec<_> =
                orig.tasks.iter().filter(|t| t.kind == TaskKind::Map).map(|t| t.duration).collect();
            let mut bm: Vec<_> =
                back.tasks.iter().filter(|t| t.kind == TaskKind::Map).map(|t| t.duration).collect();
            bm.sort_unstable();
            let mut om = om;
            om.sort_unstable();
            assert_eq!(om, bm, "job {}", orig.id);
        }
    }

    #[test]
    fn estimation_from_same_cluster_is_accurate() {
        let trace = ec2_experiment_trace(0.3, 40 * MIN, 3);
        let target = ClusterSpec::new(32, 16);
        let cfg = RmConfig::fair(2);
        let window = (0, HOUR);
        let truth = {
            let s = predict(&trace, &target, &cfg);
            slos().evaluate(&s, window.0, window.1)
        };
        // Observe on the same (target-sized) cluster with light noise.
        let observed = observe(
            &trace,
            &target,
            &cfg,
            NoiseModel { duration_sigma: 0.05, task_failure_prob: 0.0, job_kill_prob: 0.0 },
            7,
        );
        let est = estimate_slos(&observed, &target, &cfg, &slos(), window);
        let errs = estimation_error_pct(&est, &truth);
        for (i, e) in errs.iter().enumerate() {
            assert!(e.abs() < 15.0, "SLO {i} error {e}%");
        }
    }

    #[test]
    fn estimation_from_smaller_cluster_degrades() {
        // The operator only has the schedule observed *within the collection
        // window* (horizon-bounded): on an overloaded quarter-size cluster
        // the backlog leaves jobs unfinished and their tasks drop out of the
        // reconstruction, so the estimate degrades — Figure 12's mechanism.
        let trace = ec2_experiment_trace(0.3, 40 * MIN, 4);
        let target = ClusterSpec::new(32, 16);
        let cfg = RmConfig::fair(2);
        let window = (0, HOUR);
        let truth = {
            let s = predict(&trace, &target, &cfg);
            slos().evaluate(&s, window.0, window.1)
        };
        let noise = NoiseModel { duration_sigma: 0.05, task_failure_prob: 0.0, job_kill_prob: 0.0 };
        let err_of = |frac: f64, seed: u64| -> f64 {
            let src = target.scaled(frac);
            let observed = tempo_sim::simulate(
                &trace,
                &src,
                &cfg,
                &SimOptions { horizon: Some(window.1), noise, seed },
            );
            let est = estimate_slos(&observed, &target, &cfg, &slos(), window);
            estimation_error_pct(&est, &truth).iter().map(|e| e.abs()).fold(0.0, f64::max)
        };
        let same = err_of(1.0, 8);
        let quarter = err_of(0.25, 8);
        assert!(
            quarter > same,
            "quarter-cluster estimate should be worse: same {same}%, quarter {quarter}%"
        );
    }

    #[test]
    fn error_pct_edge_cases() {
        assert_eq!(estimation_error_pct(&[1.0], &[1.0]), vec![0.0]);
        assert!((estimation_error_pct(&[1.2], &[1.0])[0] - 20.0).abs() < 1e-9);
        assert_eq!(estimation_error_pct(&[0.0], &[0.0]), vec![0.0]);
        assert_eq!(estimation_error_pct(&[0.5], &[0.0]), vec![1000.0]);
        assert_eq!(estimation_error_pct(&[-0.5], &[0.0]), vec![-1000.0]);
        // Negative truths (negated QS metrics) use |truth| in the
        // denominator so the sign of the error is meaningful.
        let e = estimation_error_pct(&[-0.8], &[-1.0]);
        assert!((e[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_jobs_do_not_crash_reconstruction() {
        // Horizon cutoff leaves unfinished tasks; they are dropped.
        let trace = ec2_experiment_trace(0.2, 30 * MIN, 5);
        let cluster = ClusterSpec::new(8, 4);
        let observed = tempo_sim::simulate(
            &trace,
            &cluster,
            &RmConfig::fair(2),
            &SimOptions::default().with_horizon(10 * MIN),
        );
        let rebuilt = reconstruct_trace(&observed);
        assert!(rebuilt.len() <= trace.len());
        assert!(rebuilt.validate().is_ok());
        assert!(rebuilt.jobs.iter().all(|j| !j.tasks.is_empty()));
        // At least a second of work survived.
        assert!(rebuilt.jobs.iter().map(|j| j.total_work()).sum::<u64>() > SEC);
    }
}
