//! Behavioural tests of the optimizer stack on synthetic objectives where
//! ground truth is known: Pareto sets, max-min fairness under infeasibility,
//! and the ratchet dynamics of best-effort SLOs.

use tempo_core::pald::{run_pald, Pald, PaldConfig, QsObjective};
use tempo_solver::linalg::sub;
use tempo_solver::norm;

/// Three conflicting quadratic objectives centred on a triangle: the Pareto
/// set is the triangle's convex hull. PALD from any corner should end inside
/// (near) the hull.
#[test]
fn converges_into_the_pareto_hull_of_three_objectives() {
    let centres = [[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]];
    let obj = (2usize, 3usize, move |x: &[f64], _s: u64| {
        centres
            .iter()
            .map(|c| x.iter().zip(c).map(|(xi, ci)| (xi - ci) * (xi - ci)).sum())
            .collect()
    });
    let steps = run_pald(
        &obj,
        PaldConfig { trust_radius: 0.12, probes: 6, seed: 11, ..Default::default() },
        vec![0.05, 0.95],
        &[10.0, 10.0, 10.0],
        30,
    );
    let x = &steps.last().expect("steps").x_new;
    // Inside (or within 0.1 of) the triangle: barycentric sign test.
    let sign =
        |a: [f64; 2], b: [f64; 2]| (x[0] - b[0]) * (a[1] - b[1]) - (a[0] - b[0]) * (x[1] - b[1]);
    let d1 = sign(centres[0], centres[1]);
    let d2 = sign(centres[1], centres[2]);
    let d3 = sign(centres[2], centres[0]);
    let has_neg = d1 < -0.05 || d2 < -0.05 || d3 < -0.05;
    let has_pos = d1 > 0.05 || d2 > 0.05 || d3 > 0.05;
    assert!(!(has_neg && has_pos), "final point {x:?} far outside the Pareto hull");
}

/// Infeasible constraints: both `f1 ≤ 0.01` and `f2 ≤ 0.01` cannot hold
/// simultaneously (optima 0.6 apart). The max-min weighting must pull the
/// point *off* the satisfied constraint's optimum toward a compromise: the
/// worst violation shrinks substantially and neither constraint is
/// sacrificed. (PALD's LP balances improvement *rates*, so the fixed point
/// is a rate-balanced compromise between the optima — a weakly
/// Pareto-optimal point — not necessarily the exact level-balanced
/// midpoint.)
#[test]
fn infeasible_constraints_reach_a_balanced_compromise() {
    let a = [0.2, 0.5];
    let b = [0.8, 0.5];
    let obj = (2usize, 2usize, move |x: &[f64], _s: u64| {
        vec![norm(&sub(x, &a)).powi(2), norm(&sub(x, &b)).powi(2)]
    });
    let x0 = vec![0.25, 0.5]; // starts close to a: f1 tiny, f2 badly violated
    let f0 = obj.eval(&x0, 0);
    let worst0 = f0[0].max(f0[1]);
    let steps = run_pald(
        &obj,
        PaldConfig { trust_radius: 0.1, probes: 6, seed: 3, ..Default::default() },
        x0,
        &[0.01, 0.01],
        60,
    );
    let x = &steps.last().expect("steps").x_new;
    let f = obj.eval(x, 0);
    let worst = f[0].max(f[1]);
    assert!(worst < 0.7 * worst0, "largest violation should shrink: {worst0} → {worst} at {x:?}");
    assert!(x[0] > 0.3 && x[0] < 0.7, "compromise strictly between the optima: {x:?}");
    assert!(f[0] < 0.15 && f[1] < 0.25, "neither constraint sacrificed: {f:?}");
}

/// The PaldStep diagnostics expose a consistent picture: violated flags
/// match fitted-vs-r, c lives on the (scaled) simplex, ρ < 1.
#[test]
fn step_diagnostics_are_consistent() {
    let obj = (3usize, 2usize, |x: &[f64], _s: u64| {
        vec![
            x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>(),
            x.iter().map(|v| (v - 0.7) * (v - 0.7)).sum::<f64>(),
        ]
    });
    let mut pald =
        Pald::new(PaldConfig { trust_radius: 0.15, probes: 6, seed: 13, ..Default::default() });
    let r = [0.05, 10.0];
    let step = pald.step(&obj, &[0.9, 0.9, 0.9], &r);
    assert_eq!(step.violated.len(), 2);
    for (i, v) in step.violated.iter().enumerate() {
        assert_eq!(*v, step.fitted[i] >= r[i], "violated flag {i} disagrees with fit");
    }
    assert!(step.rho < 1.0);
    assert!(step.c.iter().all(|&ci| ci >= -1e-9));
    assert!(step.grad_norm >= 0.0);
    assert!(step.x_new.iter().all(|&v| (0.0..=1.0).contains(&v)));
}

/// History-driven improvement: with a warm history, PALD needs fewer fresh
/// probes per step (the extra-probe top-up only fires on cold starts).
#[test]
fn warm_history_reduces_probe_cost() {
    let obj = (4usize, 1usize, |x: &[f64], _s: u64| {
        vec![x.iter().map(|v| (v - 0.5) * (v - 0.5)).sum::<f64>()]
    });
    let mut pald =
        Pald::new(PaldConfig { trust_radius: 0.15, probes: 3, seed: 14, ..Default::default() });
    let x = vec![0.4, 0.6, 0.4, 0.6];
    let before = pald.history_len();
    pald.step(&obj, &x, &[10.0]);
    let cold_cost = pald.history_len() - before;
    let before = pald.history_len();
    pald.step(&obj, &x, &[10.0]);
    let warm_cost = pald.history_len() - before;
    assert!(
        warm_cost < cold_cost,
        "warm step should evaluate less: cold {cold_cost}, warm {warm_cost}"
    );
    // Warm cost = probes + center (+ optional SGD eval).
    assert!(warm_cost <= 3 + 1 + 1);
}
