//! Workload-model integration tests: fit → generate round-trips, scaling
//! semantics, and codec interop on realistic multi-tenant traces.

use proptest::prelude::*;
use tempo_workload::abc;
use tempo_workload::codec;
use tempo_workload::model::{ArrivalProcess, WorkloadModel};
use tempo_workload::swim::{scale_trace, ScaleParams};
use tempo_workload::time::{DAY, HOUR};

/// Fitting a model to a trace generated from a known model, then generating
/// from the fit, preserves the aggregate workload shape (the §7.1 training
/// loop is self-consistent).
#[test]
fn fit_generate_fixpoint_preserves_aggregates() {
    let truth = abc::abc_model(0.08);
    let trace = truth.generate(0, 2 * DAY, 3);
    let names: Vec<&str> = abc::TENANT_NAMES.to_vec();
    let fitted = WorkloadModel::fit(&trace, &names);
    assert_eq!(fitted.num_tenants(), 6);
    let regen = fitted.generate(0, 2 * DAY, 4);

    // Aggregate totals agree within sampling tolerance.
    let jobs_ratio = regen.len() as f64 / trace.len() as f64;
    assert!((0.7..1.4).contains(&jobs_ratio), "job count ratio {jobs_ratio}");
    let work = |t: &tempo_workload::Trace| -> f64 {
        t.jobs.iter().map(|j| j.total_work() as f64).sum::<f64>()
    };
    let work_ratio = work(&regen) / work(&trace);
    assert!((0.4..2.5).contains(&work_ratio), "total work ratio {work_ratio}");

    // Per-tenant mean durations carry over (medians of lognormals).
    for tid in 0..6u16 {
        let a = trace.tenant_stats(tid);
        let b = regen.tenant_stats(tid);
        if a.jobs < 10 || b.jobs < 10 {
            continue; // MV generates few jobs at this scale
        }
        let ratio = b.mean_map_secs / a.mean_map_secs;
        assert!((0.5..2.0).contains(&ratio), "tenant {tid} map duration ratio {ratio}");
    }
}

/// The fitted arrival rate matches the empirical rate, and data-size scaling
/// raises per-job work without touching the rate.
#[test]
fn fitted_rates_and_scaling_compose() {
    let truth = abc::abc_model(0.1);
    let trace = truth.generate(0, 2 * DAY, 7);
    let mut fitted = WorkloadModel::fit(&trace, abc::TENANT_NAMES.as_ref());
    let bi = trace.tenant_stats(abc::tenant::BI);
    let empirical_rate = bi.jobs as f64 / 48.0;
    match &fitted.tenants[abc::tenant::BI as usize].arrival {
        ArrivalProcess::Poisson { rate_per_hour, .. } => {
            assert!(
                (rate_per_hour / empirical_rate - 1.0).abs() < 0.05,
                "fit {} vs empirical {}",
                rate_per_hour,
                empirical_rate
            );
        }
        other => panic!("BI should fit as Poisson, got {other:?}"),
    }
    // Grow the data size 30% (the §7.1 extrapolation): per-job maps grow,
    // rates stay.
    let before = fitted.generate(0, DAY, 9);
    for t in &mut fitted.tenants {
        t.scale_data_size(1.3);
    }
    let after = fitted.generate(0, DAY, 9);
    let maps = |t: &tempo_workload::Trace| -> f64 {
        t.jobs.iter().map(|j| j.map_count() as f64).sum::<f64>() / t.len().max(1) as f64
    };
    let growth = maps(&after) / maps(&before);
    assert!((1.1..1.6).contains(&growth), "mean maps/job growth {growth}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SWIM scaling then binary codec round-trips exactly for arbitrary
    /// parameter combinations on a real generated trace.
    #[test]
    fn scaled_traces_roundtrip_binary(
        frac in 0.2f64..1.0,
        dur in 0.5f64..2.0,
        seed in 0u64..20,
    ) {
        let trace = abc::abc_span(0.05, 12 * HOUR, seed);
        let scaled = scale_trace(
            &trace,
            ScaleParams { job_sample_frac: frac, task_scale: frac, duration_scale: dur, time_compression: 1.0 },
            seed,
        );
        prop_assert!(scaled.validate().is_ok());
        let bytes = codec::to_binary(&scaled);
        let back = codec::from_binary(bytes).expect("decodes");
        prop_assert_eq!(back, scaled);
    }

    /// Cluster-fraction scaling preserves total work within sampling noise
    /// of the per-kind randomized rounding.
    #[test]
    fn cluster_fraction_scaling_preserves_mean_work(
        frac in 0.3f64..0.9,
        seed in 0u64..20,
    ) {
        let trace = abc::abc_span(0.08, 12 * HOUR, 100 + seed);
        let scaled = scale_trace(&trace, ScaleParams::cluster_fraction(frac), seed);
        let work = |t: &tempo_workload::Trace| t.jobs.iter().map(|j| j.total_work() as f64).sum::<f64>();
        let ratio = work(&scaled) / (work(&trace) * frac);
        // Randomized rounding keeps expectation; small jobs clamp at ≥1 task
        // per kind, so allow upward bias.
        prop_assert!((0.85..1.6).contains(&ratio), "work ratio {ratio}");
    }
}
