//! Statistical primitives used by the workload models.
//!
//! §7.1 of the paper reports that in the production traces "the task duration
//! approximately follows a lognormal distribution, and the job arrival
//! approximately follows a Poisson process". These samplers implement exactly
//! those families (plus a bounded Pareto for heavy-tailed job widths seen in
//! the Facebook/Cloudera traces) without pulling in an external distribution
//! crate: everything reduces to a uniform source through standard transforms
//! (Box–Muller, inverse-CDF).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// The polar variant is avoided deliberately: Box–Muller consumes a fixed
/// number of uniforms per call, which keeps the RNG stream — and therefore
/// the whole simulation — reproducible across refactors that reorder rejection
/// loops.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against u1 == 0, which would produce ln(0) = -inf.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal distribution `N(mean, sd^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    pub mean: f64,
    pub sd: f64,
}

impl Normal {
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Self { mean, sd }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * std_normal(rng)
    }
}

/// A lognormal distribution parameterised by the mean/sd of `ln X`.
///
/// This is the paper's task-duration family. `median = exp(mu)` makes the
/// parameters easy to read in the tenant archetype tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X`.
    pub sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { mu, sigma }
    }

    /// Builds the distribution from its median and the sd of the log.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }

    /// Distribution mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Distribution median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Maximum-likelihood fit from positive samples.
    ///
    /// Used when training a workload model from historical traces (§7.1).
    /// Non-positive samples are ignored; returns `None` when fewer than two
    /// usable samples exist.
    pub fn fit(samples: &[f64]) -> Option<Self> {
        let logs: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).map(f64::ln).collect();
        if logs.len() < 2 {
            return None;
        }
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mu) * (l - mu)).sum::<f64>() / n;
        Some(Self::new(mu, var.sqrt()))
    }
}

/// An exponential distribution with the given rate (events per unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    pub rate: f64,
}

impl Exponential {
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Self { rate }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// A bounded (truncated) Pareto distribution on `[min, max]`.
///
/// Captures the heavy-tailed job widths of the Facebook/Cloudera traces: the
/// vast majority of jobs are tiny while a few giants dominate cluster load
/// (cf. SWIM's published MapReduce workload characterisations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    pub alpha: f64,
    pub min: f64,
    pub max: f64,
}

impl BoundedPareto {
    pub fn new(alpha: f64, min: f64, max: f64) -> Self {
        assert!(alpha > 0.0 && min > 0.0 && max > min, "invalid bounded Pareto parameters");
        Self { alpha, min, max }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF of the truncated Pareto.
        let u: f64 = rng.gen::<f64>();
        let la = self.min.powf(self.alpha);
        let ha = self.max.powf(self.alpha);
        let x = (-(u * (1.0 - la / ha) - 1.0)).powf(-1.0 / self.alpha) * self.min;
        x.clamp(self.min, self.max)
    }
}

/// A weekly rate-modulation profile: 24 hourly multipliers composed with 7
/// daily multipliers.
///
/// Models Concern D (§2.4): "ETL jobs process Web activity logs which come in
/// much smaller quantities on weekends", and the diurnal BI analyst pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyProfile {
    /// Multiplier per hour of day (index 0 = midnight..1am).
    pub hourly: [f64; 24],
    /// Multiplier per day of week (index 0 = first simulated day).
    pub daily: [f64; 7],
}

impl Default for WeeklyProfile {
    fn default() -> Self {
        Self::flat()
    }
}

impl WeeklyProfile {
    /// Constant multiplier 1 everywhere.
    pub fn flat() -> Self {
        Self { hourly: [1.0; 24], daily: [1.0; 7] }
    }

    /// A business-hours profile: ramps up 8am–6pm, quiet nights, subdued
    /// weekends (days 5 and 6).
    pub fn business_hours() -> Self {
        let mut hourly = [0.25; 24];
        for (h, m) in hourly.iter_mut().enumerate() {
            *m = match h {
                8..=9 => 0.9,
                10..=17 => 1.0,
                18..=19 => 0.7,
                20..=22 => 0.4,
                _ => 0.15,
            };
        }
        Self { hourly, daily: [1.0, 1.0, 1.0, 1.0, 1.0, 0.35, 0.3] }
    }

    /// Nightly-batch profile: load concentrated after midnight (typical for
    /// ETL/MV pipelines that must finish before the business day).
    pub fn nightly_batch() -> Self {
        let mut hourly = [0.1; 24];
        for (h, m) in hourly.iter_mut().enumerate() {
            *m = match h {
                0..=4 => 1.0,
                5..=6 => 0.6,
                22..=23 => 0.5,
                _ => 0.1,
            };
        }
        Self { hourly, daily: [1.0; 7] }
    }

    /// Weekend-subdued variant of a flat profile.
    pub fn weekday_heavy() -> Self {
        Self { hourly: [1.0; 24], daily: [1.0, 1.0, 1.0, 1.0, 1.0, 0.3, 0.25] }
    }

    /// The multiplier in effect at time `t`.
    pub fn multiplier_at(&self, t: crate::time::Time) -> f64 {
        self.hourly[crate::time::hour_of_day(t)] * self.daily[crate::time::day_of_week(t)]
    }

    /// The largest multiplier anywhere in the week (used as the thinning
    /// envelope for inhomogeneous Poisson sampling).
    pub fn max_multiplier(&self) -> f64 {
        let hmax = self.hourly.iter().copied().fold(0.0_f64, f64::max);
        let dmax = self.daily.iter().copied().fold(0.0_f64, f64::max);
        hmax * dmax
    }
}

/// Generates arrival timestamps of an inhomogeneous Poisson process on
/// `[start, end)` with base rate `rate_per_hour` modulated by `profile`,
/// using Lewis–Shedler thinning.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    rate_per_hour: f64,
    profile: &WeeklyProfile,
    start: crate::time::Time,
    end: crate::time::Time,
) -> Vec<crate::time::Time> {
    use crate::time::{from_secs_f64, to_secs_f64, HOUR};
    let mut out = Vec::new();
    if rate_per_hour <= 0.0 || start >= end {
        return out;
    }
    let envelope = rate_per_hour * profile.max_multiplier();
    if envelope <= 0.0 {
        return out;
    }
    let exp = Exponential::new(envelope / to_secs_f64(HOUR));
    let mut t = start;
    loop {
        let gap = from_secs_f64(exp.sample(rng)).max(1);
        t = t.saturating_add(gap);
        if t >= end {
            break;
        }
        let accept_p = profile.multiplier_at(t) / profile.max_multiplier();
        if rng.gen::<f64>() < accept_p {
            out.push(t);
        }
    }
    out
}

/// Empirical CDF evaluated at the given probe points.
///
/// Returns `P[X <= probe]` for each probe; `samples` need not be sorted.
pub fn empirical_cdf(samples: &[f64], probes: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; probes.len()];
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF samples"));
    probes
        .iter()
        .map(|&p| {
            let idx = sorted.partition_point(|&x| x <= p);
            idx as f64 / sorted.len() as f64
        })
        .collect()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of the samples, by linear interpolation.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile samples"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean; 0 for an empty slice (callers treat empty windows as
/// contributing no signal rather than NaN-poisoning downstream optimisation).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Moving average of `(t, value)` series over a trailing window, evaluated at
/// each point's own timestamp. Used for the "instant job response time"
/// series of Figure 10 (30-minute trailing window in the paper).
pub fn moving_average(
    points: &[(crate::time::Time, f64)],
    window: crate::time::Time,
) -> Vec<(crate::time::Time, f64)> {
    let mut pts = points.to_vec();
    pts.sort_by_key(|&(t, _)| t);
    let mut out = Vec::with_capacity(pts.len());
    let mut lo = 0usize;
    let mut sum = 0.0;
    for hi in 0..pts.len() {
        sum += pts[hi].1;
        while pts[lo].0 + window < pts[hi].0 {
            sum -= pts[lo].1;
            lo += 1;
        }
        out.push((pts[hi].0, sum / (hi - lo + 1) as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{HOUR, SEC, WEEK};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng(1);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut r)).collect();
        let m = mean(&samples);
        let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(60.0, 0.8);
        assert!((d.median() - 60.0).abs() < 1e-9);
        let mut r = rng(2);
        let samples: Vec<f64> = (0..60_000).map(|_| d.sample(&mut r)).collect();
        let med = quantile(&samples, 0.5);
        assert!((med / 60.0 - 1.0).abs() < 0.05, "sample median {med}");
        assert!((mean(&samples) / d.mean() - 1.0).abs() < 0.08);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::new(3.0, 0.5);
        let mut r = rng(3);
        let samples: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut r)).collect();
        let fit = LogNormal::fit(&samples).unwrap();
        assert!((fit.mu - truth.mu).abs() < 0.02, "mu {}", fit.mu);
        assert!((fit.sigma - truth.sigma).abs() < 0.02, "sigma {}", fit.sigma);
    }

    #[test]
    fn lognormal_fit_rejects_degenerate_input() {
        assert!(LogNormal::fit(&[]).is_none());
        assert!(LogNormal::fit(&[1.0]).is_none());
        assert!(LogNormal::fit(&[-1.0, 0.0]).is_none());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.5);
        let mut r = rng(4);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        assert!((mean(&samples) - 2.0).abs() < 0.05);
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let d = BoundedPareto::new(1.2, 1.0, 1000.0);
        let mut r = rng(5);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        // Heavy tail: median far below mean.
        assert!(quantile(&samples, 0.5) < mean(&samples) / 1.5);
    }

    #[test]
    fn homogeneous_poisson_rate() {
        let mut r = rng(6);
        let arr = poisson_arrivals(&mut r, 30.0, &WeeklyProfile::flat(), 0, 100 * HOUR);
        let rate = arr.len() as f64 / 100.0;
        assert!((rate - 30.0).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn inhomogeneous_poisson_follows_profile() {
        let mut r = rng(7);
        let profile = WeeklyProfile::business_hours();
        let arr = poisson_arrivals(&mut r, 60.0, &profile, 0, WEEK);
        let day_count = arr
            .iter()
            .filter(|&&t| crate::time::hour_of_day(t) >= 10 && crate::time::hour_of_day(t) < 18)
            .count();
        let night_count = arr.iter().filter(|&&t| crate::time::hour_of_day(t) < 5).count();
        assert!(day_count > 3 * night_count, "day {day_count} night {night_count}");
        // Weekend suppression.
        let weekend = arr.iter().filter(|&&t| crate::time::day_of_week(t) >= 5).count();
        let weekday = arr.len() - weekend;
        assert!(weekday as f64 / 5.0 > 2.0 * weekend as f64 / 2.0);
    }

    #[test]
    fn poisson_arrivals_sorted_and_in_range() {
        let mut r = rng(8);
        let arr = poisson_arrivals(&mut r, 120.0, &WeeklyProfile::flat(), 5 * HOUR, 6 * HOUR);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| (5 * HOUR..6 * HOUR).contains(&t)));
    }

    #[test]
    fn empty_or_zero_rate_poisson() {
        let mut r = rng(9);
        assert!(poisson_arrivals(&mut r, 0.0, &WeeklyProfile::flat(), 0, HOUR).is_empty());
        assert!(poisson_arrivals(&mut r, 5.0, &WeeklyProfile::flat(), HOUR, HOUR).is_empty());
    }

    #[test]
    fn cdf_and_quantile() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let cdf = empirical_cdf(&samples, &[0.5, 2.0, 10.0]);
        assert_eq!(cdf, vec![0.0, 0.5, 1.0]);
        assert!((quantile(&samples, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&samples, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&samples, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn moving_average_windows() {
        let pts = vec![(0, 1.0), (10 * SEC, 3.0), (100 * SEC, 10.0)];
        let ma = moving_average(&pts, 20 * SEC);
        assert_eq!(ma.len(), 3);
        assert!((ma[0].1 - 1.0).abs() < 1e-12);
        assert!((ma[1].1 - 2.0).abs() < 1e-12);
        assert!((ma[2].1 - 10.0).abs() < 1e-12, "old points expire");
    }
}
