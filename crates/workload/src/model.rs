//! Statistical workload models (the paper's Workload Generator, §7.1).
//!
//! Tempo can either replay historical traces or sample from a statistical
//! model trained on them. The model route lets the Optimizer (a) generate
//! multiple synthetic workloads with the same distribution to test parameter
//! sensitivity, and (b) extrapolate — e.g. "grow the data size by 30%"
//! (§7.1). Following the paper's observations, task durations are lognormal
//! and arrivals are (possibly modulated) Poisson; recurring pipelines use a
//! periodic arrival process instead.

use crate::stats::{poisson_arrivals, BoundedPareto, LogNormal, WeeklyProfile};
use crate::time::{from_secs_f64, Time, SEC};
use crate::trace::{JobSpec, TaskSpec, TenantId, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution over per-job task counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CountDist {
    /// Exactly `n` tasks per job.
    Fixed(u32),
    /// `round(LogNormal)` clamped to `[min, max]` — matches the skewed job
    /// widths in the ABC trace (Figure 5's maps/reduces CDFs).
    LogNormal { ln: LogNormal, min: u32, max: u32 },
    /// Bounded Pareto, for the Facebook/Cloudera-style heavy tails where a
    /// handful of giant jobs dominate.
    Pareto { p: BoundedPareto },
}

impl CountDist {
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            CountDist::Fixed(n) => *n,
            CountDist::LogNormal { ln, min, max } => {
                let v = ln.sample(rng).round();
                (v.max(0.0) as u32).clamp(*min, *max)
            }
            CountDist::Pareto { p } => p.sample(rng).round().max(0.0) as u32,
        }
    }

    /// Approximate mean, used for deadline derivation and capacity planning.
    pub fn mean(&self) -> f64 {
        match self {
            CountDist::Fixed(n) => *n as f64,
            CountDist::LogNormal { ln, min, max } => ln.mean().clamp(*min as f64, *max as f64),
            CountDist::Pareto { p } => {
                // Mean of the truncated Pareto; fall back to midpoint at alpha=1.
                let a = p.alpha;
                if (a - 1.0).abs() < 1e-9 {
                    (p.max - p.min) / (p.max / p.min).ln()
                } else {
                    let la = p.min.powf(a);
                    (la * a / (a - 1.0)) * (p.min.powf(1.0 - a) - p.max.powf(1.0 - a))
                        / (1.0 - (p.min / p.max).powf(a))
                }
            }
        }
    }
}

/// How a tenant's jobs arrive over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// (In)homogeneous Poisson process: `rate_per_hour` modulated by a weekly
    /// profile (§7.1's observed arrival family).
    Poisson { rate_per_hour: f64, profile: WeeklyProfile },
    /// Recurring pipeline: a burst of `burst` jobs every `period`, each job
    /// jittered uniformly within `[0, jitter]`. Models ETL/MV schedules
    /// ("periodic but bursty", Table 1).
    Periodic { period: Time, burst: u32, jitter: Time, profile: WeeklyProfile },
}

impl ArrivalProcess {
    /// Samples absolute submission times in `[start, end)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, start: Time, end: Time) -> Vec<Time> {
        match self {
            ArrivalProcess::Poisson { rate_per_hour, profile } => {
                poisson_arrivals(rng, *rate_per_hour, profile, start, end)
            }
            ArrivalProcess::Periodic { period, burst, jitter, profile } => {
                let mut out = Vec::new();
                assert!(*period > 0, "periodic arrival requires a positive period");
                let mut t = start - start % *period;
                while t < end {
                    if t >= start {
                        // The day-of-week profile scales the burst size (ETL input
                        // shrinks on weekends — Concern D).
                        let scale = profile.multiplier_at(t);
                        let n = ((*burst as f64) * scale).round().max(0.0) as u32;
                        for _ in 0..n {
                            let j = if *jitter > 0 { rng.gen_range(0..=*jitter) } else { 0 };
                            let at = t + j;
                            if at < end {
                                out.push(at);
                            }
                        }
                    }
                    t += *period;
                }
                out.sort_unstable();
                out
            }
        }
    }

    /// Expected jobs per hour (long-run average), for reporting.
    pub fn mean_rate_per_hour(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_hour, profile } => {
                let avg_h: f64 = profile.hourly.iter().sum::<f64>() / 24.0;
                let avg_d: f64 = profile.daily.iter().sum::<f64>() / 7.0;
                rate_per_hour * avg_h * avg_d
            }
            ArrivalProcess::Periodic { period, burst, profile, .. } => {
                let avg_d: f64 = profile.daily.iter().sum::<f64>() / 7.0;
                *burst as f64 * avg_d * (crate::time::HOUR as f64 / *period as f64)
            }
        }
    }
}

/// How deadlines are attached to a tenant's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeadlinePolicy {
    /// Best-effort tenant: no deadlines.
    None,
    /// `deadline = submit + max(factor × est_makespan(parallelism), floor)` —
    /// the common "finish within k× of the ideal run" contract for recurring
    /// jobs.
    Relative { factor: f64, parallelism: u32, floor: Time },
    /// Deadline at the next multiple of `period` (ETL: "the deadline is the
    /// start of the next run", §3.1).
    NextPeriod { period: Time },
}

impl DeadlinePolicy {
    pub fn deadline_for(&self, job: &JobSpec) -> Option<Time> {
        match self {
            DeadlinePolicy::None => None,
            DeadlinePolicy::Relative { factor, parallelism, floor } => {
                let est = job.est_makespan(*parallelism) as f64 * factor;
                Some(job.submit + (est as Time).max(*floor))
            }
            DeadlinePolicy::NextPeriod { period } => {
                assert!(*period > 0, "NextPeriod deadline requires a positive period");
                Some((job.submit / period + 1) * period)
            }
        }
    }
}

/// The per-job shape distributions of a tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobShape {
    pub num_maps: CountDist,
    pub num_reduces: CountDist,
    /// Map task duration in **seconds** (lognormal per §7.1).
    pub map_secs: LogNormal,
    /// Reduce task duration in **seconds**.
    pub reduce_secs: LogNormal,
}

impl JobShape {
    /// Samples the task list of one job.
    pub fn sample_tasks<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<TaskSpec> {
        let nm = self.num_maps.sample(rng);
        let nr = self.num_reduces.sample(rng);
        let mut tasks = Vec::with_capacity((nm + nr) as usize);
        for _ in 0..nm {
            tasks.push(TaskSpec::map(from_secs_f64(self.map_secs.sample(rng)).max(SEC / 10)));
        }
        for _ in 0..nr {
            tasks.push(TaskSpec::reduce(from_secs_f64(self.reduce_secs.sample(rng)).max(SEC / 10)));
        }
        if tasks.is_empty() {
            // A job must have at least one task; degenerate draws become a
            // minimal map-only job.
            tasks.push(TaskSpec::map(from_secs_f64(self.map_secs.sample(rng)).max(SEC / 10)));
        }
        tasks
    }
}

/// A complete statistical model of one tenant's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantModel {
    pub name: String,
    pub arrival: ArrivalProcess,
    pub shape: JobShape,
    pub deadline: DeadlinePolicy,
    /// Map→reduce slow-start fraction applied to generated jobs.
    pub slowstart: f64,
}

impl TenantModel {
    /// Scales the data size processed per job by `factor`: task counts grow
    /// with data volume while per-task durations stay fixed (the MapReduce
    /// split model). This implements the "what if data grows by 30%"
    /// extrapolation called out in §7.1.
    pub fn scale_data_size(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        scale_count(&mut self.shape.num_maps, factor);
        scale_count(&mut self.shape.num_reduces, factor);
    }
}

fn scale_count(c: &mut CountDist, factor: f64) {
    match c {
        CountDist::Fixed(n) => *n = ((*n as f64 * factor).round() as u32).max(1),
        CountDist::LogNormal { ln, min, max } => {
            ln.mu += factor.ln();
            *min = ((*min as f64 * factor).round() as u32).max(1);
            *max = ((*max as f64 * factor).round() as u32).max(*min);
        }
        CountDist::Pareto { p } => {
            p.min *= factor;
            p.max *= factor;
        }
    }
}

/// A multi-tenant workload model: tenant index in `tenants` is the
/// [`TenantId`] used in generated traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    pub tenants: Vec<TenantModel>,
}

impl WorkloadModel {
    pub fn new(tenants: Vec<TenantModel>) -> Self {
        Self { tenants }
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// Generates a trace over `[start, end)`. Same `(model, window, seed)` ⇒
    /// identical trace, which the What-if Model relies on to compare RM
    /// configurations on a common workload.
    pub fn generate(&self, start: Time, end: Time, seed: u64) -> Trace {
        assert!(start < end, "generation window must be non-empty");
        let mut jobs = Vec::new();
        let mut id: u64 = 0;
        for (tix, tm) in self.tenants.iter().enumerate() {
            // Independent per-tenant streams: adding a tenant does not perturb
            // the others' workloads.
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tix as u64 + 1)),
            );
            let submits = tm.arrival.sample(&mut rng, start, end);
            for submit in submits {
                let tasks = tm.shape.sample_tasks(&mut rng);
                let mut job =
                    JobSpec::new(id, tix as TenantId, submit, tasks).with_slowstart(tm.slowstart);
                job.deadline = tm.deadline.deadline_for(&job);
                id += 1;
                jobs.push(job);
            }
        }
        let mut trace = Trace::new(jobs);
        trace.sort_by_submit();
        // Ids were assigned per tenant in submission bursts; renumber in
        // submit order for readability while keeping uniqueness.
        for (i, j) in trace.jobs.iter_mut().enumerate() {
            j.id = i as u64;
        }
        trace
    }

    /// Fits a model to a historical trace (one tenant model per tenant id in
    /// the trace). Arrivals are fit as homogeneous Poisson (rate = jobs per
    /// hour over the span); durations and widths by lognormal MLE. This is
    /// the "statistical model ... trained from historical traces" of §7.1.
    pub fn fit(trace: &Trace, names: &[&str]) -> WorkloadModel {
        let (start, end) = trace.submit_span().unwrap_or((0, 1));
        let span_hours = ((end - start).max(1)) as f64 / crate::time::HOUR as f64;
        let mut tenants = Vec::new();
        for tid in trace.tenants() {
            let sub = trace.filter_tenant(tid);
            let map_secs: Vec<f64> = sub
                .jobs
                .iter()
                .flat_map(|j| j.tasks.iter())
                .filter(|t| t.kind == crate::trace::TaskKind::Map)
                .map(|t| crate::time::to_secs_f64(t.duration))
                .collect();
            let red_secs: Vec<f64> = sub
                .jobs
                .iter()
                .flat_map(|j| j.tasks.iter())
                .filter(|t| t.kind == crate::trace::TaskKind::Reduce)
                .map(|t| crate::time::to_secs_f64(t.duration))
                .collect();
            let widths: Vec<f64> = sub.jobs.iter().map(|j| j.map_count().max(1) as f64).collect();
            let rwidths: Vec<f64> = sub.jobs.iter().map(|j| j.reduce_count() as f64).collect();
            let rate = sub.len() as f64 / span_hours;
            let name =
                names.get(tid as usize).map_or_else(|| format!("tenant-{tid}"), |s| s.to_string());
            let max_w = widths.iter().copied().fold(1.0_f64, f64::max) as u32;
            let max_r = rwidths.iter().copied().fold(0.0_f64, f64::max) as u32;
            tenants.push(TenantModel {
                name,
                arrival: ArrivalProcess::Poisson {
                    rate_per_hour: rate,
                    profile: WeeklyProfile::flat(),
                },
                shape: JobShape {
                    num_maps: CountDist::LogNormal {
                        ln: LogNormal::fit(&widths).unwrap_or(LogNormal::new(0.0, 0.0)),
                        min: 1,
                        max: max_w.max(1),
                    },
                    num_reduces: CountDist::LogNormal {
                        ln: LogNormal::fit(&rwidths)
                            .unwrap_or(LogNormal::new(f64::NEG_INFINITY, 0.0)),
                        min: 0,
                        max: max_r,
                    },
                    map_secs: LogNormal::fit(&map_secs).unwrap_or(LogNormal::new(0.0, 0.0)),
                    reduce_secs: LogNormal::fit(&red_secs).unwrap_or(LogNormal::new(0.0, 0.0)),
                },
                deadline: DeadlinePolicy::None,
                slowstart: sub.jobs.first().map_or(1.0, |j| j.slowstart),
            });
        }
        WorkloadModel::new(tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, HOUR, MIN};

    fn simple_shape() -> JobShape {
        JobShape {
            num_maps: CountDist::Fixed(4),
            num_reduces: CountDist::Fixed(2),
            map_secs: LogNormal::from_median(30.0, 0.5),
            reduce_secs: LogNormal::from_median(120.0, 0.5),
        }
    }

    #[test]
    fn count_dist_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(CountDist::Fixed(7).sample(&mut rng), 7);
        let d = CountDist::LogNormal { ln: LogNormal::from_median(10.0, 0.6), min: 2, max: 50 };
        for _ in 0..200 {
            let v = d.sample(&mut rng);
            assert!((2..=50).contains(&v));
        }
        let p = CountDist::Pareto { p: BoundedPareto::new(1.1, 1.0, 400.0) };
        for _ in 0..200 {
            assert!(p.sample(&mut rng) <= 400);
        }
    }

    #[test]
    fn count_dist_means_are_sane() {
        assert!((CountDist::Fixed(3).mean() - 3.0).abs() < 1e-12);
        let p = CountDist::Pareto { p: BoundedPareto::new(1.5, 1.0, 100.0) };
        let mut rng = StdRng::seed_from_u64(3);
        let emp: f64 = (0..20_000).map(|_| p.sample(&mut rng) as f64).sum::<f64>() / 20_000.0;
        assert!((p.mean() - emp).abs() / emp < 0.1, "analytic {} empirical {emp}", p.mean());
    }

    #[test]
    fn periodic_arrivals_fire_once_per_period() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Periodic {
            period: HOUR,
            burst: 3,
            jitter: MIN,
            profile: WeeklyProfile::flat(),
        };
        let arr = p.sample(&mut rng, 0, 6 * HOUR);
        assert_eq!(arr.len(), 18);
        for (i, t) in arr.iter().enumerate() {
            let period_idx = (i / 3) as u64;
            assert!(*t >= period_idx * HOUR && *t <= period_idx * HOUR + MIN);
        }
    }

    #[test]
    fn periodic_respects_start_offset() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Periodic {
            period: HOUR,
            burst: 1,
            jitter: 0,
            profile: WeeklyProfile::flat(),
        };
        let arr = p.sample(&mut rng, 90 * MIN, 5 * HOUR);
        // Bursts at 2h, 3h, 4h (1h and 1.5h are before start).
        assert_eq!(arr, vec![2 * HOUR, 3 * HOUR, 4 * HOUR]);
    }

    #[test]
    fn periodic_weekend_scaling() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ArrivalProcess::Periodic {
            period: HOUR,
            burst: 4,
            jitter: 0,
            profile: WeeklyProfile::weekday_heavy(),
        };
        let arr = p.sample(&mut rng, 0, crate::time::WEEK);
        let weekend = arr.iter().filter(|&&t| crate::time::day_of_week(t) >= 5).count();
        let weekday = arr.len() - weekend;
        assert!(weekday > 3 * weekend, "weekday {weekday} weekend {weekend}");
    }

    #[test]
    fn deadline_policies() {
        let job = JobSpec::new(1, 0, 30 * MIN, vec![TaskSpec::map(10 * MIN)]);
        assert_eq!(DeadlinePolicy::None.deadline_for(&job), None);
        let rel = DeadlinePolicy::Relative { factor: 2.0, parallelism: 1, floor: 5 * MIN };
        // est_makespan = 10m work + 10m straggler = 20m; ×2 = 40m.
        assert_eq!(rel.deadline_for(&job), Some(30 * MIN + 40 * MIN));
        let np = DeadlinePolicy::NextPeriod { period: HOUR };
        assert_eq!(np.deadline_for(&job), Some(HOUR));
        let at_boundary = JobSpec::new(2, 0, HOUR, vec![TaskSpec::map(MIN)]);
        assert_eq!(np.deadline_for(&at_boundary), Some(2 * HOUR));
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let model = WorkloadModel::new(vec![
            TenantModel {
                name: "a".into(),
                arrival: ArrivalProcess::Poisson {
                    rate_per_hour: 20.0,
                    profile: WeeklyProfile::flat(),
                },
                shape: simple_shape(),
                deadline: DeadlinePolicy::None,
                slowstart: 1.0,
            },
            TenantModel {
                name: "b".into(),
                arrival: ArrivalProcess::Periodic {
                    period: HOUR,
                    burst: 2,
                    jitter: MIN,
                    profile: WeeklyProfile::flat(),
                },
                shape: simple_shape(),
                deadline: DeadlinePolicy::NextPeriod { period: HOUR },
                slowstart: 0.8,
            },
        ]);
        let t1 = model.generate(0, DAY, 42);
        let t2 = model.generate(0, DAY, 42);
        assert_eq!(t1, t2, "same seed must reproduce the same trace");
        let t3 = model.generate(0, DAY, 43);
        assert_ne!(t1, t3, "different seeds should differ");
        assert!(t1.validate().is_ok());
        assert!(t1.len() > 300, "expected a day of jobs, got {}", t1.len());
        // Tenant b's jobs carry deadlines; tenant a's do not.
        for j in &t1.jobs {
            if j.tenant == 1 {
                assert!(j.deadline.is_some());
                assert!((j.slowstart - 0.8).abs() < 1e-12);
            } else {
                assert!(j.deadline.is_none());
            }
        }
    }

    #[test]
    fn adding_a_tenant_does_not_perturb_existing_streams() {
        let t_a = TenantModel {
            name: "a".into(),
            arrival: ArrivalProcess::Poisson {
                rate_per_hour: 10.0,
                profile: WeeklyProfile::flat(),
            },
            shape: simple_shape(),
            deadline: DeadlinePolicy::None,
            slowstart: 1.0,
        };
        let t_b = TenantModel { name: "b".into(), ..t_a.clone() };
        let solo = WorkloadModel::new(vec![t_a.clone()]).generate(0, DAY, 7);
        let duo = WorkloadModel::new(vec![t_a, t_b]).generate(0, DAY, 7);
        let solo_submits: Vec<Time> = solo.jobs.iter().map(|j| j.submit).collect();
        let duo_submits: Vec<Time> =
            duo.jobs.iter().filter(|j| j.tenant == 0).map(|j| j.submit).collect();
        assert_eq!(solo_submits, duo_submits);
    }

    #[test]
    fn scale_data_size_grows_widths_not_durations() {
        let mut tm = TenantModel {
            name: "etl".into(),
            arrival: ArrivalProcess::Poisson { rate_per_hour: 5.0, profile: WeeklyProfile::flat() },
            shape: simple_shape(),
            deadline: DeadlinePolicy::None,
            slowstart: 1.0,
        };
        let before_dur = tm.shape.map_secs;
        tm.scale_data_size(1.3);
        assert_eq!(tm.shape.map_secs, before_dur);
        match tm.shape.num_maps {
            CountDist::Fixed(n) => assert_eq!(n, 5), // round(4 × 1.3)
            _ => unreachable!(),
        }
    }

    #[test]
    fn fit_recovers_rate_and_durations() {
        let truth = WorkloadModel::new(vec![TenantModel {
            name: "x".into(),
            arrival: ArrivalProcess::Poisson {
                rate_per_hour: 40.0,
                profile: WeeklyProfile::flat(),
            },
            shape: JobShape {
                num_maps: CountDist::Fixed(10),
                num_reduces: CountDist::Fixed(3),
                map_secs: LogNormal::from_median(50.0, 0.4),
                reduce_secs: LogNormal::from_median(200.0, 0.4),
            },
            deadline: DeadlinePolicy::None,
            slowstart: 1.0,
        }]);
        let trace = truth.generate(0, 2 * DAY, 11);
        let fitted = WorkloadModel::fit(&trace, &["x"]);
        assert_eq!(fitted.num_tenants(), 1);
        let f = &fitted.tenants[0];
        match &f.arrival {
            ArrivalProcess::Poisson { rate_per_hour, .. } => {
                assert!((rate_per_hour - 40.0).abs() < 4.0, "rate {rate_per_hour}");
            }
            _ => unreachable!(),
        }
        assert!((f.shape.map_secs.median() - 50.0).abs() < 5.0);
        assert!((f.shape.reduce_secs.median() - 200.0).abs() < 20.0);
    }

    #[test]
    fn empty_shape_draw_yields_minimal_job() {
        let shape = JobShape {
            num_maps: CountDist::Fixed(0),
            num_reduces: CountDist::Fixed(0),
            map_secs: LogNormal::from_median(10.0, 0.1),
            reduce_secs: LogNormal::from_median(10.0, 0.1),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let tasks = shape.sample_tasks(&mut rng);
        assert_eq!(tasks.len(), 1);
    }
}
