//! Facebook- and Cloudera-style synthetic traces.
//!
//! The paper's end-to-end experiments replay production traces from Facebook
//! and multiple Cloudera customers (via SWIM, [12]) scaled onto a 20-node EC2
//! cluster. Those traces are proprietary; these generators synthesise the
//! published distributional shape instead: an extremely heavy-tailed job-width
//! distribution (most jobs touch a handful of blocks; a tiny fraction are
//! cluster-sized), short modal task durations, and Poisson arrivals. The
//! Cloudera variant is more reduce-heavy with longer tasks, matching the
//! cross-industry differences reported in the SWIM study (Chen et al.,
//! PVLDB 2012).

use crate::model::{
    ArrivalProcess, CountDist, DeadlinePolicy, JobShape, TenantModel, WorkloadModel,
};
use crate::stats::{BoundedPareto, LogNormal, WeeklyProfile};
use crate::time::{Time, MIN};
use crate::trace::Trace;

/// A Facebook-2009-like tenant: huge numbers of small jobs, a heavy Pareto
/// tail of giants, map-dominated.
pub fn facebook_like_tenant(name: &str, rate_per_hour: f64) -> TenantModel {
    TenantModel {
        name: name.into(),
        arrival: ArrivalProcess::Poisson { rate_per_hour, profile: WeeklyProfile::flat() },
        shape: JobShape {
            num_maps: CountDist::Pareto { p: BoundedPareto::new(1.25, 1.0, 3000.0) },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(1.0, 1.0),
                min: 0,
                max: 100,
            },
            map_secs: LogNormal::from_median(23.0, 1.1),
            reduce_secs: LogNormal::from_median(60.0, 1.2),
        },
        deadline: DeadlinePolicy::None,
        slowstart: 1.0,
    }
}

/// A Cloudera-customer-like tenant: fewer, larger, reduce-heavier jobs.
pub fn cloudera_like_tenant(name: &str, rate_per_hour: f64) -> TenantModel {
    TenantModel {
        name: name.into(),
        arrival: ArrivalProcess::Poisson { rate_per_hour, profile: WeeklyProfile::flat() },
        shape: JobShape {
            num_maps: CountDist::Pareto { p: BoundedPareto::new(1.1, 2.0, 2000.0) },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(4.0, 1.0),
                min: 0,
                max: 200,
            },
            map_secs: LogNormal::from_median(40.0, 1.0),
            reduce_secs: LogNormal::from_median(180.0, 1.1),
        },
        deadline: DeadlinePolicy::None,
        slowstart: 0.9,
    }
}

/// The two-tenant workload used throughout §8.2: a deadline-driven tenant
/// (periodic, ETL/MV-like, hard deadlines) sharing the cluster with a
/// best-effort tenant (continuous Facebook/Cloudera-like stream that wants
/// the lowest possible response times).
///
/// `scale` tunes total load to the simulated cluster size; the defaults suit
/// the 20-node EC2-like cluster of the end-to-end experiments (~30k tasks
/// per two-hour run at `scale = 1.0`).
pub fn ec2_experiment_model(scale: f64) -> WorkloadModel {
    assert!(scale > 0.0, "scale must be positive");
    let deadline_driven = TenantModel {
        name: "deadline-driven".into(),
        arrival: ArrivalProcess::Periodic {
            period: 15 * MIN,
            burst: (4.0 * scale).round().max(1.0) as u32,
            jitter: 2 * MIN,
            profile: WeeklyProfile::flat(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(24.0, 0.5),
                min: 4,
                max: 300,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(6.0, 0.4),
                min: 1,
                max: 40,
            },
            map_secs: LogNormal::from_median(30.0, 0.6),
            reduce_secs: LogNormal::from_median(150.0, 0.8),
        },
        deadline: DeadlinePolicy::NextPeriod { period: 15 * MIN },
        slowstart: 0.8,
    };
    let mut best_effort = facebook_like_tenant("best-effort", 300.0 * scale);
    // Best-effort reduces at ABC were long-running — the root cause of the
    // reduce-preemption waste in Figures 7–9. The width tail is trimmed
    // relative to the raw Facebook shape so the 2-hour experiment fits a
    // 20-node cluster (the paper's SWIM scale-down does the same).
    best_effort.shape.num_maps = CountDist::Pareto { p: BoundedPareto::new(1.1, 2.0, 1000.0) };
    best_effort.shape.map_secs = LogNormal::from_median(23.0, 1.0);
    best_effort.shape.reduce_secs = LogNormal::from_median(150.0, 0.9);
    best_effort.shape.num_reduces =
        CountDist::LogNormal { ln: LogNormal::from_median(1.5, 0.9), min: 0, max: 60 };
    WorkloadModel::new(vec![deadline_driven, best_effort])
}

/// Tenant ids within [`ec2_experiment_model`] traces.
pub mod ec2_tenant {
    use crate::trace::TenantId;
    pub const DEADLINE: TenantId = 0;
    pub const BEST_EFFORT: TenantId = 1;
}

/// Generates the two-hour EC2-style experiment trace (Figure 10, right).
pub fn ec2_experiment_trace(scale: f64, span: Time, seed: u64) -> Trace {
    ec2_experiment_model(scale).generate(0, span, seed)
}

/// A drifting variant of the EC2 experiment workload for the adaptivity
/// experiment (§8.2.3): the best-effort tenant's load and task durations
/// drift over the horizon, so a configuration tuned on stale traces decays.
pub fn drifting_experiment_trace(scale: f64, span: Time, seed: u64) -> Trace {
    let mut jobs = Vec::new();
    let phases = 4u64;
    let phase_len = span / phases;
    for phase in 0..phases {
        let mut model = ec2_experiment_model(scale);
        // Load swings phase to phase; durations stretch in later phases.
        let load_mult = match phase % 4 {
            0 => 0.7,
            1 => 1.3,
            2 => 1.0,
            _ => 1.5,
        };
        if let ArrivalProcess::Poisson { rate_per_hour, .. } = &mut model.tenants[1].arrival {
            *rate_per_hour *= load_mult;
        }
        model.tenants[1].shape.map_secs.mu += 0.12 * phase as f64;
        let start = phase * phase_len;
        let end = if phase == phases - 1 { span } else { start + phase_len };
        let piece = model.generate(start, end, seed ^ (phase + 1));
        jobs.extend(piece.jobs);
    }
    let mut trace = Trace::new(jobs);
    trace.sort_by_submit();
    for (i, j) in trace.jobs.iter_mut().enumerate() {
        j.id = i as u64;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::quantile;
    use crate::time::{to_secs_f64, HOUR};

    #[test]
    fn facebook_trace_is_heavy_tailed() {
        let model = WorkloadModel::new(vec![facebook_like_tenant("fb", 200.0)]);
        let t = model.generate(0, 10 * HOUR, 1);
        assert!(t.validate().is_ok());
        let widths: Vec<f64> = t.jobs.iter().map(|j| j.map_count() as f64).collect();
        let med = quantile(&widths, 0.5);
        let p99 = quantile(&widths, 0.99);
        assert!(med <= 4.0, "most jobs are tiny (median {med})");
        assert!(p99 > 10.0 * med.max(1.0), "p99 {p99} vs median {med}");
    }

    #[test]
    fn cloudera_is_reduce_heavier_than_facebook() {
        // The Pareto map-width tail makes single-trace ratios noisy (one
        // cluster-sized job can swing the map total), so pool several seeds
        // before comparing the reduce/map work mix.
        let ratio = |mk: &dyn Fn(&str, f64) -> TenantModel| {
            let (mut maps, mut reds) = (0usize, 0usize);
            for seed in [1, 2, 3] {
                let t = WorkloadModel::new(vec![mk("t", 100.0)]).generate(0, 20 * HOUR, seed);
                maps += t.jobs.iter().map(|j| j.map_count()).sum::<usize>();
                reds += t.jobs.iter().map(|j| j.reduce_count()).sum::<usize>();
            }
            reds as f64 / maps.max(1) as f64
        };
        let fb = ratio(&|n, r| facebook_like_tenant(n, r));
        let cl = ratio(&|n, r| cloudera_like_tenant(n, r));
        assert!(cl > 1.25 * fb, "cloudera {cl:.3} vs facebook {fb:.3}");
    }

    #[test]
    fn ec2_experiment_structure() {
        let t = ec2_experiment_trace(1.0, 2 * HOUR, 3);
        assert!(t.validate().is_ok());
        let dd = t.filter_tenant(ec2_tenant::DEADLINE);
        let be = t.filter_tenant(ec2_tenant::BEST_EFFORT);
        assert!(!dd.is_empty() && !be.is_empty());
        assert!(dd.jobs.iter().all(|j| j.deadline.is_some()));
        assert!(be.jobs.iter().all(|j| j.deadline.is_none()));
        // Roughly the paper's experiment size at scale 1 (≈30k tasks).
        let tasks = t.num_tasks();
        assert!((6_000..100_000).contains(&tasks), "tasks {tasks}");
    }

    #[test]
    fn drifting_trace_actually_drifts() {
        let span = 8 * HOUR;
        let t = drifting_experiment_trace(0.5, span, 4);
        assert!(t.validate().is_ok());
        let phase = |i: u64| -> Vec<f64> {
            t.jobs
                .iter()
                .filter(|j| j.tenant == ec2_tenant::BEST_EFFORT)
                .filter(|j| j.submit >= i * span / 4 && j.submit < (i + 1) * span / 4)
                .flat_map(|j| j.tasks.iter())
                .filter(|ts| ts.kind == crate::trace::TaskKind::Map)
                .map(|ts| to_secs_f64(ts.duration))
                .collect()
        };
        // Only map durations drift (mu shifts by 0.12/phase ⇒ ×e^0.36 ≈ 1.43
        // by phase 3); medians are robust to the Pareto width tail.
        let early = quantile(&phase(0), 0.5);
        let late = quantile(&phase(3), 0.5);
        assert!(late > early * 1.2, "durations should stretch: early {early} late {late}");
    }
}
