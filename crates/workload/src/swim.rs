//! SWIM-style trace scaling.
//!
//! SWIM ("Statistical Workload Injector for MapReduce", Chen et al.) replays
//! production traces on smaller clusters by sampling jobs and shrinking their
//! footprints while preserving the workload's distributional shape. The
//! paper scales the ABC/Facebook/Cloudera traces onto a 20-node EC2 cluster
//! the same way (§8.2), and the provisioning experiment (§8.2.4) replays one
//! workload against 100%/50%/25% clusters.

use crate::time::Time;
use crate::trace::{JobSpec, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a SWIM-style scale-down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleParams {
    /// Probability of keeping each job (thinning the arrival process).
    pub job_sample_frac: f64,
    /// Multiplier on per-job task counts (shrinking data footprints).
    pub task_scale: f64,
    /// Multiplier on task durations (slower/faster hardware).
    pub duration_scale: f64,
    /// Multiplier on the time axis (compressing the replay horizon).
    pub time_compression: f64,
}

impl Default for ScaleParams {
    fn default() -> Self {
        Self { job_sample_frac: 1.0, task_scale: 1.0, duration_scale: 1.0, time_compression: 1.0 }
    }
}

impl ScaleParams {
    /// The classic "replay a big-cluster trace on a cluster `f`× the size"
    /// recipe: keep all jobs but shrink each one's parallelism by `f`.
    pub fn cluster_fraction(f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "cluster fraction must be in (0,1]");
        Self { job_sample_frac: 1.0, task_scale: f, duration_scale: 1.0, time_compression: 1.0 }
    }

    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.job_sample_frac), "job_sample_frac in [0,1]");
        assert!(self.task_scale > 0.0, "task_scale must be positive");
        assert!(self.duration_scale > 0.0, "duration_scale must be positive");
        assert!(self.time_compression > 0.0, "time_compression must be positive");
    }
}

/// Scales a trace per `params`. Deterministic given `seed`.
///
/// Task counts are scaled with randomised rounding so that a 0.5 scale of a
/// fleet of 3-map jobs still averages 1.5 maps rather than collapsing to 1.
/// Deadlines keep their *relative slack* (deadline − submit is scaled by the
/// duration and time factors), mirroring how SWIM-scaled experiments keep
/// deadline tightness comparable across cluster sizes.
pub fn scale_trace(trace: &Trace, params: ScaleParams, seed: u64) -> Trace {
    params.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::with_capacity(trace.jobs.len());
    for job in &trace.jobs {
        if params.job_sample_frac < 1.0 && rng.gen::<f64>() >= params.job_sample_frac {
            continue;
        }
        let submit = scale_time(job.submit, params.time_compression);
        let mut tasks = Vec::new();
        // Scale each kind's population independently with randomised rounding.
        for kind in crate::trace::TaskKind::ALL {
            let of_kind: Vec<Time> =
                job.tasks.iter().filter(|t| t.kind == kind).map(|t| t.duration).collect();
            if of_kind.is_empty() {
                continue;
            }
            let target = of_kind.len() as f64 * params.task_scale;
            let mut n = target.floor() as usize;
            if rng.gen::<f64>() < target - n as f64 {
                n += 1;
            }
            // A job that had tasks of this kind keeps at least one, so the
            // map→reduce structure survives scaling.
            n = n.max(1);
            for i in 0..n {
                let base = of_kind[i % of_kind.len()];
                let dur = scale_time(base, params.duration_scale).max(1);
                tasks.push(crate::trace::TaskSpec { kind, duration: dur });
            }
        }
        if tasks.is_empty() {
            continue;
        }
        let deadline = job.deadline.map(|d| {
            let slack = d.saturating_sub(job.submit);
            submit + scale_time(slack, params.duration_scale * params.time_compression)
        });
        jobs.push(JobSpec {
            id: job.id,
            tenant: job.tenant,
            submit,
            deadline,
            slowstart: job.slowstart,
            tasks,
        });
    }
    let mut out = Trace::new(jobs);
    out.sort_by_submit();
    for (i, j) in out.jobs.iter_mut().enumerate() {
        j.id = i as u64;
    }
    out
}

fn scale_time(t: Time, factor: f64) -> Time {
    let v = t as f64 * factor;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v.round() as Time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{HOUR, SEC};
    use crate::trace::{TaskKind, TaskSpec};

    fn base_trace() -> Trace {
        let mut jobs = Vec::new();
        for i in 0..200u64 {
            let tasks = vec![
                TaskSpec::map(30 * SEC),
                TaskSpec::map(30 * SEC),
                TaskSpec::map(30 * SEC),
                TaskSpec::map(30 * SEC),
                TaskSpec::reduce(120 * SEC),
                TaskSpec::reduce(120 * SEC),
            ];
            jobs.push(
                JobSpec::new(i, (i % 2) as u16, i * 30 * SEC, tasks)
                    .with_deadline(i * 30 * SEC + HOUR),
            );
        }
        Trace::new(jobs)
    }

    #[test]
    fn identity_scale_preserves_everything_but_ids() {
        let t = base_trace();
        let s = scale_trace(&t, ScaleParams::default(), 1);
        assert_eq!(s.len(), t.len());
        assert_eq!(s.num_tasks(), t.num_tasks());
        assert_eq!(s.jobs[0].submit, t.jobs[0].submit);
        assert_eq!(s.jobs[0].deadline, t.jobs[0].deadline);
    }

    #[test]
    fn job_sampling_thins() {
        let t = base_trace();
        let s = scale_trace(&t, ScaleParams { job_sample_frac: 0.5, ..Default::default() }, 2);
        assert!((60..140).contains(&s.len()), "kept {}", s.len());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn task_scaling_preserves_structure_and_average() {
        let t = base_trace();
        let s = scale_trace(&t, ScaleParams::cluster_fraction(0.5), 3);
        assert_eq!(s.len(), t.len());
        for j in &s.jobs {
            assert!(j.map_count() >= 1, "map stage survives");
            assert!(j.reduce_count() >= 1, "reduce stage survives");
        }
        let maps: usize = s.jobs.iter().map(|j| j.map_count()).sum();
        let expected = t.jobs.iter().map(|j| j.map_count()).sum::<usize>() / 2;
        let ratio = maps as f64 / expected as f64;
        assert!((0.9..1.1).contains(&ratio), "scaled maps {maps} expected ~{expected}");
    }

    #[test]
    fn duration_and_time_scaling() {
        let t = base_trace();
        let s = scale_trace(
            &t,
            ScaleParams { duration_scale: 2.0, time_compression: 0.5, ..Default::default() },
            4,
        );
        assert_eq!(s.jobs[1].submit, t.jobs[1].submit / 2);
        let d = s.jobs[0].tasks.iter().find(|x| x.kind == TaskKind::Map).unwrap().duration;
        assert_eq!(d, 60 * SEC);
        // Deadline slack scaled by duration_scale × time_compression = 1.0.
        let slack = s.jobs[0].deadline.unwrap() - s.jobs[0].submit;
        assert_eq!(slack, HOUR);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = base_trace();
        let p = ScaleParams { job_sample_frac: 0.7, task_scale: 0.3, ..Default::default() };
        assert_eq!(scale_trace(&t, p, 9), scale_trace(&t, p, 9));
        assert_ne!(scale_trace(&t, p, 9), scale_trace(&t, p, 10));
    }

    #[test]
    #[should_panic(expected = "cluster fraction")]
    fn rejects_bad_fraction() {
        let _ = ScaleParams::cluster_fraction(0.0);
    }
}
