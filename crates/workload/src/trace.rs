//! The workload trace model.
//!
//! Parallel databases decompose queries into DAGs of jobs, each a set of
//! parallel tasks (§3.2). Tempo's unit of resource is a uni-dimensional
//! *container* (slot): every task occupies exactly one container of its kind
//! for its duration. A [`Trace`] is the replayable record of job submissions
//! that the Workload Generator feeds to the Schedule Predictor.

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a tenant (a queue/pool in RM terms). Dense small integers so the
/// simulator can index per-tenant state directly.
pub type TenantId = u16;

/// The container pool a task runs in.
///
/// Hadoop-era RMs partition slots into map and reduce containers, and the
/// paper's evaluation reports the two utilizations separately (UTILMAP /
/// UTILRED in Figure 9), so the distinction is first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// Number of distinct [`TaskKind`]s (container pools).
pub const NUM_KINDS: usize = 2;

impl TaskKind {
    /// All kinds, in pool-index order.
    pub const ALL: [TaskKind; NUM_KINDS] = [TaskKind::Map, TaskKind::Reduce];

    /// Dense pool index.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TaskKind::Map => 0,
            TaskKind::Reduce => 1,
        }
    }

    /// Inverse of [`TaskKind::index`].
    #[inline]
    pub fn from_index(i: usize) -> TaskKind {
        match i {
            0 => TaskKind::Map,
            1 => TaskKind::Reduce,
            _ => panic!("invalid task kind index {i}"),
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Map => write!(f, "map"),
            TaskKind::Reduce => write!(f, "reduce"),
        }
    }
}

/// One parallel task of a job: a kind (pool) and a noiseless base duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    pub kind: TaskKind,
    /// Ideal execution time once the task begins useful work. The simulator
    /// may stretch it with noise or restart it after preemption.
    pub duration: Time,
}

impl TaskSpec {
    pub fn map(duration: Time) -> Self {
        Self { kind: TaskKind::Map, duration }
    }

    pub fn reduce(duration: Time) -> Self {
        Self { kind: TaskKind::Reduce, duration }
    }
}

/// A job: a two-stage (map → reduce) DAG of tasks submitted by a tenant.
///
/// Reduce tasks become runnable once `slowstart` of the job's maps have
/// completed; a launched reduce only begins useful work when *all* maps have
/// finished (the shuffle barrier) — before that it occupies its container
/// idle, which is exactly the mechanism behind the reduce-slot utilization
/// problems of §8.2.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Stable identifier, unique within a trace.
    pub id: u64,
    pub tenant: TenantId,
    /// Absolute submission time.
    pub submit: Time,
    /// Optional absolute deadline (deadline SLOs, §5.1).
    pub deadline: Option<Time>,
    /// Fraction of maps that must complete before reduces may launch.
    /// `1.0` replicates a full barrier; Hadoop defaults to early launch.
    pub slowstart: f64,
    pub tasks: Vec<TaskSpec>,
}

impl JobSpec {
    /// Creates a job with a full map→reduce barrier (`slowstart = 1.0`).
    pub fn new(id: u64, tenant: TenantId, submit: Time, tasks: Vec<TaskSpec>) -> Self {
        Self { id, tenant, submit, deadline: None, slowstart: 1.0, tasks }
    }

    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_slowstart(mut self, slowstart: f64) -> Self {
        assert!((0.0..=1.0).contains(&slowstart), "slowstart must be in [0,1]");
        self.slowstart = slowstart;
        self
    }

    pub fn map_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Map).count()
    }

    pub fn reduce_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Reduce).count()
    }

    /// Total useful work across all tasks (container-microseconds).
    pub fn total_work(&self) -> Time {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Longest single task of the given kind.
    pub fn max_duration(&self, kind: TaskKind) -> Time {
        self.tasks.iter().filter(|t| t.kind == kind).map(|t| t.duration).max().unwrap_or(0)
    }

    /// Work of the given kind (container-microseconds).
    pub fn work_of(&self, kind: TaskKind) -> Time {
        self.tasks.iter().filter(|t| t.kind == kind).map(|t| t.duration).sum()
    }

    /// A coarse makespan estimate when run alone on `parallelism` containers
    /// per pool: per-stage work spread over the containers plus the stage's
    /// straggler. Used by deadline policies to derive sensible deadlines.
    pub fn est_makespan(&self, parallelism: u32) -> Time {
        let p = parallelism.max(1) as u64;
        let map_part = self.work_of(TaskKind::Map) / p + self.max_duration(TaskKind::Map);
        let red_part = self.work_of(TaskKind::Reduce) / p + self.max_duration(TaskKind::Reduce);
        map_part + red_part
    }
}

/// A replayable workload trace: the job submission log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub jobs: Vec<JobSpec>,
}

/// Validation failures for a [`Trace`]; surfaced before simulation so the
/// engine can assume well-formed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    DuplicateJobId(u64),
    EmptyJob(u64),
    DeadlineBeforeSubmit(u64),
    BadSlowstart(u64),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::DuplicateJobId(id) => write!(f, "duplicate job id {id}"),
            TraceError::EmptyJob(id) => write!(f, "job {id} has no tasks"),
            TraceError::DeadlineBeforeSubmit(id) => {
                write!(f, "job {id} deadline precedes submission")
            }
            TraceError::BadSlowstart(id) => write!(f, "job {id} slowstart outside [0,1]"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Self { jobs }
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Total number of tasks across all jobs.
    pub fn num_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Sorts jobs by submission time (stable; ties keep input order).
    pub fn sort_by_submit(&mut self) {
        self.jobs.sort_by_key(|j| j.submit);
    }

    /// `(earliest submit, latest submit)`, or `None` for an empty trace.
    pub fn submit_span(&self) -> Option<(Time, Time)> {
        let min = self.jobs.iter().map(|j| j.submit).min()?;
        let max = self.jobs.iter().map(|j| j.submit).max()?;
        Some((min, max))
    }

    /// The distinct tenants appearing in the trace, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let set: BTreeSet<TenantId> = self.jobs.iter().map(|j| j.tenant).collect();
        set.into_iter().collect()
    }

    /// Jobs of one tenant, preserving order.
    pub fn filter_tenant(&self, tenant: TenantId) -> Trace {
        Trace::new(self.jobs.iter().filter(|j| j.tenant == tenant).cloned().collect())
    }

    /// Restricts to jobs submitted in `[start, end)`.
    pub fn window(&self, start: Time, end: Time) -> Trace {
        Trace::new(self.jobs.iter().filter(|j| (start..end).contains(&j.submit)).cloned().collect())
    }

    /// Merges two traces, reassigning ids from `other` on collision.
    pub fn merge(&mut self, other: Trace) {
        let mut used: BTreeSet<u64> = self.jobs.iter().map(|j| j.id).collect();
        let mut next = used.iter().next_back().map_or(0, |m| m + 1);
        for mut job in other.jobs {
            if !used.insert(job.id) {
                while used.contains(&next) {
                    next += 1;
                }
                job.id = next;
                used.insert(next);
            }
            self.jobs.push(job);
        }
        self.sort_by_submit();
    }

    /// Shifts every submission (and deadline) by `offset`.
    pub fn shift(&mut self, offset: Time) {
        for job in &mut self.jobs {
            job.submit += offset;
            if let Some(d) = job.deadline.as_mut() {
                *d += offset;
            }
        }
    }

    /// Rebases the trace so `origin` becomes time 0 (the inverse of
    /// [`Trace::shift`]); used when replaying a window of recent traces in
    /// isolation. Saturates at 0 for events before the origin.
    pub fn shift_to_zero(&mut self, origin: Time) {
        for job in &mut self.jobs {
            job.submit = job.submit.saturating_sub(origin);
            if let Some(d) = job.deadline.as_mut() {
                *d = d.saturating_sub(origin);
            }
        }
    }

    /// Checks structural invariants. Call before feeding to the simulator.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut seen = BTreeSet::new();
        for job in &self.jobs {
            if !seen.insert(job.id) {
                return Err(TraceError::DuplicateJobId(job.id));
            }
            if job.tasks.is_empty() {
                return Err(TraceError::EmptyJob(job.id));
            }
            if let Some(d) = job.deadline {
                if d < job.submit {
                    return Err(TraceError::DeadlineBeforeSubmit(job.id));
                }
            }
            if !(0.0..=1.0).contains(&job.slowstart) || job.slowstart.is_nan() {
                return Err(TraceError::BadSlowstart(job.id));
            }
        }
        Ok(())
    }

    /// Per-tenant summary statistics (drives the Table 1 / Figure 5 reports).
    pub fn tenant_stats(&self, tenant: TenantId) -> TenantTraceStats {
        let jobs: Vec<&JobSpec> = self.jobs.iter().filter(|j| j.tenant == tenant).collect();
        let n = jobs.len();
        let maps: Vec<f64> = jobs.iter().map(|j| j.map_count() as f64).collect();
        let reduces: Vec<f64> = jobs.iter().map(|j| j.reduce_count() as f64).collect();
        let map_durs: Vec<f64> = jobs
            .iter()
            .flat_map(|j| j.tasks.iter())
            .filter(|t| t.kind == TaskKind::Map)
            .map(|t| crate::time::to_secs_f64(t.duration))
            .collect();
        let red_durs: Vec<f64> = jobs
            .iter()
            .flat_map(|j| j.tasks.iter())
            .filter(|t| t.kind == TaskKind::Reduce)
            .map(|t| crate::time::to_secs_f64(t.duration))
            .collect();
        TenantTraceStats {
            tenant,
            jobs: n,
            tasks: jobs.iter().map(|j| j.tasks.len()).sum(),
            with_deadline: jobs.iter().filter(|j| j.deadline.is_some()).count(),
            mean_maps: crate::stats::mean(&maps),
            mean_reduces: crate::stats::mean(&reduces),
            mean_map_secs: crate::stats::mean(&map_durs),
            mean_reduce_secs: crate::stats::mean(&red_durs),
            total_work: jobs.iter().map(|j| j.total_work()).sum(),
        }
    }
}

/// Aggregate shape of one tenant's jobs within a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTraceStats {
    pub tenant: TenantId,
    pub jobs: usize,
    pub tasks: usize,
    pub with_deadline: usize,
    pub mean_maps: f64,
    pub mean_reduces: f64,
    pub mean_map_secs: f64,
    pub mean_reduce_secs: f64,
    pub total_work: Time,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{HOUR, SEC};

    fn job(id: u64, tenant: TenantId, submit: Time) -> JobSpec {
        JobSpec::new(id, tenant, submit, vec![TaskSpec::map(10 * SEC), TaskSpec::reduce(20 * SEC)])
    }

    #[test]
    fn kind_index_roundtrip() {
        for kind in TaskKind::ALL {
            assert_eq!(TaskKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    #[should_panic(expected = "invalid task kind index")]
    fn kind_from_bad_index_panics() {
        let _ = TaskKind::from_index(7);
    }

    #[test]
    fn job_accessors() {
        let j = job(1, 0, 0);
        assert_eq!(j.map_count(), 1);
        assert_eq!(j.reduce_count(), 1);
        assert_eq!(j.total_work(), 30 * SEC);
        assert_eq!(j.work_of(TaskKind::Reduce), 20 * SEC);
        assert_eq!(j.max_duration(TaskKind::Map), 10 * SEC);
        assert_eq!(j.max_duration(TaskKind::Reduce), 20 * SEC);
    }

    #[test]
    fn est_makespan_spreads_work() {
        let tasks = vec![TaskSpec::map(10 * SEC); 10];
        let j = JobSpec::new(1, 0, 0, tasks);
        // 100s of work over 10 slots + 10s straggler = 20s.
        assert_eq!(j.est_makespan(10), 20 * SEC);
        assert_eq!(j.est_makespan(1), 110 * SEC);
        // Parallelism of zero is clamped to one instead of dividing by zero.
        assert_eq!(j.est_makespan(0), 110 * SEC);
    }

    #[test]
    fn validation_catches_errors() {
        let mut t = Trace::new(vec![job(1, 0, 0), job(1, 0, 5)]);
        assert_eq!(t.validate(), Err(TraceError::DuplicateJobId(1)));

        t = Trace::new(vec![JobSpec::new(1, 0, 0, vec![])]);
        assert_eq!(t.validate(), Err(TraceError::EmptyJob(1)));

        t = Trace::new(vec![job(1, 0, 10 * SEC).with_deadline(SEC)]);
        assert_eq!(t.validate(), Err(TraceError::DeadlineBeforeSubmit(1)));

        let mut bad = job(1, 0, 0);
        bad.slowstart = 1.5;
        t = Trace::new(vec![bad]);
        assert_eq!(t.validate(), Err(TraceError::BadSlowstart(1)));

        t = Trace::new(vec![job(1, 0, 0), job(2, 1, 5)]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn window_and_filter() {
        let t = Trace::new(vec![job(1, 0, 0), job(2, 1, HOUR), job(3, 0, 2 * HOUR)]);
        assert_eq!(t.window(0, HOUR).len(), 1);
        assert_eq!(t.window(0, HOUR + 1).len(), 2);
        assert_eq!(t.filter_tenant(0).len(), 2);
        assert_eq!(t.tenants(), vec![0, 1]);
        assert_eq!(t.submit_span(), Some((0, 2 * HOUR)));
        assert_eq!(Trace::default().submit_span(), None);
    }

    #[test]
    fn merge_reassigns_colliding_ids() {
        let mut a = Trace::new(vec![job(1, 0, 0), job(2, 0, 10)]);
        let b = Trace::new(vec![job(2, 1, 5), job(7, 1, 1)]);
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert!(a.validate().is_ok());
        // Sorted by submit after merge.
        assert!(a.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn shift_moves_deadlines_too() {
        let mut t = Trace::new(vec![job(1, 0, 0).with_deadline(HOUR)]);
        t.shift(30 * SEC);
        assert_eq!(t.jobs[0].submit, 30 * SEC);
        assert_eq!(t.jobs[0].deadline, Some(HOUR + 30 * SEC));
    }

    #[test]
    fn shift_to_zero_inverts_shift() {
        let mut t = Trace::new(vec![job(1, 0, 10 * SEC).with_deadline(HOUR)]);
        let orig = t.clone();
        t.shift(5 * HOUR);
        t.shift_to_zero(5 * HOUR);
        assert_eq!(t, orig);
        // Saturation below the origin.
        t.shift_to_zero(2 * HOUR);
        assert_eq!(t.jobs[0].submit, 0);
        assert_eq!(t.jobs[0].deadline, Some(0));
    }

    #[test]
    fn tenant_stats_summarise() {
        let t = Trace::new(vec![job(1, 0, 0), job(2, 0, 5), job(3, 1, 5).with_deadline(HOUR)]);
        let s = t.tenant_stats(0);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.tasks, 4);
        assert_eq!(s.with_deadline, 0);
        assert!((s.mean_maps - 1.0).abs() < 1e-12);
        assert!((s.mean_map_secs - 10.0).abs() < 1e-12);
        let s1 = t.tenant_stats(1);
        assert_eq!(s1.with_deadline, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Trace::new(vec![job(1, 0, 0).with_deadline(HOUR)]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
