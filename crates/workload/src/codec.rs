//! Trace serialization: human-readable JSON and a compact binary format.
//!
//! Production traces are large (the ABC validation trace has 35 million
//! tasks), so alongside the inspectable JSON format there is a fixed-layout
//! little-endian binary codec built on `bytes` that is ~10× smaller and much
//! faster to parse. Both formats round-trip exactly.

use crate::time::Time;
use crate::trace::{JobSpec, TaskKind, TaskSpec, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic prefix of the binary trace format ("TPO1").
const MAGIC: u32 = 0x5450_4F31;

/// Errors from the binary decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadMagic(u32),
    Truncated { need: usize, have: usize },
    BadKind(u8),
    BadSlowstart,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(m) => write!(f, "bad magic 0x{m:08X}"),
            CodecError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            CodecError::BadKind(k) => write!(f, "invalid task kind byte {k}"),
            CodecError::BadSlowstart => write!(f, "slowstart outside [0,1]"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serializes a trace to pretty JSON.
pub fn to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string_pretty(trace)
}

/// Parses a trace from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(s)
}

/// Serializes a trace as JSON Lines (one job per line) — convenient for
/// streaming very large traces through Unix tooling.
pub fn to_jsonl(trace: &Trace) -> serde_json::Result<String> {
    let mut out = String::new();
    for job in &trace.jobs {
        out.push_str(&serde_json::to_string(job)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parses JSON Lines back into a trace. Blank lines are skipped.
pub fn from_jsonl(s: &str) -> serde_json::Result<Trace> {
    let mut jobs = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        jobs.push(serde_json::from_str::<JobSpec>(line)?);
    }
    Ok(Trace::new(jobs))
}

/// Encodes a trace into the compact binary format.
///
/// Layout (all little-endian):
/// `magic:u32, njobs:u64, [job: id:u64, tenant:u16, submit:u64,
/// has_deadline:u8, deadline:u64?, slowstart:f64, ntasks:u32,
/// [task: kind:u8, duration:u64]]`.
pub fn to_binary(trace: &Trace) -> Bytes {
    // Exact size precomputation avoids reallocation on multi-million-task
    // traces.
    let mut size = 4 + 8;
    for job in &trace.jobs {
        size += 8 + 2 + 8 + 1 + if job.deadline.is_some() { 8 } else { 0 } + 8 + 4;
        size += job.tasks.len() * 9;
    }
    let mut buf = BytesMut::with_capacity(size);
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(trace.jobs.len() as u64);
    for job in &trace.jobs {
        buf.put_u64_le(job.id);
        buf.put_u16_le(job.tenant);
        buf.put_u64_le(job.submit);
        match job.deadline {
            Some(d) => {
                buf.put_u8(1);
                buf.put_u64_le(d);
            }
            None => buf.put_u8(0),
        }
        buf.put_f64_le(job.slowstart);
        buf.put_u32_le(job.tasks.len() as u32);
        for t in &job.tasks {
            buf.put_u8(t.kind.index() as u8);
            buf.put_u64_le(t.duration);
        }
    }
    buf.freeze()
}

/// Decodes the binary format produced by [`to_binary`].
pub fn from_binary(mut data: Bytes) -> Result<Trace, CodecError> {
    let check = |buf: &Bytes, need: usize| {
        if buf.remaining() < need {
            Err(CodecError::Truncated { need, have: buf.remaining() })
        } else {
            Ok(())
        }
    };
    check(&data, 12)?;
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let njobs = data.get_u64_le() as usize;
    let mut jobs = Vec::with_capacity(njobs.min(1 << 24));
    for _ in 0..njobs {
        check(&data, 8 + 2 + 8 + 1)?;
        let id = data.get_u64_le();
        let tenant = data.get_u16_le();
        let submit: Time = data.get_u64_le();
        let has_deadline = data.get_u8();
        let deadline = if has_deadline != 0 {
            check(&data, 8)?;
            Some(data.get_u64_le())
        } else {
            None
        };
        check(&data, 8 + 4)?;
        let slowstart = data.get_f64_le();
        if !(0.0..=1.0).contains(&slowstart) || slowstart.is_nan() {
            return Err(CodecError::BadSlowstart);
        }
        let ntasks = data.get_u32_le() as usize;
        check(&data, ntasks * 9)?;
        let mut tasks = Vec::with_capacity(ntasks);
        for _ in 0..ntasks {
            let kind = match data.get_u8() {
                0 => TaskKind::Map,
                1 => TaskKind::Reduce,
                k => return Err(CodecError::BadKind(k)),
            };
            let duration = data.get_u64_le();
            tasks.push(TaskSpec { kind, duration });
        }
        jobs.push(JobSpec { id, tenant, submit, deadline, slowstart, tasks });
    }
    Ok(Trace::new(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{HOUR, SEC};

    fn sample_trace() -> Trace {
        let mut jobs = Vec::new();
        for i in 0..50u64 {
            let mut j = JobSpec::new(
                i,
                (i % 3) as u16,
                i * 7 * SEC,
                vec![TaskSpec::map(10 * SEC + i), TaskSpec::reduce(20 * SEC + i)],
            );
            if i % 2 == 0 {
                j = j.with_deadline(i * 7 * SEC + HOUR);
            }
            jobs.push(j.with_slowstart(0.5 + (i % 4) as f64 * 0.1));
        }
        Trace::new(jobs)
    }

    #[test]
    fn json_roundtrip() {
        let t = sample_trace();
        let s = to_json(&t).unwrap();
        assert_eq!(from_json(&s).unwrap(), t);
    }

    #[test]
    fn jsonl_roundtrip_and_blank_lines() {
        let t = sample_trace();
        let mut s = to_jsonl(&t).unwrap();
        s.push_str("\n\n");
        assert_eq!(from_jsonl(&s).unwrap(), t);
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let b = to_binary(&t);
        assert_eq!(from_binary(b).unwrap(), t);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let b = to_binary(&t).len();
        let j = to_json(&t).unwrap().len();
        assert!(b * 4 < j, "binary {b} vs json {j}");
    }

    #[test]
    fn binary_rejects_garbage() {
        assert_eq!(
            from_binary(Bytes::from_static(b"xx")),
            Err(CodecError::Truncated { need: 12, have: 2 })
        );
        let mut bad = BytesMut::new();
        bad.put_u32_le(0xDEAD_BEEF);
        bad.put_u64_le(0);
        assert_eq!(from_binary(bad.freeze()), Err(CodecError::BadMagic(0xDEAD_BEEF)));
    }

    #[test]
    fn binary_rejects_truncated_job() {
        let t = sample_trace();
        let b = to_binary(&t);
        let cut = b.slice(0..b.len() - 3);
        assert!(matches!(from_binary(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn binary_rejects_bad_kind() {
        let t = Trace::new(vec![JobSpec::new(1, 0, 0, vec![TaskSpec::map(SEC)])]);
        let b = to_binary(&t);
        let mut raw = b.to_vec();
        // Kind byte of the single task sits 9 bytes from the end.
        let pos = raw.len() - 9;
        raw[pos] = 9;
        assert_eq!(from_binary(Bytes::from(raw)), Err(CodecError::BadKind(9)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        assert_eq!(from_binary(to_binary(&t)).unwrap(), t);
        assert_eq!(from_jsonl(&to_jsonl(&t).unwrap()).unwrap(), t);
    }
}
