//! Simulated-time representation shared by the whole workspace.
//!
//! Time is a `u64` count of **microseconds** since the start of the simulated
//! horizon. Integer time keeps event ordering exact and deterministic (no
//! float accumulation drift), which the Schedule Predictor relies on: the
//! paper's time-warp simulation only touches state at task submission,
//! tentative finish, and preemption-check instants, so two runs with the same
//! seed must interleave identically.

/// Simulated time or duration, in microseconds.
pub type Time = u64;

/// One microsecond.
pub const US: Time = 1;
/// One millisecond.
pub const MS: Time = 1_000;
/// One second.
pub const SEC: Time = 1_000_000;
/// One minute.
pub const MIN: Time = 60 * SEC;
/// One hour.
pub const HOUR: Time = 60 * MIN;
/// One day.
pub const DAY: Time = 24 * HOUR;
/// One week.
pub const WEEK: Time = 7 * DAY;

/// Converts fractional seconds to [`Time`], saturating at zero for negative
/// inputs (sampled durations can round below zero only through noise bugs;
/// clamping keeps the simulator total-order safe).
#[inline]
pub fn from_secs_f64(secs: f64) -> Time {
    if secs <= 0.0 {
        return 0;
    }
    let us = secs * SEC as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as Time
    }
}

/// Converts a [`Time`] to fractional seconds.
#[inline]
pub fn to_secs_f64(t: Time) -> f64 {
    t as f64 / SEC as f64
}

/// Hour-of-day (0..24) for a timestamp, assuming the horizon starts at
/// midnight on day 0.
#[inline]
pub fn hour_of_day(t: Time) -> usize {
    ((t % DAY) / HOUR) as usize
}

/// Day-of-week (0..7) for a timestamp; day 0 is the first simulated day.
#[inline]
pub fn day_of_week(t: Time) -> usize {
    ((t % WEEK) / DAY) as usize
}

/// Human-readable rendering (`1h02m03s`-style) used by the report printers.
pub fn format_duration(t: Time) -> String {
    let total_secs = t / SEC;
    let h = total_secs / 3600;
    let m = (total_secs % 3600) / 60;
    let s = total_secs % 60;
    if h > 0 {
        format!("{h}h{m:02}m{s:02}s")
    } else if m > 0 {
        format!("{m}m{s:02}s")
    } else {
        let frac_ms = (t % SEC) / MS;
        if total_secs == 0 && frac_ms > 0 {
            format!("{frac_ms}ms")
        } else {
            format!("{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_roundtrip() {
        assert_eq!(from_secs_f64(1.5), 1_500_000);
        assert!((to_secs_f64(from_secs_f64(123.456)) - 123.456).abs() < 1e-6);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(from_secs_f64(-3.0), 0);
        assert_eq!(from_secs_f64(f64::NEG_INFINITY), 0);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(from_secs_f64(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn calendar_helpers() {
        assert_eq!(hour_of_day(0), 0);
        assert_eq!(hour_of_day(3 * HOUR + 5 * MIN), 3);
        assert_eq!(hour_of_day(DAY + HOUR), 1);
        assert_eq!(day_of_week(0), 0);
        assert_eq!(day_of_week(6 * DAY + 23 * HOUR), 6);
        assert_eq!(day_of_week(WEEK + DAY), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(500 * MS), "500ms");
        assert_eq!(format_duration(59 * SEC), "59s");
        assert_eq!(format_duration(61 * SEC), "1m01s");
        assert_eq!(format_duration(3 * HOUR + 2 * MIN + SEC), "3h02m01s");
    }
}
