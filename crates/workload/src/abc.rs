//! Company ABC tenant archetypes (Table 1 of the paper).
//!
//! Company ABC runs a multi-tenant database on a 700-node Hadoop cluster with
//! six tenants whose characteristics the paper tabulates:
//!
//! | Tenant | Characteristics |
//! |---|---|
//! | BI  | I/O-intensive SQL queries |
//! | DEV | Mixture of different types of jobs |
//! | APP | Small, lightweight jobs |
//! | STR | Hadoop streaming jobs |
//! | MV  | Long-running, CPU-intensive |
//! | ETL | I/O-intensive, periodic but bursty |
//!
//! ETL and MV carry deadlines (missing them has multi-day business impact,
//! §2.1); APP is a high-priority production app where ~30% of jobs missed
//! deadlines; BI, DEV, STR are best-effort. The parameters below are chosen
//! to reproduce the qualitative trace features the paper reports: lognormal
//! durations with very long MV reduces (2–6 h completion variance, §2.2),
//! bursty hourly ETL whose input shrinks on weekends (§2.4), diurnal BI, and
//! Figure 5/8-style duration and width CDFs.

use crate::model::{
    ArrivalProcess, CountDist, DeadlinePolicy, JobShape, TenantModel, WorkloadModel,
};
use crate::stats::{LogNormal, WeeklyProfile};
use crate::time::{Time, HOUR, MIN, WEEK};
use crate::trace::{TenantId, Trace};

/// Dense tenant ids of the six ABC tenants, in Table 1 order.
pub mod tenant {
    use super::TenantId;
    pub const BI: TenantId = 0;
    pub const DEV: TenantId = 1;
    pub const APP: TenantId = 2;
    pub const STR: TenantId = 3;
    pub const MV: TenantId = 4;
    pub const ETL: TenantId = 5;
}

/// Table-1 order tenant names.
pub const TENANT_NAMES: [&str; 6] = ["BI", "DEV", "APP", "STR", "MV", "ETL"];

/// One-line characteristics, straight from Table 1 (used by the Table 1
/// reproduction report).
pub const TENANT_CHARACTERISTICS: [&str; 6] = [
    "I/O-intensive SQL queries",
    "Mixture of different types of jobs",
    "Small, lightweight jobs",
    "Hadoop streaming jobs",
    "Long-running, CPU-intensive",
    "I/O-intensive, periodic but bursty",
];

/// Whether each tenant is deadline-driven (`true`) or best-effort (§2.1).
pub const TENANT_DEADLINE_DRIVEN: [bool; 6] = [false, false, true, false, true, true];

/// Builds the six-tenant ABC workload model at a load `scale` (1.0 ≈ a
/// 600-container cluster's worth of work; scale down for unit tests).
pub fn abc_model(scale: f64) -> WorkloadModel {
    assert!(scale > 0.0, "scale must be positive");
    let s = scale;
    let bi = TenantModel {
        name: "BI".into(),
        // Analysts work business hours; queries scan large tables (many maps).
        arrival: ArrivalProcess::Poisson {
            rate_per_hour: 40.0 * s,
            profile: WeeklyProfile::business_hours(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(40.0, 0.9),
                min: 1,
                max: 2000,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(4.0, 0.7),
                min: 0,
                max: 100,
            },
            map_secs: LogNormal::from_median(45.0, 0.8),
            reduce_secs: LogNormal::from_median(90.0, 0.8),
        },
        deadline: DeadlinePolicy::None,
        slowstart: 1.0,
    };
    let dev = TenantModel {
        name: "DEV".into(),
        // Development runs: broad mixture, high variance in everything.
        arrival: ArrivalProcess::Poisson {
            rate_per_hour: 30.0 * s,
            profile: WeeklyProfile::business_hours(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(20.0, 1.3),
                min: 1,
                max: 3000,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(2.0, 1.1),
                min: 0,
                max: 300,
            },
            map_secs: LogNormal::from_median(35.0, 1.2),
            reduce_secs: LogNormal::from_median(120.0, 1.2),
        },
        deadline: DeadlinePolicy::None,
        slowstart: 1.0,
    };
    let app = TenantModel {
        name: "APP".into(),
        // High-priority production application: a steady stream of small jobs
        // with tight relative deadlines (~30% missed in production, §2.1).
        arrival: ArrivalProcess::Poisson {
            rate_per_hour: 90.0 * s,
            profile: WeeklyProfile::flat(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(4.0, 0.5),
                min: 1,
                max: 40,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(1.0, 0.4),
                min: 0,
                max: 8,
            },
            map_secs: LogNormal::from_median(12.0, 0.5),
            reduce_secs: LogNormal::from_median(25.0, 0.5),
        },
        deadline: DeadlinePolicy::Relative { factor: 3.0, parallelism: 8, floor: 2 * MIN },
        slowstart: 1.0,
    };
    let str_t = TenantModel {
        name: "STR".into(),
        // Hadoop streaming: map-heavy, medium duration, few reduces.
        arrival: ArrivalProcess::Poisson {
            rate_per_hour: 18.0 * s,
            profile: WeeklyProfile::flat(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(60.0, 0.8),
                min: 2,
                max: 1500,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(1.0, 0.8),
                min: 0,
                max: 20,
            },
            map_secs: LogNormal::from_median(150.0, 0.9),
            reduce_secs: LogNormal::from_median(200.0, 0.9),
        },
        deadline: DeadlinePolicy::None,
        slowstart: 1.0,
    };
    let mv = TenantModel {
        name: "MV".into(),
        // Materialized-view refresh: few runs per day, enormous reduces
        // (completion varies 2–6 hours, §2.2); hard deadlines.
        arrival: ArrivalProcess::Periodic {
            period: 6 * HOUR,
            burst: (3.0 * s).round().max(1.0) as u32,
            jitter: 20 * MIN,
            profile: WeeklyProfile::flat(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(120.0, 0.6),
                min: 10,
                max: 3000,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(25.0, 0.5),
                min: 4,
                max: 200,
            },
            map_secs: LogNormal::from_median(90.0, 0.7),
            reduce_secs: LogNormal::from_median(2400.0, 1.0),
        },
        deadline: DeadlinePolicy::NextPeriod { period: 6 * HOUR },
        slowstart: 0.6,
    };
    let etl = TenantModel {
        name: "ETL".into(),
        // Hourly ingest bursts; completion of one recurring job varies 5–60
        // minutes (§2.2); input shrinks on weekends (§2.4).
        arrival: ArrivalProcess::Periodic {
            period: HOUR,
            burst: (6.0 * s).round().max(1.0) as u32,
            jitter: 5 * MIN,
            profile: WeeklyProfile::weekday_heavy(),
        },
        shape: JobShape {
            num_maps: CountDist::LogNormal {
                ln: LogNormal::from_median(80.0, 0.7),
                min: 5,
                max: 2500,
            },
            num_reduces: CountDist::LogNormal {
                ln: LogNormal::from_median(8.0, 0.5),
                min: 1,
                max: 80,
            },
            map_secs: LogNormal::from_median(60.0, 0.7),
            reduce_secs: LogNormal::from_median(300.0, 0.9),
        },
        deadline: DeadlinePolicy::NextPeriod { period: HOUR },
        slowstart: 0.8,
    };
    WorkloadModel::new(vec![bi, dev, app, str_t, mv, etl])
}

/// Generates one simulated week of the ABC workload at the given load scale.
pub fn abc_week(scale: f64, seed: u64) -> Trace {
    abc_model(scale).generate(0, WEEK, seed)
}

/// Generates `span` of ABC workload at the given load scale.
pub fn abc_span(scale: f64, span: Time, seed: u64) -> Trace {
    abc_model(scale).generate(0, span, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{day_of_week, DAY};
    use crate::trace::TaskKind;

    #[test]
    fn week_has_all_tenants_and_valid_structure() {
        let t = abc_week(0.05, 1);
        assert!(t.validate().is_ok());
        assert_eq!(t.tenants(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn deadline_tenants_match_table1() {
        let t = abc_week(0.05, 2);
        for (tid, driven) in TENANT_DEADLINE_DRIVEN.iter().enumerate() {
            let sub = t.filter_tenant(tid as TenantId);
            assert!(!sub.is_empty(), "tenant {tid} generated no jobs");
            let with_dl = sub.jobs.iter().filter(|j| j.deadline.is_some()).count();
            if *driven {
                assert_eq!(with_dl, sub.len(), "tenant {tid} should be fully deadline-driven");
            } else {
                assert_eq!(with_dl, 0, "tenant {tid} should be best-effort");
            }
        }
    }

    #[test]
    fn mv_reduces_dominate_durations() {
        // Table 1 / Figure 8: MV is long-running with the heaviest reduces.
        let t = abc_week(0.05, 3);
        let stats_mv = t.tenant_stats(tenant::MV);
        let stats_app = t.tenant_stats(tenant::APP);
        assert!(stats_mv.mean_reduce_secs > 15.0 * stats_app.mean_reduce_secs);
        assert!(stats_app.mean_map_secs < 30.0, "APP jobs are lightweight");
    }

    #[test]
    fn etl_is_weekend_suppressed() {
        let t = abc_week(0.2, 4);
        let etl = t.filter_tenant(tenant::ETL);
        let weekend = etl.jobs.iter().filter(|j| day_of_week(j.submit) >= 5).count();
        let weekday = etl.len() - weekend;
        assert!(
            weekday as f64 / 5.0 > 2.0 * (weekend as f64 / 2.0).max(0.5),
            "weekday {weekday} weekend {weekend}"
        );
    }

    #[test]
    fn bi_is_diurnal() {
        let t = abc_span(0.2, 2 * DAY, 5);
        let bi = t.filter_tenant(tenant::BI);
        let daytime = bi
            .jobs
            .iter()
            .filter(|j| (10..18).contains(&crate::time::hour_of_day(j.submit)))
            .count();
        let night = bi.jobs.iter().filter(|j| crate::time::hour_of_day(j.submit) < 5).count();
        assert!(daytime > 3 * night.max(1), "daytime {daytime} night {night}");
    }

    #[test]
    fn load_scale_scales_job_counts() {
        let small = abc_week(0.05, 6).len();
        let large = abc_week(0.2, 6).len();
        assert!(large as f64 > 2.5 * small as f64, "small {small} large {large}");
    }

    #[test]
    fn mixture_tenant_has_highest_variance() {
        // DEV is "a mixture of different types of jobs": its duration spread
        // should exceed APP's.
        let t = abc_week(0.1, 7);
        let spread = |tid: TenantId| {
            let durs: Vec<f64> = t
                .filter_tenant(tid)
                .jobs
                .iter()
                .flat_map(|j| j.tasks.iter())
                .filter(|ts| ts.kind == TaskKind::Map)
                .map(|ts| crate::time::to_secs_f64(ts.duration).ln())
                .collect();
            let m = crate::stats::mean(&durs);
            durs.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / durs.len() as f64
        };
        assert!(spread(tenant::DEV) > 2.0 * spread(tenant::APP));
    }
}
