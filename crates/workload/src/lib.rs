//! # tempo-workload
//!
//! Workload substrate for the Tempo reproduction: trace data model,
//! statistical workload models, and the concrete tenant archetypes used by
//! the paper's evaluation (Company ABC's six tenants, Facebook-like and
//! Cloudera-like traces, and the two-tenant EC2 experiment mix).
//!
//! The paper's Workload Generator (§7.1) supports two modes, both provided
//! here:
//!
//! 1. **Trace replay** — [`trace::Trace`] is the replayable submission log,
//!    with JSON and compact binary codecs in [`codec`] and SWIM-style
//!    scale-down in [`swim`].
//! 2. **Statistical models** — [`model::WorkloadModel`] samples synthetic
//!    workloads with the distributional families observed in production
//!    (lognormal task durations, Poisson/periodic arrivals), can be fitted
//!    from historical traces, and supports extrapolations such as "grow the
//!    data size by 30%".

pub mod abc;
pub mod codec;
pub mod model;
pub mod stats;
pub mod swim;
pub mod synthetic;
pub mod time;
pub mod trace;
pub mod window;

pub use model::{ArrivalProcess, CountDist, DeadlinePolicy, JobShape, TenantModel, WorkloadModel};
pub use time::Time;
pub use trace::{JobSpec, TaskKind, TaskSpec, TenantId, Trace, NUM_KINDS};
pub use window::{WindowLog, WindowLogState};
