//! Incremental workload-window ingestion.
//!
//! A long-running controller never sees "the trace" — it sees a live stream
//! of job submissions and periodically re-tunes on the most recent window
//! (§8.2.3). [`WindowLog`] is the buffer between the two: jobs append as
//! they arrive (any order), the log keeps them sorted by submission time,
//! and `[start, end)` windows slice out by binary search instead of an O(n)
//! scan over history. Old jobs are evicted once the window has moved past
//! them, so memory tracks the window length rather than the stream length.
//!
//! Ingested jobs are re-identified with a dense per-log counter: producers
//! across tenancy domains (or restarts) need not coordinate id spaces, and a
//! replayed window always validates ([`Trace::validate`] rejects duplicate
//! ids). The assignment is part of the log's deterministic state, so a
//! snapshot/restore cycle resumes the exact id stream.

use crate::time::Time;
use crate::trace::{JobSpec, Trace};
use serde::{Deserialize, Serialize};

/// An append-only, submit-ordered buffer of recent job submissions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowLog {
    /// Sorted by `submit`; ties keep arrival order (stable insertion).
    jobs: Vec<JobSpec>,
    /// Next dense id to assign on append.
    next_id: u64,
    /// Jobs accepted over the log's lifetime (including evicted ones).
    accepted: u64,
    /// Jobs dropped by [`WindowLog::evict_before`].
    evicted: u64,
}

/// Serializable state of a [`WindowLog`] (daemon snapshot/restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowLogState {
    pub jobs: Vec<JobSpec>,
    pub next_id: u64,
    pub accepted: u64,
    pub evicted: u64,
}

impl WindowLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs currently buffered.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs accepted over the log's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Jobs evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// `(earliest, latest)` buffered submission, or `None` when empty.
    pub fn span(&self) -> Option<(Time, Time)> {
        Some((self.jobs.first()?.submit, self.jobs.last()?.submit))
    }

    /// Ingests one job, assigning it the log's next dense id (the caller's
    /// id is discarded). Returns the assigned id. O(log n) to find the slot;
    /// appends at the tail are O(1), which is the common case for live
    /// streams.
    pub fn append(&mut self, mut job: JobSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.accepted += 1;
        job.id = id;
        // Stable for equal submits: insert after existing entries.
        let at = self.jobs.partition_point(|j| j.submit <= job.submit);
        if at == self.jobs.len() {
            self.jobs.push(job);
        } else {
            self.jobs.insert(at, job);
        }
        id
    }

    /// Ingests a batch; returns how many jobs were accepted.
    pub fn extend(&mut self, jobs: impl IntoIterator<Item = JobSpec>) -> u64 {
        let mut n = 0;
        for job in jobs {
            self.append(job);
            n += 1;
        }
        n
    }

    /// The buffered jobs submitted in `[start, end)`, as a replayable trace
    /// (still on the absolute time axis — callers typically
    /// [`Trace::shift_to_zero`] onto the window origin). Binary search on
    /// both bounds; cost is proportional to the window's job count only.
    pub fn trace_in(&self, start: Time, end: Time) -> Trace {
        let lo = self.jobs.partition_point(|j| j.submit < start);
        let hi = self.jobs.partition_point(|j| j.submit < end);
        Trace::new(self.jobs[lo..hi].to_vec())
    }

    /// Drops every job submitted before `t`; returns how many were evicted.
    pub fn evict_before(&mut self, t: Time) -> usize {
        let cut = self.jobs.partition_point(|j| j.submit < t);
        self.jobs.drain(..cut);
        self.evicted += cut as u64;
        cut
    }

    /// Serializable state for daemon snapshots.
    pub fn to_state(&self) -> WindowLogState {
        WindowLogState {
            jobs: self.jobs.clone(),
            next_id: self.next_id,
            accepted: self.accepted,
            evicted: self.evicted,
        }
    }

    /// Rebuilds a log from snapshot state. The job list is re-sorted
    /// defensively (snapshots from well-behaved logs are already sorted, and
    /// the sort is stable, so this is a no-op for them).
    pub fn from_state(state: WindowLogState) -> Self {
        let WindowLogState { mut jobs, next_id, accepted, evicted } = state;
        jobs.sort_by_key(|j| j.submit);
        Self { jobs, next_id, accepted, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MIN, SEC};
    use crate::trace::TaskSpec;

    fn job(id: u64, submit: Time) -> JobSpec {
        JobSpec::new(id, 0, submit, vec![TaskSpec::map(10 * SEC)])
    }

    #[test]
    fn append_reassigns_dense_ids_and_sorts() {
        let mut log = WindowLog::new();
        log.append(job(99, 2 * MIN));
        log.append(job(99, MIN));
        log.append(job(42, 3 * MIN));
        let t = log.trace_in(0, 10 * MIN);
        assert_eq!(t.len(), 3);
        assert!(t.validate().is_ok(), "reassigned ids never collide");
        assert!(t.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert_eq!(t.jobs.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn equal_submits_keep_arrival_order() {
        let mut log = WindowLog::new();
        for _ in 0..4 {
            log.append(job(0, MIN));
        }
        let ids: Vec<u64> = log.trace_in(0, 2 * MIN).jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "stable insertion for ties");
    }

    #[test]
    fn windows_slice_by_submit() {
        let mut log = WindowLog::new();
        for i in 0..10u64 {
            log.append(job(i, i * MIN));
        }
        assert_eq!(log.trace_in(2 * MIN, 5 * MIN).len(), 3);
        assert_eq!(log.trace_in(0, MIN).len(), 1);
        assert_eq!(log.trace_in(10 * MIN, 20 * MIN).len(), 0);
        assert_eq!(log.span(), Some((0, 9 * MIN)));
    }

    #[test]
    fn eviction_bounds_memory_but_keeps_counters() {
        let mut log = WindowLog::new();
        for i in 0..10u64 {
            log.append(job(i, i * MIN));
        }
        assert_eq!(log.evict_before(4 * MIN), 4);
        assert_eq!(log.len(), 6);
        assert_eq!(log.accepted(), 10);
        assert_eq!(log.evicted(), 4);
        // Ids keep advancing from where they were.
        let id = log.append(job(0, 20 * MIN));
        assert_eq!(id, 10);
    }

    #[test]
    fn state_round_trips() {
        let mut log = WindowLog::new();
        for i in 0..5u64 {
            log.append(job(i, (5 - i) * MIN));
        }
        log.evict_before(2 * MIN);
        let state = log.to_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: WindowLogState = serde_json::from_str(&json).unwrap();
        let restored = WindowLog::from_state(back);
        assert_eq!(restored, log);
        // The restored log continues the id stream identically.
        let mut a = log.clone();
        let mut b = restored;
        assert_eq!(a.append(job(0, 9 * MIN)), b.append(job(0, 9 * MIN)));
        assert_eq!(a, b);
    }
}
