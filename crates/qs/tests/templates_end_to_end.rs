//! End-to-end QS template tests: the declarative SLO surface evaluated
//! against real simulated schedules, including the priority semantics of
//! §5.2(d) and §6.1.

use std::collections::BTreeMap;
use tempo_qs::{PoolScope, QsKind, SloSet, SloSpec};
use tempo_sim::{predict, ClusterSpec, RmConfig};
use tempo_workload::time::{HOUR, MIN, SEC};
use tempo_workload::trace::{JobSpec, TaskSpec, Trace};

fn names() -> BTreeMap<String, u16> {
    let mut m = BTreeMap::new();
    m.insert("prod".into(), 0);
    m.insert("adhoc".into(), 1);
    m
}

/// A deterministic two-tenant schedule with known outcomes: tenant 0 runs
/// two deadline jobs (one will miss), tenant 1 runs three best-effort jobs.
fn schedule() -> tempo_sim::Schedule {
    let trace = Trace::new(vec![
        // Meets its deadline comfortably.
        JobSpec::new(0, 0, 0, vec![TaskSpec::map(60 * SEC)]).with_deadline(3 * MIN),
        // Duration 10min ≫ 2min deadline: always missed, even with slack.
        JobSpec::new(1, 0, 0, vec![TaskSpec::map(10 * MIN)]).with_deadline(2 * MIN),
        JobSpec::new(2, 1, 0, vec![TaskSpec::map(2 * MIN)]),
        JobSpec::new(3, 1, MIN, vec![TaskSpec::map(2 * MIN)]),
        JobSpec::new(4, 1, 2 * MIN, vec![TaskSpec::map(2 * MIN)]),
    ]);
    predict(&trace, &ClusterSpec::new(8, 2), &RmConfig::fair(2))
}

#[test]
fn parsed_templates_evaluate_to_known_values() {
    let set = SloSet::parse(
        "\
tenant prod: deadline_miss(slack=25%) <= 5%\n\
tenant adhoc: avg_response_time <= 3min\n\
cluster: throughput >= 4/h\n",
        &names(),
    )
    .expect("parses");
    let sched = schedule();
    let qs = set.evaluate(&sched, 0, HOUR);
    // One of tenant 0's two jobs misses its deadline → 0.5.
    assert!((qs[0] - 0.5).abs() < 1e-12, "deadline miss fraction {}", qs[0]);
    // Tenant 1's jobs all run 120 s unobstructed (8 slots, ≤5 tasks).
    assert!((qs[1] - 120.0).abs() < 1e-9, "AJR {}", qs[1]);
    // 5 jobs completed within the hour → −5 jobs/h.
    assert!((qs[2] + 5.0).abs() < 1e-9, "throughput {}", qs[2]);
    // Threshold satisfaction: DL violated (0.5 > 0.05), AJR satisfied,
    // throughput satisfied (−5 ≤ −4).
    let thresholds = set.thresholds();
    assert!(qs[0] > thresholds[0].unwrap());
    assert!(qs[1] <= thresholds[1].unwrap());
    assert!(qs[2] <= thresholds[2].unwrap());
}

#[test]
fn priority_scales_evaluation_and_threshold_consistently() {
    let sched = schedule();
    let base = SloSpec::new(Some(0), QsKind::DeadlineMiss { gamma: 0.25 }).with_threshold(0.05);
    let promoted = base.clone().with_priority(3.0);
    let (b, p) = (base.evaluate(&sched, 0, HOUR), promoted.evaluate(&sched, 0, HOUR));
    assert!((p - 3.0 * b).abs() < 1e-12, "priority multiplies the QS value");
    // Violation status is invariant under promotion: both sides scale.
    let b_violated = b > base.weighted_threshold().unwrap();
    let p_violated = p > promoted.weighted_threshold().unwrap();
    assert_eq!(b_violated, p_violated);
}

#[test]
fn utilization_template_tracks_schedule_accounting() {
    let set = SloSet::parse("cluster: utilization(map) >= 1%", &names()).expect("parses");
    let sched = schedule();
    let qs = set.evaluate(&sched, 0, HOUR);
    // Occupancy: 60s + 600s + 3×120s = 1020 container-seconds of maps over
    // 8 slots × 1h.
    let expect = 1020.0 / (8.0 * 3600.0);
    assert!((qs[0] + expect).abs() < 1e-9, "utilization {} vs {}", qs[0], -expect);
}

#[test]
fn fairness_template_against_dominant_usage() {
    let sched = schedule();
    // Tenant 1 used 360 of 1020 map container-seconds → dominant share
    // (map pool) = 360 / (8×3600).
    let util1 = 360.0 / (8.0 * 3600.0);
    let spec = SloSpec::new(Some(1), QsKind::Fairness { share: util1, pool: PoolScope::Map });
    assert!(spec.evaluate(&sched, 0, HOUR).abs() < 1e-9, "exact share ⇒ zero deviation");
}
