//! QS templates: declarative SLO specification (§5.2).
//!
//! A QS template names (a) the tenant queue, (b) a predefined QS metric,
//! (c) optional metric parameters, and (d) an optional priority. This module
//! provides both the typed representation ([`SloSpec`]) and a small text
//! parser so a DBA can write, verbatim from the paper's examples:
//!
//! ```text
//! tenant A: avg_response_time <= 2min
//! tenant B: deadline_miss(slack=25%) <= 5%
//! cluster: utilization(reduce) >= 60%
//! tenant A: throughput >= 100/h priority 2
//! tenant B: fairness(share=30%) <= 0.1
//! ```
//!
//! Thresholds become the `r_i` constraint bounds of problem (SP1); for
//! metrics that are negated into QS form (utilization, throughput), a `>=`
//! threshold is converted to the equivalent `<=` bound on the QS value.

use crate::metrics::{evaluate_qs, PoolScope, QsKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use tempo_sim::Schedule;
use tempo_workload::time::Time;
use tempo_workload::TenantId;

/// One SLO: a QS metric bound for a tenant (or the whole cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// `None` = cluster-level SLO.
    pub tenant: Option<TenantId>,
    pub kind: QsKind,
    /// The bound `r_i` in `E[f_i(x; w)] ≤ r_i`. `None` makes this a pure
    /// best-effort objective (minimized, never constrained) — the control
    /// loop then uses the currently-achieved value as the next `r_i`,
    /// ratcheting improvement (§6.1).
    pub threshold: Option<f64>,
    /// Priority multiplier (≥ 1 promotes the SLO, §6.1).
    pub priority: f64,
}

impl SloSpec {
    pub fn new(tenant: Option<TenantId>, kind: QsKind) -> Self {
        let name = match tenant {
            Some(t) => format!("tenant{t}:{}", kind.label()),
            None => format!("cluster:{}", kind.label()),
        };
        Self { name, tenant, kind, threshold: None, priority: 1.0 }
    }

    pub fn with_threshold(mut self, r: f64) -> Self {
        self.threshold = Some(r);
        self
    }

    pub fn with_priority(mut self, p: f64) -> Self {
        assert!(p > 0.0, "priority must be positive");
        self.priority = p;
        self
    }

    /// Evaluates the (priority-weighted) QS value on a schedule window.
    pub fn evaluate(&self, schedule: &Schedule, start: Time, end: Time) -> f64 {
        self.priority * evaluate_qs(&self.kind, schedule, self.tenant, start, end)
    }

    /// The priority-weighted bound, aligned with [`SloSpec::evaluate`].
    pub fn weighted_threshold(&self) -> Option<f64> {
        self.threshold.map(|r| self.priority * r)
    }
}

/// A set of SLOs — the input to Tempo's Optimizer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloSet {
    pub slos: Vec<SloSpec>,
}

impl SloSet {
    pub fn new(slos: Vec<SloSpec>) -> Self {
        Self { slos }
    }

    pub fn len(&self) -> usize {
        self.slos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Evaluates all SLOs into a QS vector.
    pub fn evaluate(&self, schedule: &Schedule, start: Time, end: Time) -> Vec<f64> {
        self.slos.iter().map(|s| s.evaluate(schedule, start, end)).collect()
    }

    /// Per-SLO `r_i` bounds (weighted); `None` entries are best-effort.
    pub fn thresholds(&self) -> Vec<Option<f64>> {
        self.slos.iter().map(SloSpec::weighted_threshold).collect()
    }

    /// Parses a multi-line declarative spec (see module docs). `tenant_ids`
    /// maps tenant names to ids; lines starting with `#` are comments.
    pub fn parse(text: &str, tenant_ids: &BTreeMap<String, TenantId>) -> Result<Self, ParseError> {
        let mut slos = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            slos.push(
                parse_line(line, tenant_ids)
                    .map_err(|msg| ParseError { line: lineno + 1, message: msg })?,
            );
        }
        Ok(Self { slos })
    }
}

/// Parse failure with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SLO parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_line(line: &str, tenant_ids: &BTreeMap<String, TenantId>) -> Result<SloSpec, String> {
    // Grammar: <scope> ':' <metric> [comparator value] ['priority' p]
    let (scope_str, rest) = line.split_once(':').ok_or("expected '<scope>: <metric> ...'")?;
    let scope_str = scope_str.trim();
    let tenant = if scope_str.eq_ignore_ascii_case("cluster") {
        None
    } else {
        let name =
            scope_str.strip_prefix("tenant").map(str::trim).filter(|s| !s.is_empty()).ok_or_else(
                || format!("unknown scope '{scope_str}' (use 'tenant <name>' or 'cluster')"),
            )?;
        Some(*tenant_ids.get(name).ok_or_else(|| format!("unknown tenant '{name}'"))?)
    };

    let mut rest = rest.trim().to_string();
    // Optional trailing "priority <p>".
    let mut priority = 1.0;
    if let Some(pos) = rest.to_lowercase().rfind("priority") {
        let (head, tail) = rest.split_at(pos);
        let pval = tail["priority".len()..].trim();
        priority = pval.parse::<f64>().map_err(|_| format!("bad priority '{pval}'"))?;
        if priority <= 0.0 {
            return Err("priority must be positive".into());
        }
        rest = head.trim().to_string();
    }

    // Split metric expression from an optional comparator clause.
    let (metric_str, cmp) = if let Some(pos) = rest.find("<=") {
        (rest[..pos].trim().to_string(), Some(('<', rest[pos + 2..].trim().to_string())))
    } else if let Some(pos) = rest.find(">=") {
        (rest[..pos].trim().to_string(), Some(('>', rest[pos + 2..].trim().to_string())))
    } else {
        (rest.trim().to_string(), None)
    };

    let (metric_name, args) = split_args(&metric_str)?;
    let kind = match metric_name.as_str() {
        "avg_response_time" | "ajr" => QsKind::AvgResponseTime,
        "response_time_percentile" | "tail_response_time" => {
            let q = parse_fraction(
                args.get("q").or(args.get("")).ok_or("percentile requires q=<fraction>")?,
            )?;
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("quantile {q} outside [0,1]"));
            }
            QsKind::ResponseTimePercentile { q }
        }
        "deadline_miss" | "dl" => {
            let gamma = args.get("slack").map(|v| parse_fraction(v)).transpose()?.unwrap_or(0.0);
            QsKind::DeadlineMiss { gamma }
        }
        "utilization" | "util" => {
            let pool = parse_pool(args.get("pool").or(args.get("")).map(String::as_str))?;
            let effective = args.get("effective").map(|v| v == "true").unwrap_or(false);
            QsKind::Utilization { pool, effective }
        }
        "throughput" | "thr" => QsKind::Throughput,
        "fairness" | "fair" => {
            let share =
                parse_fraction(args.get("share").ok_or("fairness requires share=<fraction>")?)?;
            let pool = parse_pool(args.get("pool").map(String::as_str))?;
            QsKind::Fairness { share, pool }
        }
        other => return Err(format!("unknown metric '{other}'")),
    };

    let mut spec = SloSpec::new(tenant, kind).with_priority(priority);
    if let Some((dir, value_str)) = cmp {
        let value = parse_threshold(&kind, &value_str)?;
        // Negated metrics (utilization, throughput) are specified in natural
        // units with '>='; convert to the ≤ bound on the QS value.
        let negated = matches!(kind, QsKind::Utilization { .. } | QsKind::Throughput);
        let r = match (negated, dir) {
            (true, '>') => -value,
            (true, _) => return Err("utilization/throughput SLOs use '>=' (more is better)".into()),
            (false, '>') => return Err("this metric uses '<=' (less is better)".into()),
            (false, _) => value,
        };
        spec = spec.with_threshold(r);
    }
    Ok(spec)
}

/// Splits `name(k=v, k2=v2)` into the name and an argument map. A single
/// bare argument (e.g. `utilization(map)`) is keyed by `""`.
fn split_args(s: &str) -> Result<(String, BTreeMap<String, String>), String> {
    let mut args = BTreeMap::new();
    let Some(open) = s.find('(') else {
        return Ok((s.trim().to_lowercase(), args));
    };
    let close = s.rfind(')').ok_or("unbalanced parentheses")?;
    let name = s[..open].trim().to_lowercase();
    for part in s[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((k, v)) => {
                args.insert(k.trim().to_lowercase(), v.trim().to_lowercase());
            }
            None => {
                args.insert(String::new(), part.to_lowercase());
            }
        }
    }
    Ok((name, args))
}

fn parse_pool(s: Option<&str>) -> Result<PoolScope, String> {
    match s {
        None | Some("dominant") => Ok(PoolScope::Dominant),
        Some("map") => Ok(PoolScope::Map),
        Some("reduce") => Ok(PoolScope::Reduce),
        Some(other) => Err(format!("unknown pool '{other}'")),
    }
}

/// Parses `25%` or `0.25` into a fraction.
fn parse_fraction(s: &str) -> Result<f64, String> {
    let s = s.trim();
    if let Some(pct) = s.strip_suffix('%') {
        let v: f64 = pct.trim().parse().map_err(|_| format!("bad percentage '{s}'"))?;
        Ok(v / 100.0)
    } else {
        s.parse().map_err(|_| format!("bad fraction '{s}'"))
    }
}

/// Parses a threshold in the metric's natural units: durations for AJR
/// (`90s`, `2min`, `1h`), percentages/fractions for DL/UTIL, `N/h` rates for
/// throughput, plain numbers otherwise.
fn parse_threshold(kind: &QsKind, s: &str) -> Result<f64, String> {
    let s = s.trim().to_lowercase();
    match kind {
        QsKind::AvgResponseTime | QsKind::ResponseTimePercentile { .. } => parse_duration_secs(&s),
        QsKind::DeadlineMiss { .. } | QsKind::Utilization { .. } | QsKind::Fairness { .. } => {
            parse_fraction(&s)
        }
        QsKind::Throughput => {
            let num = s.strip_suffix("/h").or(s.strip_suffix("/hr")).unwrap_or(&s);
            num.trim().parse().map_err(|_| format!("bad rate '{s}'"))
        }
    }
}

/// Parses `90s` / `2min` / `1.5h` / bare seconds into seconds.
fn parse_duration_secs(s: &str) -> Result<f64, String> {
    let s = s.trim();
    let (num, mult) = if let Some(v) = s.strip_suffix("min") {
        (v, 60.0)
    } else if let Some(v) = s.strip_suffix('h') {
        (v, 3600.0)
    } else if let Some(v) = s.strip_suffix('m') {
        (v, 60.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.trim().parse().map_err(|_| format!("bad duration '{s}'"))?;
    Ok(v * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> BTreeMap<String, TenantId> {
        let mut m = BTreeMap::new();
        m.insert("a".into(), 0);
        m.insert("b".into(), 1);
        m
    }

    #[test]
    fn parses_paper_examples() {
        // The two SLOs quoted in the abstract/§1.
        let text = "\
# SLOs from the paper's introduction
tenant a: avg_response_time <= 2min
tenant b: deadline_miss(slack=0%) <= 5%
";
        let set = SloSet::parse(text, &ids()).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.slos[0].tenant, Some(0));
        assert_eq!(set.slos[0].kind, QsKind::AvgResponseTime);
        assert_eq!(set.slos[0].threshold, Some(120.0));
        assert_eq!(set.slos[1].kind, QsKind::DeadlineMiss { gamma: 0.0 });
        assert_eq!(set.slos[1].threshold, Some(0.05));
    }

    #[test]
    fn parses_all_metric_forms() {
        let text = "\
tenant a: deadline_miss(slack=25%) <= 10%
cluster: utilization(reduce) >= 60%
cluster: utilization(map, effective=true) >= 50%
tenant b: throughput >= 100/h
tenant a: fairness(share=30%) <= 0.1
cluster: avg_response_time
";
        let set = SloSet::parse(text, &ids()).unwrap();
        assert_eq!(set.len(), 6);
        assert_eq!(set.slos[0].kind, QsKind::DeadlineMiss { gamma: 0.25 });
        assert_eq!(
            set.slos[1].kind,
            QsKind::Utilization { pool: PoolScope::Reduce, effective: false }
        );
        assert_eq!(set.slos[1].threshold, Some(-0.6), "'>= 60%' becomes QS ≤ −0.6");
        assert_eq!(set.slos[2].kind, QsKind::Utilization { pool: PoolScope::Map, effective: true });
        assert_eq!(set.slos[3].kind, QsKind::Throughput);
        assert_eq!(set.slos[3].threshold, Some(-100.0));
        assert_eq!(set.slos[4].kind, QsKind::Fairness { share: 0.3, pool: PoolScope::Dominant });
        assert_eq!(set.slos[5].threshold, None, "bare metric = best-effort objective");
    }

    #[test]
    fn parses_percentile_metric() {
        let set = SloSet::parse(
            "tenant a: response_time_percentile(q=95%) <= 10min\ntenant b: tail_response_time(0.5) <= 30s",
            &ids(),
        )
        .unwrap();
        assert_eq!(set.slos[0].kind, QsKind::ResponseTimePercentile { q: 0.95 });
        assert_eq!(set.slos[0].threshold, Some(600.0));
        assert_eq!(set.slos[1].kind, QsKind::ResponseTimePercentile { q: 0.5 });
        let err = SloSet::parse("tenant a: response_time_percentile <= 10s", &ids()).unwrap_err();
        assert!(err.message.contains("requires q"));
    }

    #[test]
    fn parses_priority() {
        let set = SloSet::parse("tenant a: avg_response_time <= 90s priority 3", &ids()).unwrap();
        assert_eq!(set.slos[0].priority, 3.0);
        // Priority weights both the evaluation and the threshold
        // consistently.
        assert_eq!(set.slos[0].weighted_threshold(), Some(270.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        let cases = [
            ("no colon here", "expected"),
            ("tenant z: avg_response_time", "unknown tenant"),
            ("tenant a: bogus_metric <= 1", "unknown metric"),
            ("tenant a: utilization(map) <= 10%", ">="),
            ("tenant a: avg_response_time >= 10s", "<="),
            ("tenant a: avg_response_time <= abc", "bad duration"),
            ("tenant a: fairness <= 0.1", "requires share"),
            ("tenant a: avg_response_time <= 10s priority -1", "positive"),
            ("space: avg_response_time", "unknown scope"),
        ];
        for (line, needle) in cases {
            let err = SloSet::parse(line, &ids()).unwrap_err();
            assert!(
                err.message.contains(needle),
                "line {line:?}: expected {needle:?} in {:?}",
                err.message
            );
            assert_eq!(err.line, 1);
        }
    }

    #[test]
    fn duration_units() {
        assert_eq!(parse_duration_secs("90s").unwrap(), 90.0);
        assert_eq!(parse_duration_secs("2min").unwrap(), 120.0);
        assert_eq!(parse_duration_secs("2m").unwrap(), 120.0);
        assert_eq!(parse_duration_secs("1.5h").unwrap(), 5400.0);
        assert_eq!(parse_duration_secs("42").unwrap(), 42.0);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let set = SloSet::parse("\n# comment\n\n", &ids()).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn error_reports_line_number() {
        let err = SloSet::parse("tenant a: avg_response_time\nbroken", &ids()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn serde_roundtrip() {
        let set =
            SloSet::parse("tenant a: deadline_miss(slack=25%) <= 5% priority 2", &ids()).unwrap();
        let json = serde_json::to_string(&set).unwrap();
        let back: SloSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
